//! One cache shard: a CLOCK ring with a doorkeeper ghost set.

use crate::InsertOutcome;
use bytes::Bytes;
use std::collections::{HashMap, HashSet};

struct Slot<K> {
    key: K,
    value: Bytes,
    /// CLOCK reference bit: set on hit, cleared by a passing hand.
    referenced: bool,
}

/// A single shard. All methods are called under the owning mutex.
pub(crate) struct Shard<K> {
    /// key → index into `slots`.
    map: HashMap<K, usize>,
    /// The CLOCK ring. `None` entries are free (on `free`).
    slots: Vec<Option<Slot<K>>>,
    /// Indexes of vacant ring positions, reused before the ring grows.
    free: Vec<usize>,
    /// The CLOCK hand: next ring position to inspect for eviction.
    hand: usize,
    used_bytes: usize,
    /// Doorkeeper: hashes of keys offered while the shard was full. A key
    /// must reappear here to displace a resident page.
    ghost: HashSet<u64>,
    ghost_cap: usize,
}

impl<K: std::hash::Hash + Eq + Clone> Shard<K> {
    pub(crate) fn new(ghost_cap: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            hand: 0,
            used_bytes: 0,
            ghost: HashSet::new(),
            ghost_cap,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<Bytes> {
        let &idx = self.map.get(key)?;
        let slot = self.slots[idx].as_mut().expect("mapped slot is occupied");
        slot.referenced = true;
        Some(slot.value.clone())
    }

    pub(crate) fn insert(
        &mut self,
        key: K,
        hash: u64,
        value: Bytes,
        budget: usize,
    ) -> InsertOutcome {
        let mut outcome = InsertOutcome {
            admitted: true,
            ..InsertOutcome::default()
        };
        // Overwrite in place: the owner re-cached a slot it re-appended.
        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slots[idx].as_mut().expect("mapped slot is occupied");
            self.used_bytes = self.used_bytes - slot.value.len() + value.len();
            slot.value = value;
            slot.referenced = true;
            // An overwrite can still overshoot the budget; sweep others out.
            let (n, b) = self.evict_until_fits(0, budget, Some(idx));
            outcome.evicted = n;
            outcome.evicted_bytes = b;
            return outcome;
        }
        if self.used_bytes + value.len() > budget {
            // Full shard: the doorkeeper decides. A key never seen before
            // is noted and turned away; a returning key earns residency.
            if self.ghost_cap > 0 && !self.ghost.remove(&hash) {
                if self.ghost.len() >= self.ghost_cap {
                    self.ghost.clear();
                }
                self.ghost.insert(hash);
                outcome.admitted = false;
                return outcome;
            }
            let (n, b) = self.evict_until_fits(value.len(), budget, None);
            outcome.evicted = n;
            outcome.evicted_bytes = b;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(Slot {
                    key: key.clone(),
                    value: value.clone(),
                    referenced: false,
                });
                idx
            }
            None => {
                self.slots.push(Some(Slot {
                    key: key.clone(),
                    value: value.clone(),
                    referenced: false,
                }));
                self.slots.len() - 1
            }
        };
        self.used_bytes += value.len();
        self.map.insert(key, idx);
        outcome
    }

    /// Sweeps the CLOCK hand until `incoming` more bytes fit under
    /// `budget`, sparing `keep` (the slot being overwritten) and any slot
    /// whose reference bit grants a second chance.
    fn evict_until_fits(
        &mut self,
        incoming: usize,
        budget: usize,
        keep: Option<usize>,
    ) -> (u64, u64) {
        let mut evicted = 0u64;
        let mut evicted_bytes = 0u64;
        // Two full sweeps always find a victim (the first clears every
        // reference bit); the bound guards against an all-`keep` ring.
        let mut remaining = self.slots.len().saturating_mul(2) + 1;
        while self.used_bytes + incoming > budget && self.map.len() > usize::from(keep.is_some()) {
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            if self.slots.is_empty() {
                break;
            }
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if Some(idx) == keep {
                continue;
            }
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let victim = self.slots[idx].take().expect("checked occupied");
            self.map.remove(&victim.key);
            self.free.push(idx);
            self.used_bytes -= victim.value.len();
            evicted += 1;
            evicted_bytes += victim.value.len() as u64;
        }
        (evicted, evicted_bytes)
    }

    pub(crate) fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        let slot = self.slots[idx].take().expect("mapped slot is occupied");
        self.used_bytes -= slot.value.len();
        self.free.push(idx);
        true
    }

    pub(crate) fn remove_matching(&mut self, pred: &mut impl FnMut(&K) -> bool) -> u64 {
        let victims: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        let mut removed = 0u64;
        for key in victims {
            if self.remove(&key) {
                removed += 1;
            }
        }
        removed
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.hand = 0;
        self.used_bytes = 0;
        self.ghost.clear();
    }
}
