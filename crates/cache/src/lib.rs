//! # bg3-cache
//!
//! A sharded, byte-budgeted page cache for the BG3 read path.
//!
//! BG3's read-optimized Bw-tree (§3.2.2) caps a *cold* lookup at two
//! storage reads, and the RO-replica design (§3.4) assumes hot pages are
//! served from memory rather than the shared store. This crate supplies
//! that memory tier: a [`PageCache`] keyed by an arbitrary slot key,
//! holding immutable [`Bytes`] values, split into independently locked
//! shards so concurrent readers on different pages never contend.
//!
//! Eviction is CLOCK (second-chance): each resident entry carries a
//! reference bit set on hit; under pressure a per-shard hand sweeps,
//! clearing bits and reclaiming the first unreferenced entry. Admission is
//! doorkeeper-style: while a shard has free budget every page is admitted,
//! but once the shard is full a page must have been *seen before* (its
//! hash is in a small ghost set) to displace a resident page. One-touch
//! scan traffic — extent relocation sweeps, WAL rescans — therefore cannot
//! flush the hot working set.
//!
//! The cache is a *cache of the store*, never an authority: owners must
//! evict on invalidation, relocation, and expiry (see
//! `AppendOnlyStore` in `bg3-storage` for the wiring), and every eviction
//! path is counted so experiments can report cache-adjusted read
//! amplification.

mod shard;
mod stats;

pub use stats::CacheStatsSnapshot;

use bytes::Bytes;
use parking_lot::Mutex;
use shard::Shard;
use stats::CacheStats;
use std::hash::{Hash, Hasher};

/// Construction parameters for [`PageCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards. `0` disables the cache
    /// entirely: every lookup misses, nothing is admitted, and no cache
    /// counters move.
    pub capacity_bytes: usize,
    /// Number of independently locked shards. Keys are hash-partitioned;
    /// hits on distinct shards never contend. Clamped to at least 1.
    pub shards: usize,
    /// Ghost-set entries per shard for the admission doorkeeper. When a
    /// shard's ghost set reaches this bound it is reset (the classic
    /// doorkeeper decay). `0` admits everything, even under pressure.
    pub ghost_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 8 * 1024 * 1024,
            shards: 8,
            ghost_entries: 4096,
        }
    }
}

impl CacheConfig {
    /// A configuration with the cache switched off.
    pub fn disabled() -> Self {
        CacheConfig {
            capacity_bytes: 0,
            ..CacheConfig::default()
        }
    }

    /// Builder-style setter for the total byte budget.
    pub fn with_capacity_bytes(mut self, bytes: usize) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Builder-style setter for the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style setter for the per-shard ghost-set bound.
    pub fn with_ghost_entries(mut self, entries: usize) -> Self {
        self.ghost_entries = entries;
        self
    }

    /// True when this configuration caches anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }
}

/// What [`PageCache::insert`] did with the offered page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The page is now resident (fresh admission or overwrite).
    pub admitted: bool,
    /// Resident pages displaced by the CLOCK hand to make room.
    pub evicted: u64,
    /// Bytes those displaced pages occupied.
    pub evicted_bytes: u64,
}

/// A sharded CLOCK-with-admission cache of immutable byte pages.
///
/// `K` is the caller's slot key — `bg3-storage` uses the physical
/// `(stream, extent, offset)` triple. The cache is `Sync`; all interior
/// mutation is behind per-shard mutexes.
pub struct PageCache<K> {
    shards: Vec<Mutex<Shard<K>>>,
    config: CacheConfig,
    shard_budget: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone> PageCache<K> {
    /// Creates a cache with `config.shards` shards splitting
    /// `config.capacity_bytes` evenly.
    pub fn new(config: CacheConfig) -> Self {
        let shard_count = config.shards.max(1);
        let shard_budget = config.capacity_bytes / shard_count;
        let shards = (0..shard_count)
            .map(|_| Mutex::new(Shard::new(config.ghost_entries)))
            .collect();
        PageCache {
            shards,
            config,
            shard_budget,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// True when the cache can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.shard_budget > 0
    }

    /// Deterministic key hash: shard routing and the admission ghost set
    /// must agree across handles and across runs (experiments are seeded).
    fn hash_of(key: &K) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard<K>> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Looks up `key`, setting its CLOCK reference bit on hit.
    ///
    /// A disabled cache returns `None` without touching any counter, so
    /// zero-capacity configurations behave exactly like the pre-cache
    /// store.
    pub fn get(&self, key: &K) -> Option<Bytes> {
        if !self.is_enabled() {
            return None;
        }
        let hash = Self::hash_of(key);
        let found = self.shard_for(hash).lock().get(key);
        match &found {
            Some(_) => self.stats.record_hit(),
            None => self.stats.record_miss(),
        }
        found
    }

    /// Offers `(key, value)` for residency.
    ///
    /// Oversized pages (larger than one shard's budget) and pages rejected
    /// by the admission doorkeeper are not admitted; both show up in the
    /// stats as admission rejects. An already-resident key is overwritten
    /// in place (an owner re-caching after a re-append).
    pub fn insert(&self, key: K, value: Bytes) -> InsertOutcome {
        if !self.is_enabled() {
            return InsertOutcome::default();
        }
        if value.len() > self.shard_budget {
            self.stats.record_admission_reject();
            return InsertOutcome::default();
        }
        let hash = Self::hash_of(&key);
        let outcome = self
            .shard_for(hash)
            .lock()
            .insert(key, hash, value, self.shard_budget);
        if outcome.admitted {
            self.stats.record_admission();
        } else {
            self.stats.record_admission_reject();
        }
        if outcome.evicted > 0 {
            self.stats
                .record_evictions(outcome.evicted, outcome.evicted_bytes);
        }
        outcome
    }

    /// Removes `key` if resident (owner-driven coherence: the slot was
    /// invalidated or its extent reclaimed). Returns whether anything was
    /// removed.
    pub fn evict(&self, key: &K) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let hash = Self::hash_of(key);
        let removed = self.shard_for(hash).lock().remove(key);
        if removed {
            self.stats.record_invalidation_evictions(1);
        }
        removed
    }

    /// Removes every resident entry matching `pred` (e.g. "all slots of
    /// extent E" when the reclaimer frees it). Returns how many were
    /// removed.
    pub fn evict_matching(&self, mut pred: impl FnMut(&K) -> bool) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut removed = 0u64;
        for shard in &self.shards {
            removed += shard.lock().remove_matching(&mut pred);
        }
        if removed > 0 {
            self.stats.record_invalidation_evictions(removed);
        }
        removed
    }

    /// Drops every resident entry and resets the admission ghosts (the
    /// counters are preserved; they are lifetime totals).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Point-in-time copy of the lifetime counters plus residency gauges.
    pub fn stats(&self) -> CacheStatsSnapshot {
        let mut snap = self.stats.snapshot();
        for shard in &self.shards {
            let guard = shard.lock();
            snap.resident_entries += guard.len() as u64;
            snap.resident_bytes += guard.used_bytes() as u64;
        }
        snap
    }
}

impl<K> std::fmt::Debug for PageCache<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity_bytes", &self.config.capacity_bytes)
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Bytes {
        Bytes::from(vec![0xABu8; n])
    }

    fn small_cache(capacity: usize) -> PageCache<u64> {
        // Single shard: eviction order is deterministic and easy to reason
        // about in tests.
        PageCache::new(
            CacheConfig::default()
                .with_capacity_bytes(capacity)
                .with_shards(1),
        )
    }

    #[test]
    fn hit_and_miss_round_trip() {
        let c = small_cache(1024);
        assert_eq!(c.get(&1), None);
        assert!(c.insert(1, page(10)).admitted);
        assert_eq!(c.get(&1).unwrap().len(), 10);
        let snap = c.stats();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.admissions, 1);
        assert_eq!(snap.resident_entries, 1);
        assert_eq!(snap.resident_bytes, 10);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c: PageCache<u64> = PageCache::new(CacheConfig::disabled());
        assert!(!c.is_enabled());
        assert!(!c.insert(1, page(10)).admitted);
        assert_eq!(c.get(&1), None);
        assert!(!c.evict(&1));
        assert_eq!(c.evict_matching(|_| true), 0);
        let snap = c.stats();
        assert_eq!(snap.hits + snap.misses + snap.admissions, 0);
    }

    #[test]
    fn free_space_admits_everything() {
        let c = small_cache(100);
        for k in 0..10u64 {
            assert!(c.insert(k, page(10)).admitted, "free-space admit of {k}");
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn full_shard_requires_second_touch_to_admit() {
        let c = small_cache(100);
        for k in 0..10u64 {
            c.insert(k, page(10));
        }
        // First offer of a cold key under pressure: doorkeeper says no.
        let first = c.insert(100, page(10));
        assert!(!first.admitted);
        assert_eq!(first.evicted, 0, "reject displaces nothing");
        assert_eq!(c.stats().admission_rejects, 1);
        // Second offer: the ghost set remembers it; a resident page is
        // displaced.
        let second = c.insert(100, page(10));
        assert!(second.admitted);
        assert_eq!(second.evicted, 1);
        assert_eq!(second.evicted_bytes, 10);
        assert!(c.get(&100).is_some());
        assert_eq!(c.used_bytes(), 100, "budget holds");
    }

    #[test]
    fn clock_spares_recently_hit_pages() {
        let c = small_cache(30);
        c.insert(1, page(10));
        c.insert(2, page(10));
        c.insert(3, page(10));
        // Touch 1 and 3: their reference bits protect them for one sweep.
        c.get(&1);
        c.get(&3);
        // Admit a repeat-offender key under pressure.
        c.insert(9, page(10));
        c.insert(9, page(10));
        assert!(c.get(&9).is_some());
        // The unreferenced page (2) was the victim.
        assert!(c.get(&2).is_none());
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn overwrite_updates_in_place() {
        let c = small_cache(100);
        c.insert(7, page(10));
        let o = c.insert(7, page(20));
        assert!(o.admitted);
        assert_eq!(o.evicted, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.get(&7).unwrap().len(), 20);
    }

    #[test]
    fn oversized_pages_are_rejected() {
        let c = PageCache::new(
            CacheConfig::default()
                .with_capacity_bytes(100)
                .with_shards(4),
        );
        // Shard budget is 25: a 30-byte page can never fit.
        assert!(!c.insert(1u64, page(30)).admitted);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().admission_rejects, 1);
    }

    #[test]
    fn evict_and_evict_matching_remove_entries() {
        let c = small_cache(1024);
        for k in 0..8u64 {
            c.insert(k, page(8));
        }
        assert!(c.evict(&3));
        assert!(!c.evict(&3), "already gone");
        assert_eq!(c.get(&3), None);
        let removed = c.evict_matching(|k| k % 2 == 0);
        assert_eq!(removed, 4);
        assert_eq!(c.len(), 3, "odd keys 1,5,7 remain");
        assert_eq!(c.stats().invalidation_evictions, 5);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c = small_cache(1024);
        c.insert(1, page(4));
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        let snap = c.stats();
        assert_eq!(snap.hits, 1, "lifetime counters survive clear");
        assert_eq!(c.get(&1), None, "resident data does not");
    }

    #[test]
    fn shard_routing_is_deterministic_and_spread() {
        let c = PageCache::new(
            CacheConfig::default()
                .with_capacity_bytes(64 * 1024)
                .with_shards(8),
        );
        for k in 0..256u64 {
            c.insert(k, page(16));
        }
        // Every insert is retrievable (routing agrees between insert/get).
        for k in 0..256u64 {
            assert!(c.get(&k).is_some(), "key {k} lost in routing");
        }
        // And the population is not degenerate: multiple shards hold data.
        let populated = c.shards.iter().filter(|s| s.lock().len() > 0).count();
        assert!(populated >= 4, "only {populated} of 8 shards populated");
    }

    #[test]
    fn hit_rate_math() {
        let c = small_cache(1024);
        c.insert(1, page(4));
        c.get(&1);
        c.get(&1);
        c.get(&2);
        let snap = c.stats();
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn zero_ghost_entries_admits_under_pressure() {
        let c = PageCache::new(
            CacheConfig::default()
                .with_capacity_bytes(20)
                .with_shards(1)
                .with_ghost_entries(0),
        );
        c.insert(1, page(10));
        c.insert(2, page(10));
        let o = c.insert(3, page(10));
        assert!(o.admitted, "no doorkeeper: first touch displaces");
        assert_eq!(o.evicted, 1);
    }
}
