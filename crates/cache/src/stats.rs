//! Lifetime cache counters and their snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters for one cache.
#[derive(Debug, Default)]
pub(crate) struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    admissions: AtomicU64,
    admission_rejects: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    invalidation_evictions: AtomicU64,
}

impl CacheStats {
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_admission(&self) {
        self.admissions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_admission_reject(&self) {
        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_evictions(&self, n: u64, bytes: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
        self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_invalidation_evictions(&self, n: u64) {
        self.invalidation_evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            invalidation_evictions: self.invalidation_evictions.load(Ordering::Relaxed),
            resident_entries: 0,
            resident_bytes: 0,
        }
    }
}

/// Point-in-time copy of a cache's counters plus residency gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that fell through to storage.
    pub misses: u64,
    /// Pages granted residency.
    pub admissions: u64,
    /// Pages turned away (doorkeeper or oversize).
    pub admission_rejects: u64,
    /// Resident pages displaced by the CLOCK hand under pressure.
    pub evictions: u64,
    /// Bytes those displaced pages occupied.
    pub evicted_bytes: u64,
    /// Entries removed for coherence (slot invalidated, extent reclaimed
    /// or expired) rather than for space.
    pub invalidation_evictions: u64,
    /// Pages resident at snapshot time.
    pub resident_entries: u64,
    /// Bytes resident at snapshot time.
    pub resident_bytes: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups served from memory; 0.0 when nothing was asked.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}
