//! Virtual-time concurrency driver.
//!
//! A discrete-event simulator of N workers executing a stream of operations
//! whose costs were measured on the real CPU. Each operation optionally
//! serializes on a *resource* (a latch: a Bw-tree, an engine-global
//! structure); operations without a resource run fully parallel.
//!
//! This replays exactly the contention structure of a multi-core run —
//! which worker waits on which latch — without needing physical cores, and
//! is the throughput methodology for Figs. 8, 11, and 14 (see DESIGN.md).

use std::collections::HashMap;

/// N virtual workers plus a set of serializing resources.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    workers: Vec<u64>,
    resources: HashMap<u64, u64>,
    ops: u64,
}

impl VirtualCluster {
    /// Creates a cluster of `workers` virtual workers at time zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        VirtualCluster {
            workers: vec![0; workers],
            resources: HashMap::new(),
            ops: 0,
        }
    }

    /// Schedules one operation of `cost_ns` on the least-loaded worker.
    /// When `resource` is `Some(r)`, the operation additionally waits for
    /// (and then occupies) resource `r` — a latch held for the whole op.
    pub fn submit(&mut self, cost_ns: u64, resource: Option<u64>) {
        self.ops += 1;
        let worker = self
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one worker");
        let mut start = self.workers[worker];
        if let Some(r) = resource {
            let rt = self.resources.entry(r).or_insert(0);
            start = start.max(*rt);
            let end = start + cost_ns;
            *rt = end;
            self.workers[worker] = end;
        } else {
            self.workers[worker] = start + cost_ns;
        }
    }

    /// Virtual makespan: when the busiest worker finishes.
    pub fn elapsed_ns(&self) -> u64 {
        self.workers.iter().copied().max().unwrap_or(0)
    }

    /// Operations submitted.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Throughput in operations per virtual second.
    pub fn throughput(&self) -> f64 {
        let elapsed = self.elapsed_ns();
        if elapsed == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_ops_scale_with_workers() {
        // 100 independent 1µs ops: 1 worker → 100µs, 4 workers → 25µs.
        let mut one = VirtualCluster::new(1);
        let mut four = VirtualCluster::new(4);
        for _ in 0..100 {
            one.submit(1_000, None);
            four.submit(1_000, None);
        }
        assert_eq!(one.elapsed_ns(), 100_000);
        assert_eq!(four.elapsed_ns(), 25_000);
        assert!((four.throughput() / one.throughput() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn a_single_resource_serializes_everything() {
        let mut c = VirtualCluster::new(8);
        for _ in 0..100 {
            c.submit(1_000, Some(7));
        }
        assert_eq!(c.elapsed_ns(), 100_000, "no speedup through one latch");
    }

    #[test]
    fn disjoint_resources_run_in_parallel() {
        let mut c = VirtualCluster::new(4);
        for i in 0..100u64 {
            c.submit(1_000, Some(i % 4));
        }
        assert_eq!(c.elapsed_ns(), 25_000);
    }

    #[test]
    fn more_resources_than_workers_is_worker_bound() {
        let mut c = VirtualCluster::new(2);
        for i in 0..100u64 {
            c.submit(1_000, Some(i)); // every op its own resource
        }
        assert_eq!(c.elapsed_ns(), 50_000, "bounded by 2 workers");
    }

    #[test]
    fn mixed_contention_lands_between_the_extremes() {
        // Half the ops hit one hot latch, half are free.
        let mut c = VirtualCluster::new(4);
        for i in 0..100u64 {
            c.submit(1_000, (i % 2 == 0).then_some(1));
        }
        let elapsed = c.elapsed_ns();
        assert!(elapsed >= 50_000, "hot latch serializes its 50 ops");
        assert!(elapsed < 100_000, "free ops overlap");
    }

    #[test]
    fn throughput_of_empty_cluster_is_zero() {
        let c = VirtualCluster::new(2);
        assert_eq!(c.throughput(), 0.0);
        assert_eq!(c.ops(), 0);
    }
}
