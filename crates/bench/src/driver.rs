//! Engine wrapper: op execution and per-engine contention models.
//!
//! All three engines are built through [`GraphEngine`] and observed through
//! [`EngineRuntime`] — the only per-engine code left here is the contention
//! model, which is a property of each design rather than of its API.

use bg3_core::prelude::*;
use bg3_graph::{edge_group, k_hop_neighbors, CycleQuery, HopSpec, PatternMatcher};
use bg3_workloads::Op;

/// Which engine an [`Engine`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's system.
    Bg3,
    /// The previous-generation baseline.
    ByteGraph,
    /// The conventional-design comparator.
    Neptune,
}

impl EngineKind {
    /// Display name used in experiment rows.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Bg3 => "BG3",
            EngineKind::ByteGraph => "ByteGraph",
            EngineKind::Neptune => "Neptune-like",
        }
    }

    /// All three systems, in the order the paper plots them.
    pub fn all() -> [EngineKind; 3] {
        [EngineKind::Bg3, EngineKind::ByteGraph, EngineKind::Neptune]
    }
}

/// One of the three systems, with its contention model for the virtual
/// driver.
pub enum Engine {
    /// BG3 engine.
    Bg3(Bg3Db),
    /// ByteGraph baseline.
    ByteGraph(ByteGraphDb),
    /// Neptune-like comparator.
    Neptune(NeptuneLike),
}

/// Builds an engine from its `Default` config after applying one tweak —
/// the single construction path every [`EngineKind`] goes through.
fn open_tuned<E: GraphEngine>(tweak: impl FnOnce(&mut E::Config)) -> E {
    let mut config = E::Config::default();
    tweak(&mut config);
    E::open(config)
}

impl Engine {
    /// Builds a fresh engine of `kind` with experiment-friendly settings.
    /// Every arm constructs through [`GraphEngine::open`]; the closures
    /// only adjust config fields.
    pub fn build(kind: EngineKind) -> Engine {
        match kind {
            EngineKind::Bg3 => Engine::Bg3(open_tuned(|config: &mut Bg3Config| {
                // Modest threshold so hot vertices get dedicated trees.
                config.forest = config.forest.clone().with_split_out_threshold(64);
            })),
            EngineKind::ByteGraph => {
                Engine::ByteGraph(open_tuned(|config: &mut ByteGraphConfig| {
                    // A bounded cache leaves the power-law tail on the LSM path.
                    config.cache_capacity_groups = 2048;
                }))
            }
            EngineKind::Neptune => Engine::Neptune(open_tuned(|config: &mut StoreConfig| {
                *config = StoreConfig::counting();
            })),
        }
    }

    /// The kind of this engine.
    pub fn kind(&self) -> EngineKind {
        match self {
            Engine::Bg3(_) => EngineKind::Bg3,
            Engine::ByteGraph(_) => EngineKind::ByteGraph,
            Engine::Neptune(_) => EngineKind::Neptune,
        }
    }

    /// The unified runtime surface — queries, I/O accounting, maintenance.
    pub fn runtime(&self) -> &dyn EngineRuntime {
        match self {
            Engine::Bg3(db) => db,
            Engine::ByteGraph(db) => db,
            Engine::Neptune(db) => db,
        }
    }

    /// Random storage reads issued so far by this engine's backing store.
    /// The Fig. 8 driver diffs this around each op to charge I/O latency:
    /// random reads stall the op (one storage round-trip each), while
    /// appends pipeline behind group commit and are not latency-bound.
    pub fn io_reads(&self) -> u64 {
        self.runtime().io_snapshot().random_reads
    }

    /// The latch an operation serializes on, for the virtual driver:
    ///
    /// * BG3 — writes take the owning Bw-tree's write latch: per-group when
    ///   the group has a dedicated tree, the INIT tree otherwise. Reads take
    ///   shared latches and run in parallel.
    /// * ByteGraph — writes funnel through the LSM write path (memtable +
    ///   WAL order); reads are served concurrently by the memory layer.
    /// * Neptune-like — one global index lock for everything, reads
    ///   included (the conventional-design cost).
    pub fn resource_for(&self, op: &Op) -> Option<u64> {
        const INIT_TREE: u64 = 0;
        const LSM_WRITE_PATH: u64 = 1;
        const GLOBAL_INDEX: u64 = 2;
        match self {
            Engine::Bg3(db) => match op {
                Op::InsertEdge { src, etype, .. } => {
                    let group = edge_group(*src, *etype);
                    if db.forest().dedicated_tree(&group).is_some() {
                        // Distinct trees are distinct latches; offset past
                        // the reserved ids.
                        Some(16 + fxhash(&group))
                    } else {
                        Some(INIT_TREE)
                    }
                }
                _ => None,
            },
            Engine::ByteGraph(_) => match op {
                Op::InsertEdge { .. } => Some(LSM_WRITE_PATH),
                _ => None,
            },
            Engine::Neptune(_) => Some(GLOBAL_INDEX),
        }
    }
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl GraphStore for Engine {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.runtime().insert_edge(edge)
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.runtime().get_edge(src, etype, dst)
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.runtime().delete_edge(src, etype, dst)
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        self.runtime().neighbors(src, etype, limit)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.runtime().insert_vertex(vertex)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.runtime().get_vertex(id)
    }
}

/// Executes one workload operation against any [`GraphStore`].
pub fn execute_op(store: &dyn GraphStore, op: &Op) -> StorageResult<()> {
    match op {
        Op::InsertEdge {
            src,
            etype,
            dst,
            props,
        } => store.insert_edge(&Edge {
            src: *src,
            etype: *etype,
            dst: *dst,
            props: props.clone(),
        }),
        Op::OneHop { src, etype, limit } => store.neighbors(*src, *etype, *limit).map(|_| ()),
        Op::KHop {
            src,
            etype,
            hops,
            fanout,
        } => k_hop_neighbors(
            store,
            *src,
            *etype,
            HopSpec {
                hops: *hops,
                fanout: *fanout,
                max_vertices: 1000,
            },
        )
        .map(|_| ()),
        Op::CheckEdge { src, etype, dst } => store.get_edge(*src, *etype, *dst).map(|_| ()),
        Op::PatternCycle {
            anchor,
            etype,
            length,
        } => {
            let matcher = PatternMatcher {
                candidate_cap: 8,
                max_matches: 1,
                max_expansions: 2_000,
            };
            matcher
                .has_cycle(
                    store,
                    CycleQuery {
                        etype: *etype,
                        length: *length,
                    },
                    *anchor,
                )
                .map(|_| ())
        }
        Op::DeleteEdge { src, etype, dst } => store.delete_edge(*src, *etype, *dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::EdgeType;
    use bg3_workloads::{DouyinFollow, WorkloadGen};

    #[test]
    fn all_engines_execute_a_workload_slice() {
        for kind in EngineKind::all() {
            let engine = Engine::build(kind);
            let mut gen = DouyinFollow::new(500, 1.0, 3);
            for _ in 0..300 {
                execute_op(&engine, &gen.next_op()).unwrap();
            }
            assert_eq!(engine.kind(), kind);
        }
    }

    #[test]
    fn contention_models_match_design() {
        let bg3 = Engine::build(EngineKind::Bg3);
        let byte = Engine::build(EngineKind::ByteGraph);
        let nep = Engine::build(EngineKind::Neptune);
        let read = Op::OneHop {
            src: VertexId(1),
            etype: EdgeType::FOLLOW,
            limit: 10,
        };
        let write = Op::InsertEdge {
            src: VertexId(1),
            etype: EdgeType::FOLLOW,
            dst: VertexId(2),
            props: vec![],
        };
        assert_eq!(bg3.resource_for(&read), None, "BG3 reads are parallel");
        assert_eq!(bg3.resource_for(&write), Some(0), "INIT tree latch");
        assert_eq!(byte.resource_for(&read), None);
        assert!(byte.resource_for(&write).is_some());
        assert!(nep.resource_for(&read).is_some(), "global lock on reads");
        assert!(nep.resource_for(&write).is_some());
    }

    #[test]
    fn bg3_dedicated_trees_get_distinct_latches() {
        let engine = Engine::build(EngineKind::Bg3);
        // Push one vertex over the split-out threshold.
        for dst in 0..100u64 {
            execute_op(
                &engine,
                &Op::InsertEdge {
                    src: VertexId(7),
                    etype: EdgeType::FOLLOW,
                    dst: VertexId(dst),
                    props: vec![],
                },
            )
            .unwrap();
        }
        let write_hot = Op::InsertEdge {
            src: VertexId(7),
            etype: EdgeType::FOLLOW,
            dst: VertexId(999),
            props: vec![],
        };
        let write_cold = Op::InsertEdge {
            src: VertexId(8),
            etype: EdgeType::FOLLOW,
            dst: VertexId(999),
            props: vec![],
        };
        let hot = engine.resource_for(&write_hot).unwrap();
        let cold = engine.resource_for(&write_cold).unwrap();
        assert_ne!(hot, cold, "split-out vertex has its own latch");
        assert_eq!(cold, 0, "tail vertices share the INIT latch");
    }
}
