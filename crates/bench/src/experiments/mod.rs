//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod chaos;
pub mod cost;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

/// Formats a throughput as `x.y Kq/s`.
pub(crate) fn kqps(ops_per_sec: f64) -> String {
    format!("{:.1} Kq/s", ops_per_sec / 1e3)
}

/// Formats bytes as MiB.
pub(crate) fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}
