//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod cache_scaling;
pub mod chaos;
pub mod cost;
pub mod disk_chaos;
pub mod disk_smoke;
pub mod failover;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig8;
pub mod fig9;
pub mod khop;
pub mod overload;
pub mod profile;
pub mod scrub;
pub mod table1;
pub mod table2;

/// Cache-adjusted I/O accounting attached to experiment reports. Reports
/// that embed one (anywhere in their JSON) get a per-experiment cache line
/// printed by the `reproduce` binary — the field names are the contract.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IoSummary {
    /// Random reads that actually reached storage.
    pub random_reads: u64,
    /// Reads served by the page cache without touching storage.
    pub cache_hits: u64,
    /// Reads that missed the cache (and went on to storage).
    pub cache_misses: u64,
    /// Pages evicted — CLOCK capacity pressure plus GC coherence.
    pub cache_evictions: u64,
    /// `random_reads / (cache_hits + random_reads)` — 1.0 without a cache.
    pub read_amplification: f64,
}

impl IoSummary {
    /// Builds a summary from an I/O snapshot (usually a `delta_since`).
    pub fn from_delta(delta: &bg3_storage::IoStatsSnapshot) -> IoSummary {
        IoSummary {
            random_reads: delta.random_reads,
            cache_hits: delta.cache_hits,
            cache_misses: delta.cache_misses,
            cache_evictions: delta.cache_evictions,
            read_amplification: delta.read_amplification(),
        }
    }
}

/// Merges the registry snapshots of every store an experiment touched into
/// the single `metrics` field its report embeds. Counters and histograms
/// sum across stores; the `reproduce` binary turns the merged histograms
/// into the per-experiment `latency …: p50/p95/p99/max` lines.
pub fn merged_metrics<'a>(
    stores: impl IntoIterator<Item = &'a bg3_storage::AppendOnlyStore>,
) -> bg3_storage::MetricsSnapshot {
    let mut merged = bg3_storage::MetricsSnapshot::default();
    for store in stores {
        merged.merge(&store.metrics_snapshot());
    }
    merged
}

/// Formats a throughput as `x.y Kq/s`.
pub(crate) fn kqps(ops_per_sec: f64) -> String {
    format!("{:.1} Kq/s", ops_per_sec / 1e3)
}

/// Formats bytes as MiB.
pub(crate) fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}
