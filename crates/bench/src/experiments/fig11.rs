//! Fig. 11 — Bw-tree forest scaling: write throughput and memory cost as
//! the number of trees grows.
//!
//! The paper adjusts the split-out threshold to move between 1 tree and 1M
//! trees and observes write QPS climbing (50→289 KQPS) while memory grows
//! super-linearly past ~100k trees. We sweep the threshold the same way on
//! a scaled population: the tree count *emerges* from the workload, and
//! throughput comes from the virtual-time driver (16 workers, one latch per
//! tree — the Observation 1 contention model).

use crate::vdriver::VirtualCluster;
use bg3_forest::{BwTreeForest, ForestConfig};
use bg3_storage::{AppendOnlyStore, StoreBuilder, StoreConfig};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One threshold configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Split-out threshold (`None` = splitting disabled → single tree).
    pub threshold: Option<usize>,
    /// Trees that emerged (including INIT).
    pub trees: usize,
    /// Write throughput on 16 virtual workers, ops/second.
    pub write_qps: f64,
    /// Estimated memory footprint in bytes.
    pub memory_bytes: usize,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Report {
    /// One row per threshold, most-coarse first.
    pub rows: Vec<Fig11Row>,
    /// Merged registry snapshot across every threshold's store.
    pub metrics: bg3_storage::MetricsSnapshot,
}

fn run_threshold(threshold: Option<usize>, ops: usize, groups: u64) -> (Fig11Row, AppendOnlyStore) {
    let store =
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build();
    let config = ForestConfig::default()
        .with_split_out_threshold(threshold.unwrap_or(usize::MAX))
        .with_init_tree_max_entries(usize::MAX);
    let forest = BwTreeForest::new(store.clone(), config);
    let zipf = Zipf::new(groups, 1.0);
    let mut rng = StdRng::seed_from_u64(31);
    let mut cluster = VirtualCluster::new(16);
    for i in 0..ops {
        let group = format!("user{:07}", zipf.sample(&mut rng)).into_bytes();
        let item = (i as u64).to_be_bytes();
        // Latch: the tree the write lands on (Observation 1/2 of §3.2.1).
        let resource = if forest.dedicated_tree(&group).is_some() {
            Some(16 + fxhash(&group))
        } else {
            Some(0)
        };
        let started = Instant::now();
        forest.put(&group, &item, &[0u8; 16]).unwrap();
        cluster.submit(started.elapsed().as_nanos() as u64, resource);
    }
    let row = Fig11Row {
        threshold,
        trees: forest.tree_count(),
        write_qps: cluster.throughput(),
        memory_bytes: forest.memory_footprint(),
    };
    (row, store)
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Sweeps the threshold over `ops` power-law writes across `groups` users.
pub fn run(ops: usize, groups: u64) -> Fig11Report {
    let thresholds = [None, Some(512), Some(32), Some(2)];
    let mut rows = Vec::new();
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    for t in thresholds {
        let (row, store) = run_threshold(t, ops, groups);
        rows.push(row);
        metrics.merge(&store.metrics_snapshot());
    }
    Fig11Report { rows, metrics }
}

/// Renders the figure's series.
pub fn render(report: &Fig11Report) -> String {
    let mut out =
        String::from("Fig. 11: Scaling performance & space cost with varying number of Bw-trees\n");
    for row in &report.rows {
        out.push_str(&format!(
            "threshold {:>9} -> {:>6} trees  write {}  memory {}\n",
            row.threshold
                .map(|t| t.to_string())
                .unwrap_or_else(|| "off".into()),
            row.trees,
            super::kqps(row.write_qps),
            super::mib(row.memory_bytes as u64),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn more_trees_means_more_throughput_and_more_memory() {
        let report = super::run(6_000, 20_000);
        let rows = &report.rows;
        assert_eq!(rows[0].trees, 1, "threshold off → single INIT tree");
        assert!(
            rows.windows(2).all(|w| w[0].trees <= w[1].trees),
            "lower thresholds → more trees"
        );
        let single = &rows[0];
        let many = rows.last().unwrap();
        assert!(many.trees > 10);
        assert!(
            many.write_qps > single.write_qps,
            "parallel trees beat one latch: {} vs {}",
            many.write_qps,
            single.write_qps
        );
        assert!(
            many.memory_bytes > single.memory_bytes,
            "per-tree overhead shows up"
        );
    }
}
