//! Overload experiment — admission control under 0.5×–2× saturation.
//!
//! Not a figure from the paper: this validates the robustness layer the
//! production deployment implies (§5's latency SLOs under Douyin-scale
//! load). A [`GovernedEngine`] is driven open-loop on the virtual clock:
//! op `i` *arrives* at `i / rate` regardless of how the engine is doing —
//! the defining property of an overload test (closed-loop drivers
//! self-throttle and can never oversaturate).
//!
//! For each workload (the Table-1 Douyin Follow mix plus the two skewed
//! generators: celebrity super-nodes and TTL churn) the harness first
//! *calibrates* — replays the exact op sequence against the admission cost
//! model to find the offered cost rate per class — then sets each class's
//! token refill rate to `offered / multiplier`, so `multiplier = 2.0`
//! means the engine has half the capacity the workload demands. Sweeping
//! 0.5×–2× shows the three regimes: headroom (no shedding), saturation
//! (queueing), and overload (bounded queues + typed sheds).
//!
//! Reported per row: p50/p99 latency of *admitted* ops (queue wait +
//! modelled service), goodput, shed rate, stale-read and degraded-op
//! counts, and — the acceptance headline — `lost_acked_writes`, which
//! replays every acknowledged write against the replicas after the storm
//! and must be zero: shedding may refuse work, it must never lose work it
//! accepted. The 2× Douyin run is executed twice to prove the whole sweep
//! is deterministic under the fixed seed.

use bg3_core::prelude::*;
use bg3_core::{AdmissionConfig, GovernedConfig, GovernedEngine, OpClass, ReplicatedConfig};
use bg3_obs::LatencyHistogram;
use bg3_storage::SimInstant;
use bg3_workloads::{
    DouyinFollow, Op, SuperNodeSkew, SuperNodeSpec, TtlChurn, TtlChurnSpec, WorkloadGen,
};
use serde::Serialize;
use std::collections::HashMap;

/// Open-loop arrival rate (ops per virtual second).
const ARRIVAL_RATE: f64 = 20_000.0;
/// Saturation multipliers swept per workload.
const MULTIPLIERS: [f64; 5] = [0.5, 0.75, 1.0, 1.5, 2.0];
const SEED: u64 = 0x0BAD_10AD;

/// One (workload, saturation) cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OverloadRow {
    /// Workload name.
    pub workload: String,
    /// Offered load as a multiple of provisioned capacity.
    pub multiplier: f64,
    /// Ops offered by the open-loop driver.
    pub offered: u64,
    /// Ops admitted and executed.
    pub admitted: u64,
    /// Ops shed with `Overloaded` (bounded queue full).
    pub shed_overloaded: u64,
    /// Ops shed with `DeadlineExceeded` (queue wait beyond the class SLO).
    pub shed_deadline: u64,
    /// Shed fraction of offered ops.
    pub shed_rate: f64,
    /// Admitted ops per virtual second.
    pub goodput_per_sec: f64,
    /// Median latency of admitted ops (queue wait + modelled service), ns.
    pub p50_latency_nanos: u64,
    /// Tail latency of admitted ops, ns.
    pub p99_latency_nanos: u64,
    /// Reads served stale off the RO replicas (degradation ladder).
    pub stale_reads: u64,
    /// Admitted ops that rode a degraded rung.
    pub degraded_ops: u64,
    /// Acked writes whose effect was missing on the replicas after the
    /// run — must be zero at every multiplier.
    pub lost_acked_writes: u64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadReport {
    /// One row per (workload, multiplier).
    pub rows: Vec<OverloadRow>,
    /// Whether the repeated 2× Douyin run reproduced its row exactly.
    pub deterministic: bool,
    /// Merged registry snapshot across every run.
    pub metrics: MetricsSnapshot,
}

enum Kind {
    Douyin,
    SuperNode,
    TtlChurn,
}

impl Kind {
    fn name(&self) -> &'static str {
        match self {
            Kind::Douyin => "DouyinFollow",
            Kind::SuperNode => "SuperNodeSkew",
            Kind::TtlChurn => "TtlChurn",
        }
    }

    fn gen(&self, seed: u64) -> Box<dyn WorkloadGen> {
        match self {
            Kind::Douyin => Box::new(DouyinFollow::new(50_000, 1.0, seed)),
            Kind::SuperNode => Box::new(SuperNodeSkew::new(SuperNodeSpec::default(), seed)),
            Kind::TtlChurn => Box::new(TtlChurn::new(TtlChurnSpec::default(), seed)),
        }
    }
}

fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::PointRead => 0,
        OpClass::Traversal => 1,
        OpClass::Write => 2,
    }
}

/// The admission cost model, mirrored for calibration (no throttle: the
/// calibrator measures offered load, not engine state).
fn base_cost(op: &Op, config: &AdmissionConfig) -> u64 {
    let base = config.budget(OpClass::of(op)).expected_cost;
    match op {
        Op::KHop { hops, .. } => base.saturating_mul((*hops).max(1) as u64),
        Op::PatternCycle { length, .. } => base.saturating_mul((*length).max(1) as u64),
        _ => base,
    }
}

/// Sizes each class's refill rate so offered load = `multiplier` ×
/// capacity for this exact op sequence.
fn calibrate(ops: &[Op], multiplier: f64) -> AdmissionConfig {
    let mut config = AdmissionConfig::default();
    let mut offered_units = [0u64; 3];
    for op in ops {
        offered_units[class_index(OpClass::of(op))] += base_cost(op, &config);
    }
    for class in OpClass::ALL {
        let offered_per_sec =
            offered_units[class_index(class)] as f64 / ops.len() as f64 * ARRIVAL_RATE;
        let budget = config.budget_mut(class);
        budget.cost_per_sec = (offered_per_sec / multiplier).max(1.0) as u64;
        // A modest burst: ~20 expected ops of headroom before queueing.
        budget.burst = budget.expected_cost * 20;
    }
    config
}

type EdgeKey = (u64, u16, u64);

fn acked_write(shadow: &mut HashMap<EdgeKey, bool>, op: &Op) {
    match op {
        Op::InsertEdge {
            src, etype, dst, ..
        } => {
            shadow.insert((src.0, etype.0, dst.0), true);
        }
        Op::DeleteEdge { src, etype, dst } => {
            shadow.insert((src.0, etype.0, dst.0), false);
        }
        _ => {}
    }
}

fn run_cell(kind: &Kind, multiplier: f64, ops: usize) -> (OverloadRow, MetricsSnapshot) {
    let mut gen = kind.gen(SEED);
    let sequence: Vec<Op> = (0..ops).map(|_| gen.next_op()).collect();
    let admission = calibrate(&sequence, multiplier);
    let engine = GovernedEngine::new(
        ReplicatedConfig {
            store: StoreConfig::counting(),
            ro_nodes: 2,
            ..ReplicatedConfig::default()
        },
        GovernedConfig {
            admission,
            ..GovernedConfig::default()
        },
    );

    let clock = engine.rep().store().clock().clone();
    let latency = LatencyHistogram::new();
    let dt = 1e9 / ARRIVAL_RATE;
    let mut shadow: HashMap<EdgeKey, bool> = HashMap::new();
    let mut degraded_ops = 0u64;
    for (i, op) in sequence.iter().enumerate() {
        // Open-loop: the arrival schedule does not care about queue state.
        clock.advance_to(SimInstant((i as f64 * dt) as u64));
        match engine.submit(op) {
            Ok(outcome) => {
                let budget = engine.admission().config().budget(OpClass::of(op));
                let service =
                    engine.op_cost(op) as u128 * 1_000_000_000 / budget.cost_per_sec.max(1) as u128;
                latency.record(outcome.queue_wait_nanos + service as u64);
                if outcome.degraded {
                    degraded_ops += 1;
                }
                acked_write(&mut shadow, op);
            }
            Err(err) => assert!(
                err.is_overloaded(),
                "only typed sheds may refuse ops: {err}"
            ),
        }
    }

    // The acceptance invariant: every acked write is visible (and every
    // acked delete absent) on the replicas once they catch up.
    engine.rep().checkpoint().expect("checkpoint");
    engine.rep().poll_all().expect("poll");
    for idx in 0..engine.rep().ro_count() {
        engine.rep().ro(idx).set_serving_stale(false);
    }
    let mut lost = 0u64;
    for (&(src, etype, dst), &present) in &shadow {
        let found = engine
            .rep()
            .ro_check_edge(0, VertexId(src), EdgeType(etype), VertexId(dst))
            .expect("replica read");
        if found != present {
            lost += 1;
        }
    }

    let snap = engine.admission().snapshot();
    let hist = latency.snapshot();
    let duration_secs = ops as f64 / ARRIVAL_RATE;
    let row = OverloadRow {
        workload: kind.name().to_string(),
        multiplier,
        offered: snap.submitted,
        admitted: snap.admitted,
        shed_overloaded: snap.shed_overloaded,
        shed_deadline: snap.shed_deadline,
        shed_rate: snap.shed() as f64 / snap.submitted.max(1) as f64,
        goodput_per_sec: snap.admitted as f64 / duration_secs,
        p50_latency_nanos: hist.value_at_quantile(0.50),
        p99_latency_nanos: hist.value_at_quantile(0.99),
        stale_reads: snap.stale_reads,
        degraded_ops,
        lost_acked_writes: lost,
    };
    (row, engine.rep().store().metrics_snapshot())
}

/// Runs the sweep: every workload × every multiplier, plus the repeated
/// 2× determinism run.
pub fn run(ops: usize) -> OverloadReport {
    let mut rows = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for kind in [Kind::Douyin, Kind::SuperNode, Kind::TtlChurn] {
        for multiplier in MULTIPLIERS {
            let (row, snap) = run_cell(&kind, multiplier, ops);
            metrics.merge(&snap);
            rows.push(row);
        }
    }
    let (repeat, snap) = run_cell(&Kind::Douyin, 2.0, ops);
    metrics.merge(&snap);
    let reference = rows
        .iter()
        .find(|r| r.workload == "DouyinFollow" && r.multiplier == 2.0)
        .expect("2x Douyin row");
    let deterministic = *reference == repeat;
    OverloadReport {
        rows,
        deterministic,
        metrics,
    }
}

/// Formats the report in the artifact's table shape.
pub fn render(report: &OverloadReport) -> String {
    let mut out = String::new();
    out.push_str("Overload: admission control under 0.5x-2x saturation\n");
    out.push_str(
        "workload        x     admitted  shed%   goodput     p50       p99       stale  lost\n",
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{:<15} {:<5} {:<9} {:<7.1} {:<11} {:<9} {:<9} {:<6} {}\n",
            row.workload,
            row.multiplier,
            row.admitted,
            row.shed_rate * 100.0,
            super::kqps(row.goodput_per_sec),
            format!("{:.2}ms", row.p50_latency_nanos as f64 / 1e6),
            format!("{:.2}ms", row.p99_latency_nanos as f64 / 1e6),
            row.stale_reads,
            row.lost_acked_writes,
        ));
    }
    let worst_p99 = report
        .rows
        .iter()
        .map(|r| r.p99_latency_nanos)
        .max()
        .unwrap_or(0);
    let lost: u64 = report.rows.iter().map(|r| r.lost_acked_writes).sum();
    let overloaded_shed = report
        .rows
        .iter()
        .filter(|r| r.multiplier >= 2.0)
        .all(|r| r.shed_overloaded + r.shed_deadline > 0);
    out.push_str(&format!(
        "worst p99 {:.2}ms | lost acked writes {} | sheds at 2x on every workload: {} | deterministic: {}\n",
        worst_p99 as f64 / 1e6,
        lost,
        overloaded_shed,
        report.deterministic,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_smoke_bounded_tail_and_no_lost_writes() {
        let report = run(400);
        assert_eq!(report.rows.len(), 15);
        assert!(report.deterministic, "fixed seed must reproduce exactly");
        for row in &report.rows {
            assert_eq!(
                row.offered,
                row.admitted + row.shed_overloaded + row.shed_deadline,
                "conservation on {} x{}",
                row.workload,
                row.multiplier
            );
            assert_eq!(
                row.lost_acked_writes, 0,
                "acked writes must survive on {} x{}",
                row.workload, row.multiplier
            );
        }
        // At 2x saturation every workload sheds, and the tail stays
        // bounded by the class deadlines rather than growing with the
        // backlog.
        let default = AdmissionConfig::default();
        let deadline_bound = OpClass::ALL
            .iter()
            .map(|&c| default.budget(c).deadline_nanos)
            .max()
            .unwrap();
        for row in report.rows.iter().filter(|r| r.multiplier >= 2.0) {
            assert!(
                row.shed_overloaded + row.shed_deadline > 0,
                "{} must shed at 2x",
                row.workload
            );
            assert!(
                row.p99_latency_nanos < 4 * deadline_bound,
                "{} p99 {}ns unbounded",
                row.workload,
                row.p99_latency_nanos
            );
        }
        // Headroom runs barely shed.
        for row in report.rows.iter().filter(|r| r.multiplier <= 0.5) {
            assert!(
                row.shed_rate < 0.05,
                "{} sheds {:.1}% at 0.5x",
                row.workload,
                row.shed_rate * 100.0
            );
        }
    }
}
