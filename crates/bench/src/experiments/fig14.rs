//! Fig. 14 — read scalability of follower nodes.
//!
//! The paper fixes the write load at 10K QPS, varies followers from 1 to 4
//! (1M1F → 1M3F in the figure's labeling), and shows read throughput
//! climbing (65K → 118K → 134K QPS) while sync latency stays ≈120 ms.
//!
//! We measure per-read costs on warm followers and replay them through the
//! virtual-time driver — each follower is one serializing resource (its
//! cache latch), clients are virtual workers. Sync latency reuses the
//! Fig. 13 methodology at the fixed 10K write rate.

use crate::vdriver::VirtualCluster;
use bg3_core::{ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{Edge, EdgeType, VertexId};
use bg3_storage::{LatencyModel, StoreConfig};
use serde::Serialize;
use std::time::Instant;

/// One follower-count measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Row {
    /// Number of RO nodes.
    pub ro_nodes: usize,
    /// Aggregate read throughput, ops/second (virtual time).
    pub read_qps: f64,
    /// Mean leader→follower sync latency, ms (simulated clock).
    pub sync_latency_ms: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Report {
    /// One row per follower count.
    pub rows: Vec<Fig14Row>,
    /// Merged registry snapshot across every follower count's deployment.
    pub metrics: bg3_storage::MetricsSnapshot,
}

fn run_scale(
    ro_nodes: usize,
    reads: usize,
    writes: usize,
) -> (Fig14Row, bg3_storage::MetricsSnapshot) {
    let dep = ReplicatedBg3::new(ReplicatedConfig {
        store: StoreConfig {
            extent_capacity: 1 << 20,
            latency: LatencyModel {
                append_us: 10,
                random_read_us: 0,
                per_kib_us: 0,
                mapping_publish_us: 0,
                network_rtt_us: 0,
            },
            ..StoreConfig::default()
        },
        ro_nodes,
        ..ReplicatedConfig::default()
    });

    // Fixed 10K QPS write stream with periodic polls (Fig. 13 pacing).
    let clock = dep.store().clock().clone();
    let mut last_poll = clock.now();
    for i in 0..writes as u64 {
        dep.insert_edge(&Edge::new(
            VertexId(i % 512),
            EdgeType::TRANSFER,
            VertexId(10_000 + i),
        ))
        .unwrap();
        clock.advance_nanos(100_000 - 10_000); // 10K QPS interarrival
        if clock.now().duration_since(last_poll) >= 200_000_000 {
            dep.poll_all().unwrap();
            last_poll = clock.now();
        }
    }
    dep.poll_all().unwrap();

    // Warm every follower, then measure read costs and replay them across
    // 16 virtual client workers, one latch per follower.
    for ro in 0..ro_nodes {
        dep.ro_check_edge(ro, VertexId(0), EdgeType::TRANSFER, VertexId(10_000))
            .unwrap();
    }
    let mut cluster = VirtualCluster::new(16);
    for i in 0..reads as u64 {
        let ro = (i % ro_nodes as u64) as usize;
        let src = VertexId(i % 512);
        let dst = VertexId(10_000 + (i % writes as u64));
        let started = Instant::now();
        dep.ro_check_edge(ro, src, EdgeType::TRANSFER, dst).unwrap();
        // Clamp scheduler outliers: a warm in-memory check is never
        // legitimately slower than ~50µs; larger samples are preemption
        // noise that would otherwise dominate one follower's latch chain.
        let cost = (started.elapsed().as_nanos() as u64).min(50_000);
        cluster.submit(cost, Some(ro as u64));
    }

    let mean_latency: f64 = (0..ro_nodes)
        .map(|i| dep.ro(i).sync_latency().mean_nanos() as f64 / 1e6)
        .sum::<f64>()
        / ro_nodes as f64;
    let row = Fig14Row {
        ro_nodes,
        read_qps: cluster.throughput(),
        sync_latency_ms: mean_latency,
    };
    (row, dep.metrics_snapshot())
}

/// Runs the sweep with `reads` follower reads per configuration.
pub fn run(reads: usize) -> Fig14Report {
    let mut rows = Vec::new();
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    for n in [1usize, 2, 4] {
        let (row, snap) = run_scale(n, reads, 2_000);
        rows.push(row);
        metrics.merge(&snap);
    }
    Fig14Report { rows, metrics }
}

/// Renders the figure's series.
pub fn render(report: &Fig14Report) -> String {
    let mut out = String::from("Fig. 14: Follower read scaling at fixed 10K write QPS\n");
    for row in &report.rows {
        out.push_str(&format!(
            "1 RW + {} RO  read {}  sync latency {:>6.1} ms\n",
            row.ro_nodes,
            super::kqps(row.read_qps),
            row.sync_latency_ms
        ));
    }
    out.push_str("(paper: 65K -> 118K -> 134K reads/s, latency flat ≈120 ms)\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_scale_with_followers_and_latency_stays_flat() {
        let report = super::run(4_000);
        let rows = &report.rows;
        assert!(rows[1].read_qps > rows[0].read_qps * 1.2, "2 RO > 1 RO");
        assert!(rows[2].read_qps > rows[1].read_qps, "4 RO > 2 RO");
        assert!(rows[2].read_qps > rows[0].read_qps * 1.5, "4 RO >> 1 RO");
        let lat: Vec<f64> = rows.iter().map(|r| r.sync_latency_ms).collect();
        let min = lat.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lat.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.6,
            "sync latency flat across RO counts: {lat:?}"
        );
    }
}
