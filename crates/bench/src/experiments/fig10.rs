//! Fig. 10 — write bandwidth: traditional (SLED-style) vs read-optimized
//! Bw-tree.
//!
//! A write-only power-law stream. The read-optimized tree re-flushes the
//! merged delta on every write, so it appends more bytes (the paper: 70 MB
//! vs 64.5 MB, +9.3%) — all of them sequential.

use bg3_bwtree::{BwTree, BwTreeConfig};
use bg3_storage::{AppendOnlyStore, StoreBuilder, StoreConfig, StreamId};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One system's write volume.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// System label.
    pub system: String,
    /// Bytes appended to the BASE stream (consolidations).
    pub base_bytes: u64,
    /// Bytes appended to the DELTA stream.
    pub delta_bytes: u64,
    /// Total bytes appended.
    pub total_bytes: u64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Report {
    /// SLED-style and read-optimized rows.
    pub rows: Vec<Fig10Row>,
    /// Extra write volume of the read-optimized tree (paper: +9.3%).
    pub overhead_pct: f64,
    /// Merged registry snapshot of both systems' stores.
    pub metrics: bg3_storage::MetricsSnapshot,
}

fn run_mode(config: BwTreeConfig, label: &str, ops: usize) -> (Fig10Row, AppendOnlyStore) {
    let store =
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build();
    let tree = BwTree::new(1, store.clone(), config);
    let zipf = Zipf::new(512, 1.0);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..ops {
        let key = format!("user{:06}", zipf.sample(&mut rng)).into_bytes();
        tree.put(&key, &[i as u8; 16]).unwrap();
    }
    let base = store.stream_stats(StreamId::BASE).unwrap().used_bytes;
    let delta = store.stream_stats(StreamId::DELTA).unwrap().used_bytes;
    let row = Fig10Row {
        system: label.to_string(),
        base_bytes: base,
        delta_bytes: delta,
        total_bytes: store.stats().snapshot().bytes_appended,
    };
    (row, store)
}

/// Runs the experiment with `ops` writes.
pub fn run(ops: usize) -> Fig10Report {
    let (sled, sled_store) = run_mode(BwTreeConfig::sled_baseline(), "SLED (traditional)", ops);
    let (bg3, bg3_store) = run_mode(
        BwTreeConfig::read_optimized_baseline(),
        "BG3 (read-optimized)",
        ops,
    );
    let overhead_pct = if sled.total_bytes > 0 {
        100.0 * (bg3.total_bytes as f64 / sled.total_bytes as f64 - 1.0)
    } else {
        0.0
    };
    Fig10Report {
        rows: vec![sled, bg3],
        overhead_pct,
        metrics: super::merged_metrics([&sled_store, &bg3_store]),
    }
}

/// Renders the figure's series.
pub fn render(report: &Fig10Report) -> String {
    let mut out = String::from("Fig. 10: Write bandwidth, traditional vs read-optimized Bw-tree\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:<22} base {}  delta {}  total {}\n",
            row.system,
            super::mib(row.base_bytes),
            super::mib(row.delta_bytes),
            super::mib(row.total_bytes),
        ));
    }
    out.push_str(&format!(
        "read-optimized write overhead: +{:.1}% (paper: +9.3%)\n",
        report.overhead_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn read_optimized_writes_more_but_modestly() {
        let report = super::run(4_000);
        let sled = &report.rows[0];
        let bg3 = &report.rows[1];
        assert!(bg3.total_bytes > sled.total_bytes, "merging costs bytes");
        assert!(bg3.delta_bytes > sled.delta_bytes);
        assert_eq!(
            bg3.base_bytes, sled.base_bytes,
            "consolidation volume identical at equal thresholds"
        );
        assert!(
            report.overhead_pct < 100.0,
            "overhead stays modest: +{:.1}%",
            report.overhead_pct
        );
    }
}
