//! §4.2 — storage cost comparison.
//!
//! The paper reports ~80% average storage-cost savings for BG3 over
//! ByteGraph and attributes it to two factors:
//!
//! 1. the Bw-tree forest + workload-aware reclamation easing the write
//!    amplification of LSM compaction, which keeps occupied capacity close
//!    to live data;
//! 2. "switching from LSM-tree based KV storage to shared cloud storage
//!    further reduces the cost per bit" — ByteGraph's persistence layer is
//!    a *multi-copy* distributed KV store (3 replicas on local SSD),
//!    whereas BG3 keeps a single logical copy on an erasure-coded
//!    append-only cloud service.
//!
//! We measure factor 1 directly (occupied/live bytes and background rewrite
//! volume after the same write stream) and apply factor 2 as an explicit,
//! documented constant ([`REPLICA_FACTOR`]); EXPERIMENTS.md discusses the
//! sensitivity.

use bg3_core::{Bg3Config, Bg3Db, ByteGraphConfig, ByteGraphDb, GcPolicyKind};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_lsm::LsmConfig;
use bg3_storage::StoreConfig;
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Copies of every byte ByteGraph's multi-copy KV layer stores (the paper's
/// production deployment uses 3-way replication); BG3's shared append-only
/// store keeps one logical copy (durability via the storage service's own
/// erasure coding, already included in its $/bit).
pub const REPLICA_FACTOR: u64 = 3;

/// One system's storage bill.
#[derive(Debug, Clone, Serialize)]
pub struct CostRow {
    /// System name.
    pub system: String,
    /// Live (valid) bytes at the end — the logical dataset.
    pub valid_bytes: u64,
    /// Occupied bytes per copy (valid + not-yet-reclaimed garbage).
    pub used_bytes: u64,
    /// Background maintenance rewrites (GC relocation / LSM compaction).
    pub background_bytes: u64,
    /// Total bytes written to storage (foreground + background).
    pub bytes_written: u64,
    /// Provisioned capacity across all copies: `used_bytes × copies`.
    pub billed_bytes: u64,
}

/// The comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CostReport {
    /// BG3 and ByteGraph rows.
    pub rows: Vec<CostRow>,
    /// Capacity-cost savings of BG3 vs ByteGraph, percent (paper: ~80%).
    pub capacity_savings_pct: f64,
    /// Background-write savings of BG3 vs ByteGraph, percent.
    pub background_savings_pct: f64,
    /// Merged registry snapshot of both systems' stores.
    pub metrics: bg3_storage::MetricsSnapshot,
}

fn workload(store_ops: usize, mut insert: impl FnMut(Edge)) {
    let users = Zipf::new(2_000, 1.1);
    let mut rng = StdRng::seed_from_u64(4);
    for i in 0..store_ops {
        let src = VertexId(users.sample(&mut rng));
        // A small per-user id space => heavy overwrite churn, as follow /
        // unfollow / re-follow traffic produces in production.
        let dst = VertexId(rng.gen_range(0..8));
        insert(Edge::new(src, EdgeType::FOLLOW, dst).with_props((i as u64).to_le_bytes().to_vec()));
    }
}

/// Runs the comparison with `ops` writes per system.
pub fn run(ops: usize) -> CostReport {
    // BG3: forest over small extents; background GC keeps utilization ≥75%.
    let bg3_config = Bg3Config {
        store: StoreConfig::counting().with_extent_capacity(16 * 1024),
        gc_policy: GcPolicyKind::WorkloadAware,
        ..Bg3Config::default()
    };
    let bg3 = Bg3Db::new(bg3_config);
    let mut i = 0usize;
    workload(ops, |e| {
        bg3.store().clock().advance_micros(25);
        bg3.insert_edge(&e).unwrap();
        i += 1;
        if i.is_multiple_of(2000) {
            bg3.reclaim_to_utilization(0.75, 4).unwrap();
        }
    });
    bg3.reclaim_to_utilization(0.75, 4).unwrap();
    let bg3_snap = bg3.store().stats().snapshot();
    let bg3_used = bg3.store().total_used_bytes();
    let bg3_row = CostRow {
        system: "BG3 (shared storage, 1 copy)".into(),
        valid_bytes: bg3.store().total_valid_bytes(),
        used_bytes: bg3_used,
        background_bytes: bg3_snap.relocation_bytes,
        bytes_written: bg3_snap.bytes_appended,
        billed_bytes: bg3_used, // single logical copy
    };

    // ByteGraph: LSM with a memory budget typical of the storage layer
    // (small memtables => real compaction traffic), 3-way replicated.
    let byte = ByteGraphDb::new(ByteGraphConfig {
        store: StoreConfig::counting().with_extent_capacity(1 << 20),
        lsm: LsmConfig {
            memtable_flush_bytes: 16 * 1024,
            l0_compaction_threshold: 4,
            level_base_bytes: 64 * 1024,
            level_size_multiplier: 8,
            max_levels: 5,
            wal_enabled: true,
        },
        ..ByteGraphConfig::default()
    });
    workload(ops, |e| byte.insert_edge(&e).unwrap());
    byte.lsm().flush().unwrap();
    let lsm_stats = byte.lsm().stats();
    let byte_snap = byte.lsm().store().stats().snapshot();
    let byte_used = byte.lsm().store().total_used_bytes();
    let byte_row = CostRow {
        system: format!("ByteGraph (LSM, {REPLICA_FACTOR} copies)"),
        valid_bytes: byte.lsm().store().total_valid_bytes(),
        used_bytes: byte_used,
        background_bytes: lsm_stats.compaction_bytes,
        bytes_written: byte_snap.bytes_appended,
        billed_bytes: byte_used * REPLICA_FACTOR,
    };

    let capacity_savings_pct = if byte_row.billed_bytes > 0 {
        100.0 * (1.0 - bg3_row.billed_bytes as f64 / byte_row.billed_bytes as f64)
    } else {
        0.0
    };
    let background_savings_pct = if byte_row.background_bytes > 0 {
        100.0 * (1.0 - bg3_row.background_bytes as f64 / byte_row.background_bytes as f64)
    } else {
        0.0
    };
    CostReport {
        rows: vec![bg3_row, byte_row],
        capacity_savings_pct,
        background_savings_pct,
        metrics: super::merged_metrics([bg3.store(), byte.lsm().store()]),
    }
}

/// Renders the comparison.
pub fn render(report: &CostReport) -> String {
    let mut out = String::from("§4.2: Storage cost comparison (same write stream)\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:<30} live {:>11}  occupied/copy {:>11}  background {:>11}  total-written {:>11}  billed {:>11}\n",
            row.system,
            super::mib(row.valid_bytes),
            super::mib(row.used_bytes),
            super::mib(row.background_bytes),
            super::mib(row.bytes_written),
            super::mib(row.billed_bytes),
        ));
    }
    out.push_str(&format!(
        "BG3 capacity-cost savings: {:.1}% (paper: ~80%); background-write savings: {:.1}%\n",
        report.capacity_savings_pct, report.background_savings_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn bg3_bills_less_capacity_and_less_background_io() {
        let report = super::run(8_000);
        let bg3 = &report.rows[0];
        let byte = &report.rows[1];
        assert!(
            bg3.billed_bytes < byte.billed_bytes,
            "BG3 {} vs ByteGraph {}",
            bg3.billed_bytes,
            byte.billed_bytes
        );
        assert!(
            report.capacity_savings_pct > 50.0,
            "large capacity savings: {:.1}%",
            report.capacity_savings_pct
        );
        assert!(byte.background_bytes > 0, "compaction ran");
        // GC keeps BG3's occupancy close to live data.
        assert!(bg3.used_bytes as f64 <= bg3.valid_bytes as f64 / 0.6);
    }
}
