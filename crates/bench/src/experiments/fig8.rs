//! Fig. 8 — overall throughput of BG3 vs ByteGraph vs the Neptune-like
//! comparator on the three Table-1 workloads, scaling up (4→16 vCPUs on one
//! machine) and out (2→10 nodes × 16 vCPUs).
//!
//! Per-op costs are measured on the real CPU by executing the workload
//! sequentially against each engine, then replayed through the virtual-time
//! driver with each engine's contention model (see `driver.rs`). Scale-out
//! runs the same costs against per-shard latches — shards are disjoint
//! (hash-routed by source vertex), matching §3.1.

use crate::driver::{execute_op, Engine, EngineKind};
use crate::vdriver::VirtualCluster;
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_workloads::{DouyinFollow, DouyinRecommendation, FinancialRiskControl, Op, WorkloadGen};
use serde::Serialize;
use std::time::Instant;

/// One throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// System name.
    pub system: String,
    /// `"cores"` (single machine) or `"nodes"` (16 cores each).
    pub axis: String,
    /// Core count or node count.
    pub scale: usize,
    /// Throughput in ops/second (virtual time).
    pub qps: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Report {
    /// All (workload × system × scale) measurements.
    pub rows: Vec<Fig8Row>,
    /// Merged registry snapshot across every (workload × system) cell.
    pub metrics: bg3_storage::MetricsSnapshot,
}

const WORKLOADS: [&str; 3] = [
    "Douyin Follow",
    "Financial Risk Control",
    "Douyin Recommendation",
];

fn make_gen(workload: &str, population: u64, seed: u64) -> Box<dyn WorkloadGen> {
    match workload {
        "Douyin Follow" => Box::new(DouyinFollow::new(population, 1.0, seed)),
        "Financial Risk Control" => Box::new(FinancialRiskControl::new(population, 1.0, seed)),
        "Douyin Recommendation" => Box::new(DouyinRecommendation::new(population, 1.0, seed)),
        other => panic!("unknown workload {other}"),
    }
}

fn preload(engine: &Engine, workload: &str, population: u64, edges: usize) {
    let etype = match workload {
        "Financial Risk Control" => EdgeType::TRANSFER,
        _ => EdgeType::FOLLOW,
    };
    let zipf = bg3_workloads::Zipf::new(population, 1.0);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1234);
    for _ in 0..edges {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        engine.insert_edge(&Edge::new(src, etype, dst)).unwrap();
    }
}

/// Simulated latency of one random storage read, nanoseconds. Cloud
/// append-only stores serve random reads in hundreds of microseconds
/// (§4.1: "millisecond-level latency"); sequential appends pipeline behind
/// group commit and are bandwidth- rather than latency-bound, so they are
/// not charged here.
const RANDOM_READ_NS: u64 = 150_000;

/// Measured `(cost_ns, resource)` pairs for one engine+workload run. An
/// op's cost is its CPU time plus one storage round-trip per random read
/// it issued — the read-amplification tax of Figs. 9/4.2 expressed in
/// wall-clock terms.
fn measure(
    engine: &Engine,
    workload: &str,
    population: u64,
    ops: usize,
) -> Vec<(u64, Option<u64>)> {
    let mut gen = make_gen(workload, population, 42);
    let mut samples = Vec::with_capacity(ops);
    let mut reads_before = engine.io_reads();
    for _ in 0..ops {
        let op: Op = gen.next_op();
        let resource = engine.resource_for(&op);
        let started = Instant::now();
        execute_op(engine, &op).unwrap();
        let cpu = started.elapsed().as_nanos() as u64;
        let reads_after = engine.io_reads();
        let io = (reads_after - reads_before) * RANDOM_READ_NS;
        reads_before = reads_after;
        samples.push((cpu + io, resource));
    }
    samples
}

fn replay(samples: &[(u64, Option<u64>)], workers: usize, shards: usize) -> f64 {
    let mut cluster = VirtualCluster::new(workers);
    for (i, &(cost, resource)) in samples.iter().enumerate() {
        // Hash-route ops round-robin-ish across disjoint shards; a shard's
        // latches are private to it.
        let shard = (i % shards) as u64;
        cluster.submit(cost, resource.map(|r| (shard << 40) | r));
    }
    cluster.throughput()
}

/// Runs the full grid. `ops` is the op count per (system, workload) cell.
pub fn run(ops: usize) -> Fig8Report {
    let population = 20_000;
    let preload_edges = 60_000;
    let mut rows = Vec::new();
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    for workload in WORKLOADS {
        for kind in EngineKind::all() {
            let engine = Engine::build(kind);
            preload(&engine, workload, population, preload_edges);
            let cell_ops = if workload == "Financial Risk Control" {
                ops / 3 // pattern matching is per-op expensive
            } else {
                ops
            };
            let samples = measure(&engine, workload, population, cell_ops);
            for cores in [4usize, 8, 16] {
                rows.push(Fig8Row {
                    workload: workload.into(),
                    system: kind.name().into(),
                    axis: "cores".into(),
                    scale: cores,
                    qps: replay(&samples, cores, 1),
                });
            }
            for nodes in [2usize, 4, 6, 8, 10] {
                rows.push(Fig8Row {
                    workload: workload.into(),
                    system: kind.name().into(),
                    axis: "nodes".into(),
                    scale: nodes,
                    qps: replay(&samples, nodes * 16, nodes),
                });
            }
            metrics.merge(&engine.runtime().metrics_snapshot());
        }
    }
    Fig8Report { rows, metrics }
}

/// Renders the figure's series, grouped like the paper's six panels.
pub fn render(report: &Fig8Report) -> String {
    let mut out = String::from("Fig. 8: Overall performance (virtual-time throughput)\n");
    for workload in WORKLOADS {
        for axis in ["cores", "nodes"] {
            out.push_str(&format!("-- {workload} / scaling by {axis} --\n"));
            for system in ["BG3", "ByteGraph", "Neptune-like"] {
                let series: Vec<String> = report
                    .rows
                    .iter()
                    .filter(|r| r.workload == workload && r.system == system && r.axis == axis)
                    .map(|r| format!("{}@{}", super::kqps(r.qps), r.scale))
                    .collect();
                out.push_str(&format!("{system:<13} {}\n", series.join("  ")));
            }
        }
    }
    out
}

/// Summary factors the paper quotes (BG3 over ByteGraph per workload, at
/// the largest single-machine scale).
pub fn speedups(report: &Fig8Report) -> Vec<(String, f64)> {
    WORKLOADS
        .iter()
        .map(|&w| {
            let at = |sys: &str| {
                report
                    .rows
                    .iter()
                    .find(|r| {
                        r.workload == w && r.system == sys && r.axis == "cores" && r.scale == 16
                    })
                    .map(|r| r.qps)
                    .unwrap_or(0.0)
            };
            let byte = at("ByteGraph");
            (
                w.to_string(),
                if byte > 0.0 { at("BG3") / byte } else { 0.0 },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg3_beats_baselines_and_scales() {
        let report = run(1_500);
        // BG3 ≥ ByteGraph > Neptune-like at 16 cores on the read-heavy
        // workloads; every system's 16-core figure ≥ its 4-core figure.
        for workload in ["Douyin Follow", "Douyin Recommendation"] {
            let qps = |sys: &str, scale: usize| {
                report
                    .rows
                    .iter()
                    .find(|r| {
                        r.workload == workload
                            && r.system == sys
                            && r.axis == "cores"
                            && r.scale == scale
                    })
                    .unwrap()
                    .qps
            };
            assert!(
                qps("BG3", 16) > qps("Neptune-like", 16) * 2.0,
                "{workload}: BG3 {} vs Neptune {}",
                qps("BG3", 16),
                qps("Neptune-like", 16)
            );
            assert!(
                qps("BG3", 16) >= qps("BG3", 4),
                "{workload}: scale-up does not regress"
            );
        }
    }
}
