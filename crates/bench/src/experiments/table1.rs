//! Table 1 — workload descriptions.

use bg3_workloads::{table1, WorkloadSpec};

/// Returns the three Table 1 rows.
pub fn run() -> [WorkloadSpec; 3] {
    table1()
}

/// Renders the table like the paper's.
pub fn render() -> String {
    let mut out = String::from("Table 1: Workload description\n");
    out.push_str("workload | read/write | graph | hops | ttl | description\n");
    for spec in run() {
        out.push_str(&spec.row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_three_rows() {
        let rendered = super::render();
        assert_eq!(rendered.lines().count(), 5);
        assert!(rendered.contains("Douyin Follow"));
        assert!(rendered.contains("Financial Risk Control"));
        assert!(rendered.contains("Douyin Recommendation"));
    }
}
