//! Table 2 — space-reclamation policies.
//!
//! Two workloads, mirroring §4.4:
//!
//! * **Workload 1** ("Douyin Follow"-shaped): write-only power-law stream
//!   with hot/cold skew and no TTL. Baseline = ArkDB-style dirty-ratio
//!   selection; BG3 adds the update gradient. The paper measures background
//!   relocation bandwidth of 15 MB/s vs 12.5 MB/s (−16%).
//! * **Workload 2** ("Financial Risk Control"-shaped): TTL'd inserts. With
//!   the TTL-aware policy, background movement drops to exactly zero — the
//!   extents expire wholesale (paper: 8 MB/s vs 0).

use bg3_core::{Bg3Config, Bg3Db, EngineRuntime, GcPolicyKind};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_storage::StoreConfig;
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One (workload, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Cell {
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Bytes relocated by background GC.
    pub moved_bytes: u64,
    /// Relocated bytes that later became garbage anyway — the wasted
    /// background I/O Fig. 5 argues about. The gradient policy exists to
    /// minimize exactly this.
    pub wasted_bytes: u64,
    /// Extents freed by relocation.
    pub relocated_extents: u64,
    /// Extents freed for free via TTL expiry.
    pub expired_extents: u64,
}

/// The table's data.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Report {
    /// Four cells: 2 workloads × 2 policies.
    pub cells: Vec<Table2Cell>,
    /// Relative reduction of *wasted* background writes on workload 1
    /// (the paper reports ~16% lower background bandwidth).
    pub w1_waste_reduction_pct: f64,
    /// Merged registry snapshot across every cell's engine.
    pub metrics: bg3_storage::MetricsSnapshot,
}

/// Workload 1: a moving hotspot — §3.3 Observation 1. Videos attract most
/// of their likes right after release and cool down afterwards, so *young*
/// extents churn (their records keep getting overwritten) while old extents
/// go quiet with a mix of garbage and survivors. GC runs under space
/// pressure, interleaved with the writes.
fn run_follow(policy: GcPolicyKind, ops: usize) -> (Table2Cell, bg3_storage::MetricsSnapshot) {
    let mut config = Bg3Config {
        store: StoreConfig::counting().with_extent_capacity(8 * 1024),
        gc_policy: policy,
        ..Bg3Config::default()
    };
    // Small pages: several base images per extent, so fragmentation is
    // fine-grained enough for extent selection to matter.
    config.forest.tree_config = config.forest.tree_config.with_max_page_entries(32);
    let db = Bg3Db::new(config);
    let users = Zipf::new(64, 1.1);
    // How far back (in video releases) a like reaches: heavily recent.
    let recency = Zipf::new(2_048, 1.3);
    let mut rng = StdRng::seed_from_u64(17);
    let mut total = bg3_gc::CycleReport::default();
    for i in 0..ops {
        let src = VertexId(users.sample(&mut rng));
        // Videos release steadily; likes target mostly recent releases, so
        // re-likes (overwrites) concentrate on young data.
        let released = (i / 2) as u64;
        let video = released.saturating_sub(recency.sample(&mut rng) - 1);
        // Advance simulated time so update gradients are measurable.
        db.store().clock().advance_micros(25);
        db.insert_edge(
            &Edge::new(src, EdgeType::LIKE, VertexId(video))
                .with_props((i as u64).to_le_bytes().to_vec()),
        )
        .unwrap();
        if i % 500 == 499 {
            // Algorithm 2's interface: reclaim a fixed number of extents
            // per cycle. The budget outstrips the supply of fully-dead
            // extents, so each policy must make marginal choices — that is
            // where dirty-ratio picks still-dying extents and wastes I/O.
            total.absorb(db.run_gc_cycle(24).unwrap());
        }
    }
    // Quiesce, then bring every run to the same utilization so the
    // comparison is space-fair: the hot extents a gradient-aware policy
    // deferred have finished dying by now and reclaim for (almost) free —
    // the payoff Fig. 5 predicts.
    db.store().clock().advance_millis(50);
    total.absorb(db.reclaim_to_utilization(0.90, 16).unwrap());
    let wasted = db.store().stats().snapshot().wasted_relocation_bytes;
    let cell = Table2Cell {
        workload: "Douyin Follow (no TTL)".into(),
        policy: policy_name(policy),
        moved_bytes: total.moved_bytes,
        wasted_bytes: wasted,
        relocated_extents: total.relocated_extents,
        expired_extents: total.expired_extents,
    };
    (cell, db.metrics_snapshot())
}

/// Workload 2: TTL'd inserts; after the TTL elapses whole extents die.
fn run_risk(policy: GcPolicyKind, ops: usize) -> (Table2Cell, bg3_storage::MetricsSnapshot) {
    let ttl_nanos = 50_000_000; // 50 simulated ms
    let mut config = Bg3Config {
        store: StoreConfig::counting().with_extent_capacity(8 * 1024),
        gc_policy: policy,
        ..Bg3Config::default()
    }
    .with_ttl_nanos(Some(ttl_nanos));
    let _ = &mut config;
    let db = Bg3Db::new(config);
    let accounts = Zipf::new(2048, 1.0);
    let mut rng = StdRng::seed_from_u64(18);
    let mut total = bg3_gc::CycleReport::default();
    for i in 0..ops {
        let src = VertexId(accounts.sample(&mut rng));
        let dst = VertexId(accounts.sample(&mut rng));
        db.store().clock().advance_micros(25); // 40K QPS pacing
        db.insert_edge(
            &Edge::new(src, EdgeType::TRANSFER, dst).with_props((i as u64).to_le_bytes().to_vec()),
        )
        .unwrap();
        if i % 500 == 499 {
            total.absorb(db.run_gc_cycle(24).unwrap());
        }
    }
    // Same space-fair equalization; with TTL data the aware policy gets
    // there purely through expiry.
    db.store().clock().advance_millis(60);
    total.absorb(db.reclaim_to_utilization(0.90, 16).unwrap());
    let wasted = db.store().stats().snapshot().wasted_relocation_bytes;
    let cell = Table2Cell {
        workload: "Financial Risk Control (TTL)".into(),
        policy: policy_name(policy),
        moved_bytes: total.moved_bytes,
        wasted_bytes: wasted,
        relocated_extents: total.relocated_extents,
        expired_extents: total.expired_extents,
    };
    (cell, db.metrics_snapshot())
}

fn policy_name(policy: GcPolicyKind) -> String {
    match policy {
        GcPolicyKind::Fifo => "FIFO".into(),
        GcPolicyKind::DirtyRatio => "Dirty ratio".into(),
        GcPolicyKind::WorkloadAware => "Workload-aware (+Gradient/+TTL)".into(),
    }
}

/// Runs both workloads under both policies.
pub fn run(ops: usize) -> Table2Report {
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    let mut cells = Vec::new();
    for (cell, snap) in [
        run_follow(GcPolicyKind::DirtyRatio, ops),
        run_follow(GcPolicyKind::WorkloadAware, ops),
        run_risk(GcPolicyKind::DirtyRatio, ops),
        run_risk(GcPolicyKind::WorkloadAware, ops),
    ] {
        cells.push(cell);
        metrics.merge(&snap);
    }
    let w1_waste_reduction_pct = if cells[0].wasted_bytes > 0 {
        100.0 * (1.0 - cells[1].wasted_bytes as f64 / cells[0].wasted_bytes as f64)
    } else {
        0.0
    };
    Table2Report {
        cells,
        w1_waste_reduction_pct,
        metrics,
    }
}

/// Renders the table.
pub fn render(report: &Table2Report) -> String {
    let mut out = String::from("Table 2: Evaluation of different space reclamation policies\n");
    for cell in &report.cells {
        out.push_str(&format!(
            "{:<30} | {:<32} | moved {:>11} (wasted {:>11}) | relocated {:>4} | expired {:>4}\n",
            cell.workload,
            cell.policy,
            super::mib(cell.moved_bytes),
            super::mib(cell.wasted_bytes),
            cell.relocated_extents,
            cell.expired_extents,
        ));
    }
    out.push_str(&format!(
        "workload-1 wasted-background-write reduction: {:.1}% (paper: ~16% bandwidth reduction)\n",
        report.w1_waste_reduction_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn gradient_reduces_and_ttl_eliminates_movement() {
        let report = super::run(8_000);
        let dirty_follow = &report.cells[0];
        let aware_follow = &report.cells[1];
        let dirty_risk = &report.cells[2];
        let aware_risk = &report.cells[3];
        assert!(dirty_follow.moved_bytes > 0, "baseline moves data");
        assert!(
            aware_follow.wasted_bytes < dirty_follow.wasted_bytes,
            "gradient-aware wastes less background I/O ({} vs {})",
            aware_follow.wasted_bytes,
            dirty_follow.wasted_bytes
        );
        assert!(
            aware_follow.moved_bytes < dirty_follow.moved_bytes,
            "gradient-aware also moves less in total ({} vs {})",
            aware_follow.moved_bytes,
            dirty_follow.moved_bytes
        );
        assert!(dirty_risk.moved_bytes > 0, "TTL-blind baseline moves data");
        assert_eq!(
            aware_risk.moved_bytes, 0,
            "TTL bypass moves nothing (paper: 0 MB/s)"
        );
        assert!(aware_risk.expired_extents > 0, "extents expire wholesale");
    }
}
