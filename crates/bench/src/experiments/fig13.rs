//! Fig. 13 — leader-follower synchronization latency vs write throughput.
//!
//! The paper raises the write load from 10K to 60K QPS and observes BG3's
//! sync latency staying flat around 120 ms: with dirty-page flushing pushed
//! to background group commit, the latency is just "how long it takes the
//! RW to write the WAL ... and the RO nodes to read this log".
//!
//! We reproduce that on the simulated clock: writes are paced at the target
//! QPS, each WAL append charges a small storage latency, and followers poll
//! the log on a fixed interval. Latency is measured per record from leader
//! timestamp to follower pickup.

use bg3_core::{ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{Edge, EdgeType, VertexId};
use bg3_storage::{LatencyModel, StoreConfig};
use bg3_sync::RwNodeConfig;
use serde::Serialize;

/// One write-rate measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Target write rate, queries/second.
    pub write_qps: u64,
    /// Mean leader→follower latency, ms (simulated clock).
    pub mean_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Report {
    /// One row per write rate.
    pub rows: Vec<Fig13Row>,
    /// Merged registry snapshot across every write rate's deployment.
    pub metrics: bg3_storage::MetricsSnapshot,
}

/// WAL-oriented latency model: appends cost 10 µs (pipelined log writes);
/// reads are charged to the poll loop, not the clock, to keep the two
/// timelines separable.
fn wal_latency() -> LatencyModel {
    LatencyModel {
        append_us: 10,
        random_read_us: 0,
        per_kib_us: 0,
        mapping_publish_us: 0,
        network_rtt_us: 0,
    }
}

/// Follower poll interval in simulated nanoseconds (200 ms — half of it is
/// the expected pickup delay).
const POLL_INTERVAL_NANOS: u64 = 200_000_000;

fn run_rate(write_qps: u64, sim_millis: u64) -> (Fig13Row, bg3_storage::MetricsSnapshot) {
    // Fixed simulated duration, not a fixed write count: every rate must
    // span several poll intervals or the latency sample is truncated.
    let writes = (write_qps * sim_millis / 1000) as usize;
    let dep = ReplicatedBg3::new(ReplicatedConfig {
        store: StoreConfig {
            extent_capacity: 1 << 20,
            latency: wal_latency(),
            ..StoreConfig::default()
        },
        ro_nodes: 1,
        rw: RwNodeConfig {
            group_commit_pages: 64,
            ..RwNodeConfig::default()
        },
        ..ReplicatedConfig::default()
    });
    let interarrival = 1_000_000_000 / write_qps;
    let clock = dep.store().clock().clone();
    let mut last_poll = clock.now();
    for i in 0..writes as u64 {
        dep.insert_edge(&Edge::new(
            VertexId(i % 4096),
            EdgeType::TRANSFER,
            VertexId(1_000_000 + i),
        ))
        .unwrap();
        // Pace the writer: the WAL append latency overlaps the interarrival
        // gap (log writes pipeline), so advance to the next arrival.
        clock.advance_nanos(interarrival.saturating_sub(10_000));
        if clock.now().duration_since(last_poll) >= POLL_INTERVAL_NANOS {
            dep.poll_all().unwrap();
            last_poll = clock.now();
        }
    }
    dep.poll_all().unwrap();
    let latency = dep.ro(0).sync_latency();
    let row = Fig13Row {
        write_qps,
        mean_ms: latency.mean_nanos() as f64 / 1e6,
        p99_ms: latency.percentile_nanos(0.99) as f64 / 1e6,
    };
    (row, dep.metrics_snapshot())
}

/// Runs the sweep, simulating `sim_millis` milliseconds per write rate.
pub fn run(sim_millis: u64) -> Fig13Report {
    let mut rows = Vec::new();
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    for i in 1..=6 {
        let (row, snap) = run_rate(i * 10_000, sim_millis);
        rows.push(row);
        metrics.merge(&snap);
    }
    Fig13Report { rows, metrics }
}

/// Renders the figure's series.
pub fn render(report: &Fig13Report) -> String {
    let mut out =
        String::from("Fig. 13: Leader-follower latency vs write throughput (simulated clock)\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:>3}K writes/s  mean {:>7.1} ms  p99 {:>7.1} ms\n",
            row.write_qps / 1000,
            row.mean_ms,
            row.p99_ms
        ));
    }
    out.push_str("(paper: flat ≈120 ms across 10K–60K)\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn latency_is_flat_across_write_rates() {
        let report = super::run(1_000);
        let means: Vec<f64> = report.rows.iter().map(|r| r.mean_ms).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0, f64::max);
        assert!(min > 10.0, "poll interval dominates: {means:?}");
        assert!(
            max / min < 1.5,
            "latency stays flat as load grows 6x: {means:?}"
        );
        // Roughly half the poll interval (100 ms), like the paper's 120 ms.
        assert!((50.0..200.0).contains(&means[0]), "mean {} ms", means[0]);
    }
}
