//! Scrub experiment — end-to-end integrity under silent corruption.
//!
//! Not a figure from the paper: this exercises the integrity machinery the
//! shared-storage design depends on (checksummed record frames, the
//! background scrubber, quarantine-and-repair). A durable [`Bg3Db`] runs a
//! seeded chaos schedule mixing [`FaultKind::ReadBitFlip`] (persistent rot
//! on BASE/DELTA reads), [`FaultKind::AppendTorn`] (torn tail writes), and
//! crash/failover cycles. Every acked write is mirrored into an in-memory
//! shadow model; after each failover and at the end the engine is diffed
//! against it.
//!
//! The experiment asserts the three integrity claims end to end:
//!
//! 1. **Zero acked writes lost** — every edge whose insert returned `Ok`
//!    is served back with the exact acked bytes after rot, repair, crash,
//!    and recovery.
//! 2. **Zero garbage bytes served** — corruption only ever surfaces as a
//!    structured checksum error (counted, absorbed, repaired), never as
//!    wrong payload bytes.
//! 3. **Quarantine → repair → reclaim ordering** — the trace shows every
//!    quarantined extent repaired before its space is reclaimed; GC never
//!    drops an extent with unrepaired damage.

use bg3_core::prelude::*;
use bg3_gc::ScrubReport as GcScrubReport;
use bg3_graph::MemGraph;
use bg3_storage::{FaultKind, StreamId};
use serde::Serialize;

/// One crash/failover round's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubRow {
    /// Round index (one crash + recovery per round).
    pub round: usize,
    /// Writes acked (and mirrored into the shadow) this round.
    pub ops_acked: u64,
    /// Cumulative injected faults fired so far (bit flips + torn appends).
    pub faults_fired: u64,
    /// Corrupt frames the scrubber found this round.
    pub corrupt_found: u64,
    /// Extents quarantined this round.
    pub quarantined: u64,
    /// Quarantined extents repaired and reclaimed this round.
    pub repaired: u64,
    /// Corrupt records re-materialized from the trees' in-memory images.
    pub resupplied: u64,
    /// Corrupt records nothing referenced (orphans of crash windows),
    /// dropped by repair; recovery covers them from WAL history.
    pub dropped: u64,
    /// Recovery attempts this round (a retry means replay itself tripped
    /// over fresh rot and the outgoing leader's scrubber repaired it).
    pub recover_attempts: u64,
    /// Acked edges missing or wrong after this round's failover (must be 0).
    pub acked_lost: u64,
    /// Reads served with bytes differing from the shadow (must be 0).
    pub garbage_served: u64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubChaosReport {
    /// One row per crash/failover round.
    pub rows: Vec<ScrubRow>,
    /// Acked edges missing/wrong at the final audit (must be 0).
    pub final_acked_lost: u64,
    /// Shadow mismatches served at the final audit (must be 0).
    pub final_garbage_served: u64,
    /// Checksum mismatches detected across the run (structured errors --
    /// proof the rot was seen and fenced, not served).
    pub checksum_mismatches_detected: u64,
    /// Every quarantine was followed by a repair, and every repair preceded
    /// its extent's reclaim, in trace order.
    pub quarantine_repair_reclaim_ordered: bool,
    /// Extents quarantined / repaired across the whole run.
    pub total_quarantined: u64,
    /// See [`Self::total_quarantined`].
    pub total_repaired: u64,
    /// Merged registry snapshot (one shared store across all rounds).
    pub metrics: MetricsSnapshot,
}

const USERS: u64 = 40;
const OPS_PER_ROUND: u64 = 1_100;

fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Workload op `i`: a follow-edge upsert, or `None` for read ticks.
fn op_at(i: u64) -> Option<Edge> {
    let r = mix(i);
    (r % 10 <= 7).then(|| Edge {
        src: VertexId(mix(r) % USERS),
        etype: EdgeType::FOLLOW,
        dst: VertexId(1_000 + mix(r ^ 0xABCD) % 160),
        props: i.to_le_bytes().to_vec(),
    })
}

fn scrub_config() -> Bg3Config {
    let mut config = Bg3Config::default();
    config.store = StoreConfig::counting()
        .with_extent_capacity(4096)
        .with_faults(
            FaultPlan::seeded(0x5C2B_B175_0000_5EED)
                // Persistent silent rot on the page streams. Budgeted: a
                // bounded schedule keeps the experiment deterministic while
                // still rotting records across several rounds.
                .with_rule(
                    FaultRule::new(FaultOp::Read, FaultKind::ReadBitFlip, 0.05)
                        .on_stream(StreamId::BASE)
                        .at_most(10),
                )
                .with_rule(
                    FaultRule::new(FaultOp::Read, FaultKind::ReadBitFlip, 0.05)
                        .on_stream(StreamId::DELTA)
                        .at_most(10),
                )
                // Torn tail writes: detected at append time, absorbed by
                // the trees' bounded retry.
                .with_rule(FaultRule::new(FaultOp::Append, FaultKind::AppendTorn, 0.02)),
        );
    config.forest = config.forest.clone().with_split_out_threshold(12);
    config.forest.tree_config = config
        .forest
        .tree_config
        .clone()
        .with_max_page_entries(8)
        .with_consolidate_threshold(4);
    config.gc_policy = GcPolicyKind::Fifo;
    config.durability = Some(DurabilityConfig {
        group_commit_pages: 6,
    });
    config
}

/// Diffs the engine against the shadow: `(acked_lost, garbage_served)`.
/// A missing edge is a lost ack; a present edge with the wrong bytes (or an
/// edge the shadow never acked) is garbage served.
fn audit(db: &Bg3Db, shadow: &MemGraph) -> (u64, u64) {
    let mut lost = 0u64;
    let mut garbage = 0u64;
    for u in 0..USERS {
        let id = VertexId(u);
        let want = shadow.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap();
        let got = db.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap();
        let got: std::collections::BTreeMap<_, _> = got.into_iter().collect();
        let mut acked = std::collections::BTreeSet::new();
        for (dst, props) in &want {
            acked.insert(*dst);
            match got.get(dst) {
                None => lost += 1,
                Some(p) if p != props => garbage += 1,
                Some(_) => {}
            }
        }
        garbage += got.keys().filter(|dst| !acked.contains(dst)).count() as u64;
    }
    (lost, garbage)
}

/// True iff, for every `ExtentQuarantine` event, a matching `ExtentRepair`
/// follows it and the extent's reclaim (`ExtentRelocate`/`ExtentExpire`)
/// follows the repair. GC must never reclaim unrepaired damage.
fn ordered(events: &[TraceEvent]) -> bool {
    events
        .iter()
        .filter(|e| e.kind == TraceKind::ExtentQuarantine)
        .all(|q| {
            let repair = events
                .iter()
                .find(|e| e.kind == TraceKind::ExtentRepair && e.subject == q.subject);
            let reclaim = events.iter().find(|e| {
                matches!(e.kind, TraceKind::ExtentRelocate | TraceKind::ExtentExpire)
                    && e.subject == q.subject
            });
            match (repair, reclaim) {
                (Some(r), Some(c)) => q.seq < r.seq && r.seq < c.seq,
                _ => false,
            }
        })
}

/// Runs `cycles` crash/failover rounds under the seeded chaos schedule.
pub fn run(cycles: usize) -> ScrubChaosReport {
    let config = scrub_config();
    let mut db = Bg3Db::new(config.clone());
    let shadow = MemGraph::new();
    let crash_points = [
        CrashPoint::MidFlush,
        CrashPoint::MidGroupCommit,
        CrashPoint::MidGcCycle,
    ];

    let mut rows = Vec::new();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut next_seq = 0u64;
    let mut op_index = 0u64;
    let mut total_scrub = GcScrubReport::default();

    for round in 0..cycles {
        let point = crash_points[round % crash_points.len()];
        let mut round_scrub = GcScrubReport::default();
        let mut ops_acked = 0u64;
        let mut crashed: Option<Edge> = None;

        // Steady state: writes, periodic background scrub, periodic GC.
        // The crash point arms late in the round, so the tail ops die
        // mid-flush / mid-commit / mid-GC.
        let arm_at = op_index + OPS_PER_ROUND;
        let deadline = arm_at + 600;
        while op_index < deadline {
            let i = op_index;
            op_index += 1;
            if i == arm_at {
                db.crash_switch().arm(point);
            }
            if let Some(edge) = op_at(i) {
                match db.insert_edge(&edge) {
                    Ok(()) => {
                        shadow.insert_edge(&edge).unwrap();
                        ops_acked += 1;
                    }
                    Err(e) if e.is_crash() => {
                        crashed = Some(edge);
                        break;
                    }
                    // Torn append that exhausted its retries: not acked,
                    // so the shadow doesn't adopt it either.
                    Err(_) => {}
                }
            }
            if i % 96 == 95 {
                if let Ok(r) = db.run_scrub_cycle() {
                    round_scrub.absorb(r);
                }
            }
            if i % 256 == 255 {
                match db.run_gc_cycle(2) {
                    Err(e) if e.is_crash() => break,
                    // GC tripping over rot (checksum error on a relocation
                    // read) aborts the cycle; the scrubber repairs it.
                    _ => {}
                }
            }
        }
        db.crash_switch().disarm(point);

        // Pre-recovery fsck barrier: the dying leader's in-memory page
        // images repair every rotted extent, so replay reads verified
        // frames. Recovery reads can still flip fresh bits (the injector
        // stays hot) — each failed attempt is scrubbed and retried.
        if let Ok(r) = db.scrub_until_clean(8) {
            round_scrub.absorb(r);
        }
        let store = db.store().clone();
        let mapping = db.mapping().expect("durable engine").clone();
        let mut recover_attempts = 0u64;
        let recovered = loop {
            recover_attempts += 1;
            match Bg3Db::recover(store.clone(), mapping.clone(), config.clone()) {
                Ok(next) => break next,
                Err(e) => {
                    if recover_attempts >= 16 {
                        panic!("round {round}: recovery permanently stuck on {e}");
                    }
                    if let Ok(r) = db.scrub_until_clean(8) {
                        round_scrub.absorb(r);
                    }
                }
            }
        };
        // The interrupted op is atomic: adopt it into the shadow iff it
        // landed.
        if let Some(edge) = &crashed {
            if recovered
                .get_edge(edge.src, edge.etype, edge.dst)
                .unwrap()
                .as_deref()
                == Some(edge.props.as_slice())
            {
                shadow.insert_edge(edge).unwrap();
            }
        }
        db = recovered;

        let (acked_lost, garbage_served) = audit(&db, &shadow);
        let fresh = db.store().trace().events_since(next_seq);
        next_seq = fresh.iter().map(|e| e.seq + 1).max().unwrap_or(next_seq);
        events.extend(fresh);
        total_scrub.absorb(round_scrub);
        rows.push(ScrubRow {
            round,
            ops_acked,
            faults_fired: db.store().fault_injector().total_fired(),
            corrupt_found: round_scrub.corrupt_records,
            quarantined: round_scrub.extents_quarantined,
            repaired: round_scrub.extents_repaired,
            resupplied: round_scrub.records_resupplied,
            dropped: round_scrub.records_dropped,
            recover_attempts,
            acked_lost,
            garbage_served,
        });
    }

    // Final deep scrub, then the closing audit over every acked write.
    if let Ok(r) = db.scrub_until_clean(8) {
        total_scrub.absorb(r);
    }
    let (final_acked_lost, final_garbage_served) = audit(&db, &shadow);
    let fresh = db.store().trace().events_since(next_seq);
    events.extend(fresh);
    let checksum_mismatches_detected = db.io_snapshot().checksum_mismatches;
    let metrics = db.metrics_snapshot();

    ScrubChaosReport {
        rows,
        final_acked_lost,
        final_garbage_served,
        checksum_mismatches_detected,
        quarantine_repair_reclaim_ordered: ordered(&events),
        total_quarantined: total_scrub.extents_quarantined,
        total_repaired: total_scrub.extents_repaired,
        metrics,
    }
}

/// Renders the round table.
pub fn render(report: &ScrubChaosReport) -> String {
    let mut out = String::from("Scrub: integrity under bit rot, torn writes, and failover\n");
    out.push_str(
        "round  acked  faults  corrupt  quarantined  repaired  resupplied  dropped  recover  lost  garbage\n",
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{:>5} {:>6} {:>7} {:>8} {:>12} {:>9} {:>11} {:>8} {:>8} {:>5} {:>8}\n",
            row.round,
            row.ops_acked,
            row.faults_fired,
            row.corrupt_found,
            row.quarantined,
            row.repaired,
            row.resupplied,
            row.dropped,
            row.recover_attempts,
            row.acked_lost,
            row.garbage_served,
        ));
    }
    out.push_str(&format!(
        "final audit: acked lost {}  garbage served {}  mismatches detected {}\n",
        report.final_acked_lost, report.final_garbage_served, report.checksum_mismatches_detected,
    ));
    out.push_str(&format!(
        "quarantine < repair < reclaim in trace order: {}\n",
        report.quarantine_repair_reclaim_ordered
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_acked_write_lost_and_no_garbage_served() {
        let report = run(3);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert_eq!(row.acked_lost, 0, "round {} lost acked writes", row.round);
            assert_eq!(row.garbage_served, 0, "round {} served garbage", row.round);
            assert!(row.ops_acked > 0, "round {} acked nothing", row.round);
        }
        assert_eq!(report.final_acked_lost, 0);
        assert_eq!(report.final_garbage_served, 0);
        assert!(report.quarantine_repair_reclaim_ordered);
        assert!(
            report.checksum_mismatches_detected > 0,
            "the schedule injected rot, so detections must be nonzero"
        );
        assert_eq!(
            report.total_quarantined, report.total_repaired,
            "every quarantined extent was repaired"
        );
    }
}
