//! Fig. 12 — recall under packet loss: command forwarding (ByteGraph) vs
//! WAL-through-shared-storage (BG3).
//!
//! The paper injects 1–10% packet loss into the forwarding fabric and
//! measures the fraction of leader writes each follower can read.
//! ByteGraph degrades (98% → 91% → 83%); BG3 stays at 1.0 because no
//! lossy network sits between the leader's WAL and the followers.

use bg3_core::{ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{Edge, EdgeType, VertexId};
use bg3_sync::{ForwardingConfig, ForwardingReplicator};
use serde::Serialize;

/// One loss-rate measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Injected packet-loss probability.
    pub packet_loss: f64,
    /// Forwarding baseline's recall.
    pub bytegraph_recall: f64,
    /// BG3's recall.
    pub bg3_recall: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Report {
    /// One row per loss rate.
    pub rows: Vec<Fig12Row>,
    /// Merged registry snapshot across every loss rate's BG3 deployment.
    pub metrics: bg3_storage::MetricsSnapshot,
}

/// Runs the experiment with `writes` edge insertions per configuration.
pub fn run(writes: usize) -> Fig12Report {
    let edges: Vec<(VertexId, EdgeType, VertexId)> = (0..writes as u64)
        .map(|i| (VertexId(i % 997), EdgeType::TRANSFER, VertexId(100_000 + i)))
        .collect();

    let mut rows = Vec::new();
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    for loss in [0.0, 0.01, 0.05, 0.10] {
        // Baseline: forward commands over a lossy channel.
        let fwd = ForwardingReplicator::new(ForwardingConfig {
            replicas: 1,
            packet_loss: loss,
            seed: 21,
        });
        for &(s, _, d) in &edges {
            fwd.put(&s.0.to_be_bytes(), &d.0.to_be_bytes());
        }
        let bytegraph_recall = fwd.recall(0);

        // BG3: WAL through shared storage — loss-free by construction; the
        // network loss applies to the (nonexistent) forwarding path.
        let dep = ReplicatedBg3::new(ReplicatedConfig::default());
        for &(s, t, d) in &edges {
            dep.insert_edge(&Edge::new(s, t, d)).unwrap();
        }
        dep.poll_all().unwrap();
        let bg3_recall = dep.recall(0, &edges).unwrap();

        metrics.merge(&dep.metrics_snapshot());
        rows.push(Fig12Row {
            packet_loss: loss,
            bytegraph_recall,
            bg3_recall,
        });
    }
    Fig12Report { rows, metrics }
}

/// Renders the figure's series.
pub fn render(report: &Fig12Report) -> String {
    let mut out = String::from("Fig. 12: Recall rates under packet loss\n");
    out.push_str("loss   ByteGraph(forwarding)  BG3(WAL)\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:>4.0}%  {:>20.3}  {:>8.3}\n",
            row.packet_loss * 100.0,
            row.bytegraph_recall,
            row.bg3_recall
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn bg3_recall_is_one_while_forwarding_degrades() {
        let report = super::run(2_000);
        for row in &report.rows {
            assert_eq!(row.bg3_recall, 1.0, "BG3 at loss {}", row.packet_loss);
            let expected = 1.0 - row.packet_loss;
            assert!(
                (row.bytegraph_recall - expected).abs() < 0.03,
                "forwarding recall {} ≈ {} at loss {}",
                row.bytegraph_recall,
                expected,
                row.packet_loss
            );
        }
        assert!(report.rows[3].bytegraph_recall < report.rows[0].bytegraph_recall);
    }
}
