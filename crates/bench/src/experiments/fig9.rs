//! Fig. 9 — read amplification: traditional (SLED-style) vs read-optimized
//! Bw-tree.
//!
//! Protocol (§4.3.1): both trees get identical settings — consolidate after
//! every 10 delta updates, splits disabled, cache size zero so every read
//! hits storage — and the same interleaved power-law read/write stream. The
//! paper reports entry QPS 20k fanning out to 76k storage QPS for SLED
//! (3.87× amplification) vs 48k for BG3 (2.4×, a 36.8% reduction).

use bg3_bwtree::{BwTree, BwTreeConfig};
use bg3_storage::{AppendOnlyStore, StoreBuilder, StoreConfig};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One system's measured amplification.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// System label ("SLED (traditional)" / "BG3 (read-optimized)").
    pub system: String,
    /// Entry-level reads issued.
    pub entry_reads: u64,
    /// Random storage reads those lookups caused.
    pub storage_reads: u64,
    /// `storage_reads / entry_reads`.
    pub amplification: f64,
    /// Cache-adjusted store-level accounting: with the page cache on by
    /// default, repeat reads of hot pages never reach storage.
    pub io: super::IoSummary,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Report {
    /// SLED-style and read-optimized rows.
    pub rows: Vec<Fig9Row>,
    /// Relative reduction of storage reads, BG3 vs SLED (paper: 36.8%).
    pub reduction_pct: f64,
    /// Merged registry snapshot of both systems' stores.
    pub metrics: bg3_storage::MetricsSnapshot,
}

fn run_mode(config: BwTreeConfig, label: &str, ops: usize) -> (Fig9Row, AppendOnlyStore) {
    let store =
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build();
    let tree = BwTree::new(1, store.clone(), config);
    let zipf = Zipf::new(512, 1.0);
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..ops {
        let write_key = format!("user{:06}", zipf.sample(&mut rng)).into_bytes();
        tree.put(&write_key, &i.to_le_bytes()).unwrap();
        let read_key = format!("user{:06}", zipf.sample(&mut rng)).into_bytes();
        let _ = tree.get(&read_key).unwrap();
    }
    let stats = tree.stats().snapshot();
    let row = Fig9Row {
        system: label.to_string(),
        entry_reads: stats.cold_reads,
        storage_reads: stats.cold_read_ios,
        amplification: stats.read_amplification(),
        io: super::IoSummary::from_delta(&store.stats().snapshot()),
    };
    (row, store)
}

/// Runs the experiment with `ops` interleaved write+read pairs.
pub fn run(ops: usize) -> Fig9Report {
    let (sled, sled_store) = run_mode(BwTreeConfig::sled_baseline(), "SLED (traditional)", ops);
    let (bg3, bg3_store) = run_mode(
        BwTreeConfig::read_optimized_baseline(),
        "BG3 (read-optimized)",
        ops,
    );
    let reduction_pct = if sled.storage_reads > 0 {
        100.0 * (1.0 - bg3.storage_reads as f64 / sled.storage_reads as f64)
    } else {
        0.0
    };
    Fig9Report {
        rows: vec![sled, bg3],
        reduction_pct,
        metrics: super::merged_metrics([&sled_store, &bg3_store]),
    }
}

/// Renders the figure's series.
pub fn render(report: &Fig9Report) -> String {
    let mut out =
        String::from("Fig. 9: Read amplification, traditional vs read-optimized Bw-tree\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:<22} entry reads {:>7}  storage reads {:>8}  amplification {:.2}x\n",
            row.system, row.entry_reads, row.storage_reads, row.amplification
        ));
    }
    out.push_str(&format!(
        "storage-read reduction: {:.1}% (paper: 36.8%)\n",
        report.reduction_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn read_optimized_cuts_storage_reads() {
        let report = super::run(2_000);
        let sled = &report.rows[0];
        let bg3 = &report.rows[1];
        assert!(sled.amplification > bg3.amplification);
        assert!(
            bg3.amplification <= 2.0 + 1e-9,
            "single-delta invariant caps reads at 2: {}",
            bg3.amplification
        );
        assert!(
            report.reduction_pct > 20.0,
            "substantial reduction: {:.1}%",
            report.reduction_pct
        );
    }
}
