//! Failover chaos experiment — kill → promote → resurrect-zombie cycles.
//!
//! Not a figure from the paper: this exercises the availability claims
//! behind §3.1's one-RW-many-RO topology. Each cycle writes a batch through
//! a [`FailoverCluster`], crashes the leader at an armed crash point
//! (alternating `MidGroupCommit` / `MidFlush`), serves stale-flagged reads
//! through the detection window, promotes the most caught-up follower on
//! the next epoch, then resurrects the dead leader as a zombie and proves
//! the store fences its writes. A shadow model of *acknowledged* writes is
//! diffed against the post-failover cluster after every cycle: zero lost
//! acked writes, zero zombie writes visible.

use bg3_core::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

/// One kill→promote→resurrect cycle's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverCycle {
    /// Cycle index (0-based).
    pub cycle: usize,
    /// Crash point armed on the dying leader.
    pub crash_point: String,
    /// Acknowledged writes in the shadow model when the leader died.
    pub acked_at_kill: usize,
    /// Stale-flagged reads served during the outage window.
    pub stale_reads_during_outage: u64,
    /// WAL records the promoted follower replayed past its `seen_lsn`.
    pub promotion_replay_records: u64,
    /// Leadership epoch after the promotion.
    pub epoch_after: u64,
    /// Zombie publishes + appends the fence rejected this cycle.
    pub zombie_rejections: u64,
    /// Acked writes missing from the post-failover cluster (must be 0).
    pub lost_acked_writes: usize,
    /// Zombie writes visible on the post-failover cluster (must be 0).
    pub zombie_writes_visible: usize,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverReport {
    /// One row per cycle.
    pub cycles: Vec<FailoverCycle>,
    /// Cluster counters after the last cycle (fence state included).
    pub final_stats: FailoverStatsSnapshot,
    /// Total acknowledged writes across every cycle.
    pub total_acked_writes: usize,
    /// True iff no cycle lost an acknowledged write.
    pub all_acked_writes_survived: bool,
    /// True iff no zombie write ever became visible.
    pub no_zombie_writes_visible: bool,
    /// True iff, for every promoted epoch, the trace shows its
    /// `epoch_seal` event strictly before the new leader's first WAL
    /// append under that epoch (the fencing order §3.4 demands).
    pub seal_precedes_new_leader_appends: bool,
    /// Merged registry snapshot (data plane + metadata plane).
    pub metrics: MetricsSnapshot,
}

const WRITES_PER_CYCLE: usize = 120;
const OUTAGE_READS: usize = 12;
const HEARTBEAT_TIMEOUT_NANOS: u64 = 1_000_000;

fn value_for(cycle: usize, i: usize) -> Vec<u8> {
    let mut z = (cycle as u64) << 32 | i as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z.to_le_bytes().to_vec()
}

/// Retries `f` while it fails transiently (bounded); returns the last
/// result either way.
fn with_retries<T>(mut f: impl FnMut() -> StorageResult<T>, attempts: usize) -> StorageResult<T> {
    let mut last = f();
    for _ in 1..attempts {
        match &last {
            Err(e) if e.is_transient() => last = f(),
            _ => break,
        }
    }
    last
}

/// Polls the current follower generation until two consecutive quiet
/// rounds (or the retry budget runs out).
fn drain_followers(cluster: &FailoverCluster) {
    let mut quiet = 0;
    for _ in 0..64 {
        match cluster.poll_followers() {
            Ok(0) => quiet += 1,
            Ok(_) => quiet = 0,
            Err(_) => {} // transient injected fault; try again
        }
        if quiet >= 2 {
            break;
        }
    }
}

/// Runs `cycles` seeded kill→promote→resurrect cycles; see module docs.
pub fn run(cycles: usize) -> FailoverReport {
    let plan = FaultPlan::seeded(0xFA11_07E5)
        .with_rule(
            FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 0.01).at_most(2 * cycles as u64),
        )
        .with_rule(
            FaultRule::new(FaultOp::MappingPublish, FaultKind::PublishDrop, 0.05)
                .at_most(cycles as u64),
        );
    let cluster = FailoverCluster::new(FailoverConfig {
        store: StoreConfig::counting().with_faults(plan),
        ro_nodes: 2,
        heartbeat_timeout_nanos: HEARTBEAT_TIMEOUT_NANOS,
        ..FailoverConfig::default()
    });

    let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut zombie_keys: Vec<Vec<u8>> = Vec::new();
    let mut rows = Vec::with_capacity(cycles);

    for cycle in 0..cycles {
        // 1. A batch of leader writes; only acknowledged ones enter the
        //    shadow. Periodic checkpoints give followers images to adopt.
        for i in 0..WRITES_PER_CYCLE {
            let key = format!("c{cycle:02}-k{i:03}").into_bytes();
            let value = value_for(cycle, i);
            if cluster.put(&key, &value).is_ok() {
                shadow.insert(key, value);
            }
            if i % 30 == 29 {
                let _ = cluster.checkpoint(); // transient faults tolerated
                let _ = cluster.poll_followers();
            }
        }
        // A short acked tail the followers never poll: promotion must
        // replay it from the shared WAL.
        for i in 0..3 {
            let key = format!("c{cycle:02}-tail{i}").into_bytes();
            let value = value_for(cycle, WRITES_PER_CYCLE + i);
            if cluster.put(&key, &value).is_ok() {
                shadow.insert(key, value);
            }
        }

        // 2. Crash the leader at an armed point mid-checkpoint, then kill.
        let point = if cycle % 2 == 0 {
            CrashPoint::MidGroupCommit
        } else {
            CrashPoint::MidFlush
        };
        let leader = cluster.leader().expect("leader installed");
        leader.crash_switch().arm(point);
        let crash = cluster.checkpoint();
        debug_assert!(crash.is_err(), "armed crash point fires");
        let zombie = cluster.kill_leader().expect("leader to kill");

        let stats_at_kill = cluster.stats();
        let acked_at_kill = shadow.len();

        // 3. The outage: reads keep flowing (stale-flagged), writes fail
        //    fast, the detection window runs on the virtual clock.
        let mut probe = shadow.keys().cycle();
        for _ in 0..OUTAGE_READS {
            let key = probe.next().cloned().unwrap_or_default();
            let _ = cluster.get(&key); // may be stale; counted by the node
        }
        let rejected_write = cluster.put(b"lost-during-outage", b"x");
        debug_assert!(rejected_write.is_err(), "no leader, no acks");

        // 4. Detection + promotion. Injected read faults can fail a
        //    promotion attempt; the coordinator just retries the tick.
        cluster
            .store()
            .clock()
            .advance_nanos(2 * HEARTBEAT_TIMEOUT_NANOS);
        let mut promoted = false;
        for _ in 0..8 {
            match cluster.tick() {
                Ok(FailoverTick::Promoted { .. }) => {
                    promoted = true;
                    break;
                }
                Ok(_) => {
                    cluster
                        .store()
                        .clock()
                        .advance_nanos(HEARTBEAT_TIMEOUT_NANOS);
                }
                Err(_) => {}
            }
        }
        assert!(promoted, "cycle {cycle}: promotion never succeeded");

        // 5. Resurrect the zombie and let it try to write: every plane
        //    must be fenced at the store.
        zombie.crash_switch().disarm(CrashPoint::MidGroupCommit);
        zombie.crash_switch().disarm(CrashPoint::MidFlush);
        let zombie_key = format!("zombie-c{cycle:02}").into_bytes();
        let zombie_put = zombie.put(&zombie_key, b"from the grave");
        debug_assert!(zombie_put.is_err(), "zombie append fenced");
        debug_assert!(zombie.checkpoint().is_err(), "zombie checkpoint fenced");
        // Checkpoints die on the WAL/flush (append) plane before reaching
        // the mapping; hit the publish plane directly too, as a zombie
        // whose flush already landed would.
        let stale_publish = zombie.mapping().publish_fenced(
            zombie.epoch(),
            std::iter::empty::<(u64, Option<bg3_storage::PageAddr>)>(),
        );
        // Rejected unless the fault plan happened to drop the publish
        // outright (a drop is indistinguishable from a slow network to the
        // zombie — either way nothing lands).
        debug_assert!(
            stale_publish.is_err() || cluster.store().fault_injector().total_fired() > 0,
            "zombie publish fenced"
        );
        zombie_keys.push(zombie_key);

        // 6. Verify: every acked write survived, no zombie write visible.
        drain_followers(&cluster);
        let mut lost = 0;
        for (key, value) in &shadow {
            match with_retries(|| cluster.get(key), 8) {
                Ok(Some(v)) if &v == value => {}
                _ => lost += 1,
            }
        }
        let mut zombies_visible = 0;
        for key in &zombie_keys {
            if matches!(with_retries(|| cluster.get(key), 8), Ok(Some(_))) {
                zombies_visible += 1;
            }
        }

        let stats = cluster.stats();
        rows.push(FailoverCycle {
            cycle,
            crash_point: format!("{point:?}"),
            acked_at_kill,
            stale_reads_during_outage: stats.stale_reads_served - stats_at_kill.stale_reads_served,
            promotion_replay_records: stats.promotion_replay_records
                - stats_at_kill.promotion_replay_records,
            epoch_after: stats.epoch,
            zombie_rejections: (stats.fence.rejected_publishes + stats.fence.rejected_appends)
                - (stats_at_kill.fence.rejected_publishes + stats_at_kill.fence.rejected_appends),
            lost_acked_writes: lost,
            zombie_writes_visible: zombies_visible,
        });
    }

    // Whole-stream trace-order check: every promotion this run performed
    // must show `epoch_seal` for the new epoch strictly before the new
    // leader's first WAL append under that epoch. A promotion with no seal
    // event — or a seal sequenced after an append it should have fenced —
    // fails the check.
    let events = cluster.trace().events();
    let seal_precedes_new_leader_appends = events
        .iter()
        .filter(|e| e.kind == TraceKind::Promotion)
        .all(|promotion| {
            let epoch = promotion.subject;
            let seal = events
                .iter()
                .find(|e| e.kind == TraceKind::EpochSeal && e.subject == epoch)
                .map(|e| e.seq);
            let first_append = events
                .iter()
                .find(|e| e.kind == TraceKind::WalAppend && e.detail == epoch)
                .map(|e| e.seq);
            match (seal, first_append) {
                (Some(seal), Some(append)) => seal < append,
                (Some(_), None) => true, // sealed; new leader never wrote
                (None, _) => false,      // promotion without a seal
            }
        });

    let final_stats = cluster.stats();
    FailoverReport {
        total_acked_writes: shadow.len(),
        all_acked_writes_survived: rows.iter().all(|r| r.lost_acked_writes == 0),
        no_zombie_writes_visible: rows.iter().all(|r| r.zombie_writes_visible == 0),
        seal_precedes_new_leader_appends,
        metrics: cluster.metrics_snapshot(),
        cycles: rows,
        final_stats,
    }
}

/// Renders the cycle table plus the fence summary.
pub fn render(report: &FailoverReport) -> String {
    let mut out = String::from("Failover: kill -> promote -> resurrect-zombie cycles\n");
    out.push_str(
        "cycle  crash-point     acked  stale-reads  replayed  epoch  zombie-rej  lost  zombie-visible\n",
    );
    for row in &report.cycles {
        out.push_str(&format!(
            "{:>5}  {:<14} {:>6} {:>12} {:>9} {:>6} {:>11} {:>5} {:>15}\n",
            row.cycle,
            row.crash_point,
            row.acked_at_kill,
            row.stale_reads_during_outage,
            row.promotion_replay_records,
            row.epoch_after,
            row.zombie_rejections,
            row.lost_acked_writes,
            row.zombie_writes_visible,
        ));
    }
    let s = &report.final_stats;
    out.push_str(&format!(
        "acked writes {} | survived {} | zombies invisible {} | seal-before-append {} | epochs bumped {} | \
         zombie publishes rejected {} | zombie appends rejected {} | \
         promotion replays {} | stale reads served {}\n",
        report.total_acked_writes,
        report.all_acked_writes_survived,
        report.no_zombie_writes_visible,
        report.seal_precedes_new_leader_appends,
        s.fence.seals,
        s.fence.rejected_publishes,
        s.fence.rejected_appends,
        s.promotion_replay_records,
        s.stale_reads_served,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_lose_nothing_and_fence_every_zombie() {
        let report = run(3);
        assert_eq!(report.cycles.len(), 3);
        assert!(report.all_acked_writes_survived);
        assert!(report.no_zombie_writes_visible);
        assert!(
            report.seal_precedes_new_leader_appends,
            "every promoted epoch was sealed before the new leader appended"
        );
        assert_eq!(report.final_stats.failovers, 3);
        assert_eq!(report.final_stats.epoch, 1 + 3);
        assert_eq!(report.final_stats.fence.seals, 3);
        assert!(
            report.final_stats.fence.rejected_appends >= 3,
            "every resurrected zombie's WAL append was fenced"
        );
        assert!(
            report.final_stats.fence.rejected_publishes >= 1,
            "the mapping-publish plane rejected zombies too"
        );
        for row in &report.cycles {
            assert!(row.zombie_rejections >= 1, "cycle {}", row.cycle);
            assert!(row.promotion_replay_records >= 3, "cycle {}", row.cycle);
            assert!(row.stale_reads_during_outage >= 1, "cycle {}", row.cycle);
        }
        assert!(report.total_acked_writes >= 3 * WRITES_PER_CYCLE);
    }
}
