//! `profile` — request-scoped cost attribution over the Table-1 mixes,
//! with the conservation invariant as the headline assertion.
//!
//! Every operation in the measurement phases — profiled traversals,
//! ledger-wrapped writes, and their admission-control calls — runs under
//! an installed [`CostLedger`], so *every* instrumented charge site in the
//! engine (adjacency scans, page cache, storage reads, WAL flushes,
//! admission queue waits, hop truncations) attributes to exactly one
//! request. The invariant checked per phase: the per-dimension **sum of
//! all request ledgers equals the global registry delta**. If a charge
//! site bumped a global counter without charging the active ledger (or
//! vice versa), attribution would silently leak and the corresponding
//! [`DimCheck`] would fail.
//!
//! Two Table-1 mixes run under both executor modes:
//!
//! * **Douyin Follow** — 1-hop neighbor lists, 10% edge writes.
//! * **Douyin Recommendation** — the 70/20/10 1/2/3-hop mix, 5% writes.
//!
//! On top, a 3-hop `PROFILE` demo (batched and scalar) exercises the span
//! tree: one root span, one `hop{i}` child per hop with frontier sizes,
//! and nonzero bytes-scanned attribution; the worst profiles land in the
//! slow-query log exported through `slow_query_*` metrics.

use bg3_core::prelude::*;
use bg3_core::{AdmissionConfig, AdmissionController, OpClass};
use bg3_obs::span::{CostLedger, CostSnapshot, QueryProfile, SlowQueryLog, VirtualClock};
use bg3_obs::{names, MetricRegistry};
use bg3_query::{Executor, ExecutorConfig};
use bg3_storage::SimClock;
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const POPULATION: u64 = 4_096;
const PRELOAD_EDGES: usize = 24_000;
/// Virtual-time pacing advanced between operations, on top of the store's
/// modelled storage latency.
const OP_PACING_NS: u64 = 100_000;

/// One conservation row: a ledger dimension against its registry mirror.
#[derive(Debug, Clone, Serialize)]
pub struct DimCheck {
    /// Dimension name (the ledger field).
    pub dim: String,
    /// Sum of the dimension over every request ledger in the phase.
    pub ledger_sum: u64,
    /// The mirrored registry counter's (or histogram sum's) phase delta.
    pub registry_delta: u64,
    /// `ledger_sum == registry_delta`.
    pub conserved: bool,
}

/// One (mix × executor mode) measurement phase.
#[derive(Debug, Clone, Serialize)]
pub struct MixPhase {
    /// Table-1 mix name.
    pub mix: String,
    /// Executor mode (`batched` / `scalar`).
    pub mode: String,
    /// Operations attempted (reads + writes, shed included).
    pub ops: usize,
    /// Profiled traversals executed.
    pub reads: usize,
    /// Ledger-wrapped edge writes executed.
    pub writes: usize,
    /// Operations shed by admission control (no engine work, no charges).
    pub shed: usize,
    /// Per-dimension sum over every request ledger in the phase.
    pub ledger_total: CostSnapshot,
    /// The conservation rows.
    pub checks: Vec<DimCheck>,
    /// All rows conserved.
    pub conserved: bool,
}

/// Summary of one slow-query-log entry (the full profiles are large).
#[derive(Debug, Clone, Serialize)]
pub struct SlowEntry {
    /// The query text.
    pub query: String,
    /// Modelled cost the log ranked by (ns).
    pub modelled_cost_ns: u64,
    /// Adjacency bytes the query scanned.
    pub bytes_scanned: u64,
    /// Spans in the profile (root + hops).
    pub spans: usize,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Every (mix × mode) phase with its conservation rows.
    pub phases: Vec<MixPhase>,
    /// 3-hop PROFILE span tree, batched executor.
    pub demo_batched: QueryProfile,
    /// 3-hop PROFILE span tree, scalar executor.
    pub demo_scalar: QueryProfile,
    /// Slow-query log capacity used.
    pub slow_log_capacity: usize,
    /// The K worst profiles kept, costliest first.
    pub slow_log: Vec<SlowEntry>,
    /// Every phase conserved (the experiment also asserts this).
    pub conserved: bool,
    /// Registry snapshot of the engine after all phases.
    pub metrics: MetricsSnapshot,
}

/// Durable BG3 engine over the latency-modelled (cloud) store, with an
/// aggressive group commit so the write fraction flushes WAL inside the
/// ledger-wrapped ops — both give the nanosecond wait dimensions real
/// nonzero values to conserve. The checkpoint after preload seals base
/// pages so the CSR pack path engages.
fn build_bg3() -> Bg3Db {
    let mut config = Bg3Config::default().with_group_commit_pages(2);
    config.store = StoreConfig::default();
    config.forest = config.forest.clone().with_split_out_threshold(64);
    Bg3Db::open(config)
}

/// Default budgets except each class's burst sits *below* one expected op
/// cost: every admitted op carries a token deficit, so its queue wait is
/// structurally nonzero and the admit-wait conservation row has teeth.
/// Deadlines are widened so the deficit queues instead of shedding.
fn admission_config() -> AdmissionConfig {
    let mut config = AdmissionConfig::default();
    config.traversal.burst = config.traversal.expected_cost / 2;
    config.traversal.deadline_nanos = 50_000_000;
    config.write.burst = config.write.expected_cost / 2;
    config.write.deadline_nanos = 50_000_000;
    config
}

fn preload_store(store: &dyn GraphStore) {
    let zipf = Zipf::new(POPULATION, 1.0);
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..PRELOAD_EDGES {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        store
            .insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
}

fn exec_config(registry: &MetricRegistry, clock: &SimClock, log: &SlowQueryLog) -> ExecutorConfig {
    let c = clock.clone();
    ExecutorConfig {
        default_fanout: 32,
        max_traversers: 1_000_000,
        ..ExecutorConfig::default()
    }
    .with_metrics(registry.clone())
    .with_clock(VirtualClock::new(move || c.now().0))
    .with_slow_log(log.clone())
}

/// One Table-1 mix: its hop sampler plus the write fraction (percent).
struct Mix {
    name: &'static str,
    write_pct: u32,
    hops: fn(&mut StdRng) -> usize,
}

const MIXES: [Mix; 2] = [
    Mix {
        name: "Douyin Follow",
        write_pct: 10,
        hops: |_| 1,
    },
    Mix {
        name: "Douyin Recommendation",
        write_pct: 5,
        hops: |rng| match rng.gen_range(0..10) {
            0..=6 => 1,
            7..=8 => 2,
            _ => 3,
        },
    },
];

/// Histogram *sum* under `name`, 0 when absent — the mirror for the
/// ledger's nanosecond dimensions.
fn hist_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.histogram(name).map(|h| h.sum_nanos).unwrap_or(0)
}

/// Builds the conservation rows for one phase and asserts every one.
fn conservation_checks(
    mix: &str,
    mode: &str,
    ledger: &CostSnapshot,
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
) -> Vec<DimCheck> {
    let counter = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    let hist = |name: &str| hist_sum(after, name) - hist_sum(before, name);
    let rows = [
        (
            "bytes_scanned",
            ledger.bytes_scanned,
            counter(names::QUERY_SCAN_BYTES_TOTAL),
        ),
        (
            "csr_segments",
            ledger.csr_segments,
            counter(names::QUERY_CSR_SEGMENTS_SCANNED_TOTAL),
        ),
        (
            "cache_hits",
            ledger.cache_hits,
            counter(names::CACHE_HITS_TOTAL),
        ),
        (
            "cache_misses",
            ledger.cache_misses,
            counter(names::CACHE_MISSES_TOTAL),
        ),
        (
            "storage_reads",
            ledger.storage_reads,
            counter(names::STORAGE_RANDOM_READS_TOTAL),
        ),
        (
            "storage_read_bytes",
            ledger.storage_read_bytes,
            counter(names::STORAGE_BYTES_READ_TOTAL),
        ),
        (
            "read_wait_nanos",
            ledger.read_wait_nanos,
            hist(names::STORAGE_READ_LATENCY_NS),
        ),
        (
            "wal_wait_nanos",
            ledger.wal_wait_nanos,
            hist(names::WAL_FLUSH_LATENCY_NS),
        ),
        (
            "admit_wait_nanos",
            ledger.admit_wait_nanos,
            hist(names::ADMIT_QUEUE_WAIT_LATENCY_NS),
        ),
        (
            "hops_truncated",
            ledger.hops_truncated,
            counter(names::QUERY_HOP_TRUNCATIONS_TOTAL),
        ),
    ];
    rows.iter()
        .map(|&(dim, ledger_sum, registry_delta)| {
            assert_eq!(
                ledger_sum, registry_delta,
                "attribution leak in {mix}/{mode}: Σ per-query ledgers != \
                 global registry delta for {dim}"
            );
            DimCheck {
                dim: dim.to_string(),
                ledger_sum,
                registry_delta,
                conserved: ledger_sum == registry_delta,
            }
        })
        .collect()
}

/// Runs the full experiment: `queries` operations per (mix × mode) phase,
/// a slow-query log of capacity `slow_log_k`.
pub fn run(queries: usize, slow_log_k: usize) -> ProfileReport {
    let db = build_bg3();
    preload_store(&db);
    db.checkpoint().unwrap();
    let registry = db.store().stats().registry().clone();
    let clock = db.store().clock().clone();
    let slow_log = SlowQueryLog::with_registry(slow_log_k.max(1), &registry);
    let admit_config = admission_config();
    let admission = AdmissionController::new(clock.clone(), admit_config, &registry);
    let traversal_cost = admit_config.traversal.expected_cost;
    let write_cost = admit_config.write.expected_cost;

    let batched = Executor::new(exec_config(&registry, &clock, &slow_log));
    let scalar = Executor::new(exec_config(&registry, &clock, &slow_log).scalar());

    let mut phases = Vec::new();
    for mix in &MIXES {
        for (mode, exec) in [("batched", &batched), ("scalar", &scalar)] {
            let zipf = Zipf::new(POPULATION, 1.0);
            let mut rng = StdRng::seed_from_u64(7);
            let before = registry.snapshot();
            let mut ledger_total = CostSnapshot::default();
            let (mut reads, mut writes, mut shed) = (0usize, 0usize, 0usize);
            for _ in 0..queries {
                clock.advance_nanos(OP_PACING_NS);
                if rng.gen_range(0..100u32) < mix.write_pct {
                    // Write op: admission + the edge insert (and any WAL
                    // group commit it triggers) under one request ledger.
                    let ledger = CostLedger::new();
                    {
                        let _guard = ledger.install();
                        if admission.admit(OpClass::Write, write_cost).is_ok() {
                            let src = VertexId(zipf.sample(&mut rng));
                            let dst = VertexId(zipf.sample(&mut rng));
                            db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
                                .unwrap();
                            writes += 1;
                        } else {
                            shed += 1;
                        }
                    }
                    ledger_total.add(&ledger.snapshot());
                } else {
                    // Read op: admission wait charged to an outer ledger,
                    // the traversal itself profiled (its own ledger).
                    let admit_ledger = CostLedger::new();
                    let admitted = {
                        let _guard = admit_ledger.install();
                        admission.admit(OpClass::Traversal, traversal_cost).is_ok()
                    };
                    ledger_total.add(&admit_ledger.snapshot());
                    if !admitted {
                        shed += 1;
                        continue;
                    }
                    let src = zipf.sample(&mut rng);
                    let k = (mix.hops)(&mut rng);
                    let text = format!("g.V({src}).repeat(out(follow), {k}).dedup().count()");
                    let (_, prof) = exec.run_profiled_text(&db, &text).unwrap();
                    ledger_total.add(&prof.cost);
                    reads += 1;
                }
            }
            let after = registry.snapshot();
            let checks = conservation_checks(mix.name, mode, &ledger_total, &before, &after);
            assert!(
                ledger_total.bytes_scanned > 0 && ledger_total.csr_segments > 0,
                "{}/{mode}: attribution must have nonzero scan teeth",
                mix.name
            );
            let conserved = checks.iter().all(|c| c.conserved);
            phases.push(MixPhase {
                mix: mix.name.to_string(),
                mode: mode.to_string(),
                ops: queries,
                reads,
                writes,
                shed,
                ledger_total,
                checks,
                conserved,
            });
        }
    }

    // 3-hop PROFILE demo under both modes: the serializable span tree the
    // acceptance criterion names.
    let demo = "g.V(1).repeat(out(follow), 3).dedup().count()";
    let (_, demo_batched) = batched.run_profiled_text(&db, demo).unwrap();
    let (_, demo_scalar) = scalar.run_profiled_text(&db, demo).unwrap();
    for (mode, prof) in [("batched", &demo_batched), ("scalar", &demo_scalar)] {
        assert_eq!(prof.hop_spans().len(), 3, "{mode}: one span per hop");
        assert!(
            prof.root().is_some() && prof.cost.bytes_scanned > 0,
            "{mode}: 3-hop profile must attribute nonzero bytes scanned"
        );
        for hop in prof.hop_spans() {
            assert!(
                hop.attrs.iter().any(|a| a.key == "frontier"),
                "{mode}: hop spans carry frontier sizes"
            );
        }
    }

    let slow_entries: Vec<SlowEntry> = slow_log
        .entries()
        .into_iter()
        .map(|p| SlowEntry {
            query: p.query.clone(),
            modelled_cost_ns: p.modelled_cost_ns,
            bytes_scanned: p.cost.bytes_scanned,
            spans: p.spans.len(),
        })
        .collect();
    let conserved = phases.iter().all(|p| p.conserved);

    ProfileReport {
        phases,
        demo_batched,
        demo_scalar,
        slow_log_capacity: slow_log.capacity(),
        slow_log: slow_entries,
        conserved,
        metrics: db.metrics_snapshot(),
    }
}

/// Renders the conservation table and the slow-query log.
pub fn render(report: &ProfileReport) -> String {
    let mut out = String::from(
        "profile: per-query cost attribution, Σ request ledgers vs global registry deltas\n",
    );
    for phase in &report.phases {
        out.push_str(&format!(
            "{:<22} {:<8} reads {:>4}  writes {:>3}  shed {:>3}  scanned {}  {}\n",
            phase.mix,
            phase.mode,
            phase.reads,
            phase.writes,
            phase.shed,
            super::mib(phase.ledger_total.bytes_scanned),
            if phase.conserved {
                "conserved"
            } else {
                "LEAKED"
            },
        ));
    }
    let demo = &report.demo_batched;
    out.push_str(&format!(
        "3-hop profile (batched): {} spans, {} scanned, modelled cost {}ns\n",
        demo.spans.len(),
        super::mib(demo.cost.bytes_scanned),
        demo.modelled_cost_ns,
    ));
    out.push_str(&format!(
        "slow-query log (worst {} of capacity {}):\n",
        report.slow_log.len(),
        report.slow_log_capacity
    ));
    for entry in &report.slow_log {
        out.push_str(&format!(
            "  {:>12}ns  {} scanned  {} spans  {}\n",
            entry.modelled_cost_ns,
            super::mib(entry.bytes_scanned),
            entry.spans,
            entry.query
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_conserves_and_demo_trees_are_complete() {
        let report = run(80, 4);
        assert!(report.conserved, "run() asserts per-row; belt and braces");
        assert_eq!(report.phases.len(), 4, "two mixes x two modes");
        for phase in &report.phases {
            assert!(phase.reads > 0);
            assert!(phase.writes > 0, "{}: write fraction engaged", phase.mix);
            assert_eq!(phase.checks.len(), 10);
        }
        // The admission bucket must actually have queued somewhere, or the
        // admit-wait conservation row was trivially 0 == 0 everywhere.
        let admit_waits: u64 = report
            .phases
            .iter()
            .map(|p| p.ledger_total.admit_wait_nanos)
            .sum();
        assert!(admit_waits > 0, "admission queue waits attributed");
        // WAL flushes happened inside ledger-wrapped writes.
        let wal: u64 = report
            .phases
            .iter()
            .map(|p| p.ledger_total.wal_wait_nanos)
            .sum();
        assert!(wal > 0, "WAL waits attributed to writes");
        assert_eq!(report.demo_batched.hop_spans().len(), 3);
        assert_eq!(report.demo_scalar.hop_spans().len(), 3);
        assert!(!report.slow_log.is_empty());
        assert!(
            report
                .slow_log
                .windows(2)
                .all(|w| w[0].modelled_cost_ns >= w[1].modelled_cost_ns),
            "slow log is costliest-first"
        );
        // The profiler's own metrics flowed into the engine registry.
        let profiles = report.metrics.counter(names::QUERY_PROFILES_TOTAL).unwrap();
        assert!(profiles as usize >= report.phases.iter().map(|p| p.reads).sum::<usize>());
    }
}
