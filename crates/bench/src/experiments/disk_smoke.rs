//! Disk smoke test — the file backend's two headline claims on a real
//! filesystem, with real OS threads (no virtual clock shortcuts):
//!
//! 1. **Kill-and-recover loses zero acked writes.** Several threads hammer
//!    the WAL through the group-fsync path; the "node" is then killed by
//!    dropping every in-memory structure, and a brand-new store is opened
//!    over the surviving extent files. Every append that returned `Ok`
//!    must come back from [`bg3_wal::WalWriter::recover`] byte-identical.
//! 2. **Scrub detects an injected on-disk bit flip.** A bit is flipped
//!    directly in an extent *file* — below every store API — and the
//!    scrubber must detect it, quarantine the extent, and repair it from a
//!    resupplied payload, after which the record reads back intact.
//!
//! Everything runs in a self-cleaning tempdir; the experiment is the CI
//! proof (`scripts/check.sh`) that `SimBackend` and `FileBackend` share
//! one recovery/scrub behavior on actual files.

use bg3_storage::{
    AppendOnlyStore, BackendKind, MetricsSnapshot, PageAddr, ReadOpts, RepairSupply, StoreBuilder,
    StreamId,
};
use bg3_wal::{WalPayload, WalWriter};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct DiskSmokeReport {
    /// Backend under test (always `file`).
    pub backend: String,
    /// Real OS threads appending concurrently in phase 1.
    pub threads: usize,
    /// WAL appends that returned `Ok` before the kill.
    pub acked_records: u64,
    /// Records [`WalWriter::recover`] replayed from the extent files.
    pub recovered_records: u64,
    /// Acked records missing or altered after recovery (must be 0).
    pub acked_lost: u64,
    /// Corrupt frames the scrubber found after the on-disk bit flip
    /// (must be ≥ 1).
    pub corrupt_detected: u64,
    /// True when the flip drove the extent into quarantine.
    pub quarantined: bool,
    /// Records repaired from a resupplied payload.
    pub resupplied: u64,
    /// True when every record read back intact after the repair.
    pub post_repair_reads_ok: bool,
    /// Registry snapshot of the recovered store (backend counters included).
    pub metrics: MetricsSnapshot,
}

/// Minimal self-cleaning tempdir (no external crates available).
struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let unique = format!("bg3-disk-smoke-{}", std::process::id());
        let path = std::env::temp_dir().join(unique);
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn file_store(root: &std::path::Path) -> AppendOnlyStore {
    StoreBuilder::counting()
        .backend_kind(BackendKind::File {
            root: root.to_path_buf(),
        })
        .build()
}

/// Key a phase-1 record by identity: `(tree, page)` encodes
/// `(thread, op index)`, so equality means the exact acked bytes survived.
fn record_key(r: &bg3_wal::WalRecord) -> (u64, u64) {
    (r.tree, r.page)
}

/// Runs the smoke test: `threads` appenders × `per_thread` records, then
/// kill/recover, then the on-disk bit-flip scrub.
pub fn run(threads: usize, per_thread: usize) -> DiskSmokeReport {
    let tmp = TempDir::new();

    // ---- Phase 1: concurrent WAL appends, kill, recover. ----
    let acked: Vec<bg3_wal::WalRecord> = {
        let store = file_store(&tmp.0);
        let writer = Arc::new(WalWriter::new(store.clone()).with_group_sync_every(4));
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let writer = Arc::clone(&writer);
            handles.push(std::thread::spawn(move || {
                let mut acked = Vec::new();
                for i in 0..per_thread as u64 {
                    let rec = writer
                        .append(
                            t,
                            i,
                            WalPayload::Upsert {
                                key: format!("t{t}-k{i}").into_bytes(),
                                value: i.to_le_bytes().to_vec(),
                            },
                        )
                        .expect("append on a healthy file backend");
                    acked.push(rec);
                }
                acked
            }));
        }
        let mut acked = Vec::new();
        for h in handles {
            acked.extend(h.join().unwrap());
        }
        // The durability point: everything acked is on disk after this.
        writer.flush().unwrap();
        acked
    }; // `store` and `writer` drop here — the node is dead; files remain.

    let store = file_store(&tmp.0);
    let (_writer, recovered) =
        WalWriter::recover(store.clone()).expect("recovery from extent files");
    let replayed: std::collections::HashMap<(u64, u64), &bg3_wal::WalRecord> =
        recovered.iter().map(|r| (record_key(r), r)).collect();
    let mut acked_lost = 0u64;
    for want in &acked {
        match replayed.get(&record_key(want)) {
            Some(got) if got.payload == want.payload && got.lsn == want.lsn => {}
            _ => acked_lost += 1,
        }
    }

    // ---- Phase 2: flip a bit in a BASE extent file, scrub, repair. ----
    let mut payloads: Vec<(PageAddr, Vec<u8>)> = Vec::new();
    for i in 0..8u64 {
        let payload = format!("base-record-{i}").into_bytes();
        let addr = store.append(StreamId::BASE, &payload, i + 1, None).unwrap();
        payloads.push((addr, payload));
    }
    store.sync_stream(StreamId::BASE).unwrap();

    // Reach *under* the store: flip one payload bit in the extent file
    // itself, the way real media rots.
    let extent = payloads[0].0.extent;
    let ext_file = tmp
        .0
        .join("base")
        .join(format!("ext-{:016x}.dat", extent.0));
    let mut bytes = std::fs::read(&ext_file).expect("extent file exists");
    let victim = payloads[0].0.offset as usize; // first payload byte
    bytes[victim] ^= 0x01;
    std::fs::write(&ext_file, &bytes).unwrap();

    let check = store.verify_extent(StreamId::BASE, extent).unwrap();
    let quarantined = check.newly_quarantined;

    // Repair: the "owning tree" resupplies the payload it acked.
    let by_tag: std::collections::HashMap<u64, Vec<u8>> = payloads
        .iter()
        .enumerate()
        .map(|(i, (_, p))| (i as u64 + 1, p.clone()))
        .collect();
    let mut moves: Vec<(u64, PageAddr)> = Vec::new();
    let repair = store
        .repair_extent(
            StreamId::BASE,
            extent,
            |tag, _| RepairSupply::Payload(by_tag[&tag].clone()),
            |tag, _, to| moves.push((tag, to)),
        )
        .unwrap();

    let post_repair_reads_ok = moves.iter().all(|(tag, addr)| {
        store
            .read_with(*addr, ReadOpts { bypass_cache: true })
            .map(|bytes| bytes[..] == by_tag[tag][..])
            .unwrap_or(false)
    }) && !moves.is_empty();

    DiskSmokeReport {
        backend: "file".to_string(),
        threads,
        acked_records: acked.len() as u64,
        recovered_records: recovered.len() as u64,
        acked_lost,
        corrupt_detected: check.corrupt_records,
        quarantined,
        resupplied: repair.resupplied_records,
        post_repair_reads_ok,
        metrics: store.metrics_snapshot(),
    }
}

/// Renders the pass/fail summary.
pub fn render(report: &DiskSmokeReport) -> String {
    let mut out = String::from("Disk smoke: file backend on a real filesystem\n");
    out.push_str(&format!(
        "kill+recover : {} threads, {} acked, {} recovered, {} lost\n",
        report.threads, report.acked_records, report.recovered_records, report.acked_lost,
    ));
    out.push_str(&format!(
        "bit-flip scrub: {} corrupt detected, quarantined {}, {} resupplied, reads-after-repair ok {}\n",
        report.corrupt_detected, report.quarantined, report.resupplied, report.post_repair_reads_ok,
    ));
    let verdict = report.acked_lost == 0
        && report.corrupt_detected >= 1
        && report.quarantined
        && report.post_repair_reads_ok;
    out.push_str(&format!(
        "verdict      : {}\n",
        if verdict { "PASS" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_recover_and_bit_flip_scrub_pass_on_real_files() {
        let report = run(3, 40);
        assert_eq!(report.acked_records, 120);
        assert_eq!(report.recovered_records, 120);
        assert_eq!(report.acked_lost, 0, "acked writes lost across recovery");
        assert!(report.corrupt_detected >= 1, "on-disk flip went undetected");
        assert!(report.quarantined, "corrupt extent was not quarantined");
        assert!(report.resupplied >= 1);
        assert!(report.post_repair_reads_ok);
    }
}
