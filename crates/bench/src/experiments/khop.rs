//! `khop` — k-hop BFS frontier sweep: batched (morsel-driven) vs scalar
//! query execution over BG3, against the ByteGraph and Neptune-like
//! baselines.
//!
//! The workload is the Table-1 Douyin Recommendation hop mix (70% 1-hop,
//! 20% 2-hop, 10% 3-hop) of `repeat(out(follow), k).dedup().count()`
//! queries from Zipf-skewed sources over a sealed, checkpointed graph.
//! Four modes run the same seeded query stream:
//!
//! * **BG3 batched** — the default executor: one `neighbors_batch` sweep
//!   per frontier per hop. Sorted frontiers share sealed CSR segments, so
//!   each leaf page is scanned once per hop; terminal `dedup().count()`
//!   pushes the aggregation into the expansion (no traverser
//!   materialization).
//! * **BG3 per-vertex** — the scalar executor: one `neighbors` call per
//!   frontier vertex per hop, re-reading shared leaves.
//! * **ByteGraph / Neptune-like** — the comparison engines behind the
//!   batched executor (they only implement the per-vertex default).
//!
//! Modelled scan cost charges one storage round-trip per adjacency
//! *segment* scanned (BG3 modes, from `query_csr_segments_scanned_total`)
//! or per random storage read (baselines) — the same [`RANDOM_READ_NS`]
//! constant as Fig. 8. Per-query costs replay through the
//! [`VirtualCluster`] at each thread count; [`run_threads`] is the real
//! OS-thread mode behind `reproduce khop --threads N`.

use crate::driver::{Engine, EngineKind};
use crate::vdriver::VirtualCluster;
use bg3_core::prelude::*;
use bg3_obs::names;
use bg3_query::{Executor, ExecutorConfig, QueryResult};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Simulated latency of one random storage round-trip — same constant as
/// Fig. 8; here it prices one adjacency-segment scan.
const RANDOM_READ_NS: u64 = 150_000;

const POPULATION: u64 = 4_096;
const PRELOAD_EDGES: usize = 24_000;

/// Thread counts swept in the virtual replay.
pub const THREADS: [usize; 3] = [1, 4, 8];

/// Per-hop fan-out and traverser budget for the sweep: deep hops over a
/// power-law graph explode combinatorially under the executor default of
/// 100, so bound the fan-out like a production gateway and raise the
/// budget so no mode aborts.
fn khop_config() -> ExecutorConfig {
    ExecutorConfig {
        default_fanout: 32,
        max_traversers: 1_000_000,
        ..ExecutorConfig::default()
    }
}

/// One (mode × thread count) throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KhopRow {
    /// Execution mode / engine.
    pub mode: String,
    /// Virtual worker count.
    pub threads: usize,
    /// Queries per second (virtual time).
    pub qps: f64,
}

/// Per-mode scan accounting over the mix phase.
#[derive(Debug, Clone, Serialize)]
pub struct KhopCell {
    /// Execution mode / engine.
    pub mode: String,
    /// Queries executed.
    pub queries: usize,
    /// Scan units charged: adjacency segments (BG3 modes) or random
    /// storage reads (baselines).
    pub scan_units: u64,
    /// `scan_units × RANDOM_READ_NS` — the modelled scan cost.
    pub scan_cost_ns: u64,
    /// Adjacency bytes scanned (BG3 modes; 0 for baselines, which do not
    /// export the counter).
    pub scan_bytes: u64,
    /// Count pushdowns taken (batched mode only).
    pub pushdown_hits: u64,
    /// Mean frontier size fed to batched expansion (0 when the mode never
    /// batches).
    pub mean_frontier_len: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct KhopReport {
    /// All (mode × threads) measurements.
    pub rows: Vec<KhopRow>,
    /// Per-mode scan accounting.
    pub cells: Vec<KhopCell>,
    /// Modelled-scan-cost ratio per-vertex / batched on the pure 3-hop
    /// sweep (higher = batching wins).
    pub speedup_3hop_scan_cost: f64,
    /// Whether every mode returned identical per-query counts.
    pub modes_agree: bool,
    /// Merged registry snapshot across every engine.
    pub metrics: MetricsSnapshot,
}

/// Result of one real-OS-thread run (`--threads N`).
#[derive(Debug, Clone, Serialize)]
pub struct ThreadedKhopReport {
    /// OS threads driving the shared engine.
    pub threads: usize,
    /// Total queries executed across all threads.
    pub queries: usize,
    /// Wall-clock queries per second.
    pub qps: f64,
    /// Registry snapshot of the shared engine after the run.
    pub metrics: MetricsSnapshot,
}

/// Durable BG3 engine; the checkpoint after preload seals base pages so
/// the CSR pack path engages.
fn build_bg3() -> Bg3Db {
    let mut config = Bg3Config::default().with_durability();
    config.forest = config.forest.clone().with_split_out_threshold(64);
    Bg3Db::open(config)
}

fn preload_store(store: &dyn GraphStore) {
    let zipf = Zipf::new(POPULATION, 1.0);
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..PRELOAD_EDGES {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        store
            .insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
}

/// Douyin Recommendation hop mix: 70% 1-hop, 20% 2-hop, 10% 3-hop.
fn sample_hops(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..10) {
        0..=6 => 1,
        7..=8 => 2,
        _ => 3,
    }
}

/// Runs `queries` seeded k-hop queries, charging each its CPU time plus
/// one [`RANDOM_READ_NS`] per scan unit (`scan_units` is sampled around
/// every query). Returns the per-query `(cost, latch)` samples, the
/// per-query counts (for cross-mode agreement), and the total scan-unit
/// delta.
#[allow(clippy::type_complexity)]
fn measure(
    store: &dyn GraphStore,
    exec: &Executor,
    queries: usize,
    hops: Option<usize>,
    scan_units: &dyn Fn() -> u64,
    resource: Option<u64>,
) -> (Vec<(u64, Option<u64>)>, Vec<u64>, u64) {
    let zipf = Zipf::new(POPULATION, 1.0);
    let mut rng = StdRng::seed_from_u64(7);
    let mut samples = Vec::with_capacity(queries);
    let mut counts = Vec::with_capacity(queries);
    let first = scan_units();
    let mut before = first;
    for _ in 0..queries {
        let src = zipf.sample(&mut rng);
        let k = hops.unwrap_or_else(|| sample_hops(&mut rng));
        let text = format!("g.V({src}).repeat(out(follow), {k}).dedup().count()");
        let started = Instant::now();
        let result = exec.run_text(store, &text).unwrap();
        let cpu = started.elapsed().as_nanos() as u64;
        let after = scan_units();
        samples.push((cpu + (after - before) * RANDOM_READ_NS, resource));
        before = after;
        let QueryResult::Count(n) = result else {
            panic!("khop queries are terminal counts");
        };
        counts.push(n);
    }
    (samples, counts, before - first)
}

fn histogram_mean(snap: &MetricsSnapshot, name: &str) -> (u64, u64) {
    snap.histogram(name)
        .map(|h| (h.sum_nanos, h.count))
        .unwrap_or((0, 0))
}

/// Builds a cell from registry counter deltas (the BG3 modes).
fn bg3_cell(
    mode: &str,
    queries: usize,
    scan_units: u64,
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
) -> KhopCell {
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    let (sum_b, count_b) = histogram_mean(before, names::QUERY_FRONTIER_LEN);
    let (sum_a, count_a) = histogram_mean(after, names::QUERY_FRONTIER_LEN);
    let batches = count_a - count_b;
    KhopCell {
        mode: mode.to_string(),
        queries,
        scan_units,
        scan_cost_ns: scan_units * RANDOM_READ_NS,
        scan_bytes: delta(names::QUERY_SCAN_BYTES_TOTAL),
        pushdown_hits: delta(names::QUERY_PUSHDOWN_HITS_TOTAL),
        mean_frontier_len: if batches == 0 {
            0.0
        } else {
            (sum_a - sum_b) as f64 / batches as f64
        },
    }
}

/// Runs the full sweep. `queries` is the mix-phase query count per mode.
pub fn run(queries: usize) -> KhopReport {
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    let mut all_counts: Vec<Vec<u64>> = Vec::new();

    // The two BG3 modes share one sealed engine; registry deltas separate
    // their accounting.
    let db = build_bg3();
    preload_store(&db);
    db.checkpoint().unwrap();
    let registry = db.store().stats().registry().clone();
    let segments = registry.counter(names::QUERY_CSR_SEGMENTS_SCANNED_TOTAL);
    let seg_units = || segments.get();
    let batched = Executor::new(khop_config().with_metrics(registry.clone()));
    let scalar = Executor::new(khop_config().scalar().with_metrics(registry.clone()));

    for (mode, exec) in [("BG3 batched", &batched), ("BG3 per-vertex", &scalar)] {
        let before = registry.snapshot();
        let (samples, counts, units) = measure(&db, exec, queries, None, &seg_units, None);
        cells.push(bg3_cell(
            mode,
            queries,
            units,
            &before,
            &registry.snapshot(),
        ));
        all_counts.push(counts);
        for threads in THREADS {
            let mut cluster = VirtualCluster::new(threads);
            for &(cost, resource) in &samples {
                cluster.submit(cost, resource);
            }
            rows.push(KhopRow {
                mode: mode.to_string(),
                threads,
                qps: cluster.throughput(),
            });
        }
    }

    // Baselines: per-vertex expansion is all their stores offer; scan cost
    // is their actual random storage reads. The Neptune-like comparator
    // serializes reads on its global index lock (the Fig. 8 model).
    for kind in [EngineKind::ByteGraph, EngineKind::Neptune] {
        let engine = Engine::build(kind);
        preload_store(&engine);
        let exec = Executor::new(khop_config());
        let reads = || engine.io_reads();
        let resource = match kind {
            EngineKind::Neptune => Some(2),
            _ => None,
        };
        let (samples, counts, units) = measure(&engine, &exec, queries, None, &reads, resource);
        cells.push(KhopCell {
            mode: kind.name().to_string(),
            queries,
            scan_units: units,
            scan_cost_ns: units * RANDOM_READ_NS,
            scan_bytes: 0,
            pushdown_hits: 0,
            mean_frontier_len: 0.0,
        });
        all_counts.push(counts);
        for threads in THREADS {
            let mut cluster = VirtualCluster::new(threads);
            for &(cost, resource) in &samples {
                cluster.submit(cost, resource);
            }
            rows.push(KhopRow {
                mode: kind.name().to_string(),
                threads,
                qps: cluster.throughput(),
            });
        }
        metrics.merge(&engine.runtime().metrics_snapshot());
    }

    // Pure 3-hop sweep: the frontier-sharing win the tentpole claims.
    let sweep = (queries / 4).max(20);
    let (_, sweep_batched_counts, batched_units) =
        measure(&db, &batched, sweep, Some(3), &seg_units, None);
    let (_, sweep_scalar_counts, scalar_units) =
        measure(&db, &scalar, sweep, Some(3), &seg_units, None);
    let speedup = scalar_units as f64 / batched_units.max(1) as f64;

    let modes_agree =
        all_counts.windows(2).all(|w| w[0] == w[1]) && sweep_batched_counts == sweep_scalar_counts;
    metrics.merge(&db.metrics_snapshot());

    KhopReport {
        rows,
        cells,
        speedup_3hop_scan_cost: speedup,
        modes_agree,
        metrics,
    }
}

/// Real-OS-thread driver mode: `threads` actual threads share one sealed
/// engine and split `queries` between them, all on the batched executor;
/// throughput is wall-clock.
pub fn run_threads(threads: usize, queries: usize) -> ThreadedKhopReport {
    let threads = threads.max(1);
    let db = build_bg3();
    preload_store(&db);
    db.checkpoint().unwrap();
    let registry = db.store().stats().registry().clone();
    let exec = Executor::new(khop_config().with_metrics(registry));
    let per_thread = queries.div_ceil(threads);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = &db;
            let exec = &exec;
            scope.spawn(move || {
                let zipf = Zipf::new(POPULATION, 1.0);
                let mut rng = StdRng::seed_from_u64(7 + t as u64);
                for _ in 0..per_thread {
                    let src = zipf.sample(&mut rng);
                    let k = sample_hops(&mut rng);
                    let text = format!("g.V({src}).repeat(out(follow), {k}).dedup().count()");
                    exec.run_text(db, &text).unwrap();
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    ThreadedKhopReport {
        threads,
        queries: per_thread * threads,
        qps: (per_thread * threads) as f64 / elapsed,
        metrics: db.metrics_snapshot(),
    }
}

/// Renders the sweep, one line per mode.
pub fn render(report: &KhopReport) -> String {
    let mut out =
        String::from("khop: k-hop frontier sweep, Douyin hop mix (virtual-time throughput)\n");
    for cell in &report.cells {
        let series: Vec<String> = report
            .rows
            .iter()
            .filter(|r| r.mode == cell.mode)
            .map(|r| format!("{}@{}t", super::kqps(r.qps), r.threads))
            .collect();
        out.push_str(&format!(
            "{:<14} scan {:>6} units / {}  pushdowns {:>5}  mean-frontier {:>6.1}  {}\n",
            cell.mode,
            cell.scan_units,
            super::mib(cell.scan_bytes),
            cell.pushdown_hits,
            cell.mean_frontier_len,
            series.join("  ")
        ));
    }
    out.push_str(&format!(
        "3-hop modelled scan cost, per-vertex over batched: {:.2}x\n",
        report.speedup_3hop_scan_cost
    ));
    out
}

/// Renders one real-thread run.
pub fn render_threads(report: &ThreadedKhopReport) -> String {
    format!(
        "khop --threads {}: {} queries wall-clock, {}\n",
        report.threads,
        report.queries,
        super::kqps(report.qps)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_halves_3hop_scan_cost_and_pushdown_skips_materialization() {
        let report = run(160);
        assert!(report.modes_agree, "all modes return identical counts");
        assert!(
            report.speedup_3hop_scan_cost >= 2.0,
            "batched expansion shares sealed segments across the frontier: {:.2}x",
            report.speedup_3hop_scan_cost
        );
        let cell = |mode: &str| report.cells.iter().find(|c| c.mode == mode).unwrap();
        let batched = cell("BG3 batched");
        // Every query terminates in dedup().count(): the batched executor
        // aggregates inside the final expansion instead of materializing
        // traversers — one pushdown hit per query.
        assert_eq!(batched.pushdown_hits, batched.queries as u64);
        assert_eq!(cell("BG3 per-vertex").pushdown_hits, 0);
        assert!(batched.scan_bytes > 0, "scan-bytes accounting engaged");
        assert!(batched.mean_frontier_len >= 1.0);
        assert!(
            batched.scan_units < cell("BG3 per-vertex").scan_units,
            "batching never scans more segments than per-vertex"
        );
    }

    #[test]
    fn real_thread_mode_is_coherent() {
        let report = run_threads(2, 60);
        assert_eq!(report.queries, 60);
        assert!(report.qps > 0.0);
        assert!(
            report
                .metrics
                .counter(bg3_obs::names::QUERY_PUSHDOWN_HITS_TOTAL)
                .unwrap()
                >= 60,
            "every threaded query took the count pushdown"
        );
    }
}
