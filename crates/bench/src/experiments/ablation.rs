//! Ablations beyond the paper's tables — the design-choice studies
//! DESIGN.md commits to:
//!
//! 1. **GC policy sweep** — the Table 2 follow workload under all four
//!    policies, including the traditional FIFO queue (the paper only
//!    mentions it in prose) and the hybrid TTL+gradient policy the paper
//!    lists as future work (§4.4).
//! 2. **Consolidation threshold sweep** — the read-optimized Bw-tree's
//!    `ConsolidateNum` trades read amplification (chain length before
//!    consolidation) against write volume (base-page rewrites); Algorithm 1
//!    fixes it at 10 for the §4.3 experiments.

use bg3_bwtree::{BwTree, BwTreeConfig};
use bg3_core::{Bg3Config, Bg3Db, GcPolicyKind};
use bg3_gc::{HybridTtlGradientPolicy, SpaceReclaimer};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_storage::{StoreBuilder, StoreConfig};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One GC-policy ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct GcAblationRow {
    /// Policy label.
    pub policy: String,
    /// Total bytes relocated.
    pub moved_bytes: u64,
    /// Relocated bytes that later died (wasted background I/O).
    pub wasted_bytes: u64,
}

/// One consolidation-threshold ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct ConsolidationRow {
    /// `ConsolidateNum`.
    pub threshold: usize,
    /// Cold-read amplification (storage reads per lookup).
    pub read_amplification: f64,
    /// Total bytes appended per logical write.
    pub write_bytes_per_op: f64,
}

/// The ablation report.
#[derive(Debug, Clone, Serialize)]
pub struct AblationReport {
    /// GC policies on the moving-hotspot workload.
    pub gc_rows: Vec<GcAblationRow>,
    /// Consolidation threshold sweep.
    pub consolidation_rows: Vec<ConsolidationRow>,
    /// Merged registry snapshot across every ablation cell.
    pub metrics: bg3_storage::MetricsSnapshot,
}

/// The Table 2 follow workload under one policy (shared shape).
fn run_gc_policy(
    policy: Option<GcPolicyKind>,
    ops: usize,
) -> (GcAblationRow, bg3_storage::MetricsSnapshot) {
    let mut config = Bg3Config {
        store: StoreConfig::counting().with_extent_capacity(8 * 1024),
        ..Bg3Config::default()
    };
    config.forest.tree_config = config.forest.tree_config.with_max_page_entries(32);
    if let Some(p) = policy {
        config.gc_policy = p;
    }
    let db = Bg3Db::new(config);
    let users = Zipf::new(64, 1.1);
    let recency = Zipf::new(2_048, 1.3);
    let mut rng = StdRng::seed_from_u64(17);
    let mut moved = 0u64;
    for i in 0..ops {
        let src = VertexId(users.sample(&mut rng));
        let released = (i / 2) as u64;
        let video = released.saturating_sub(recency.sample(&mut rng) - 1);
        db.store().clock().advance_micros(25);
        db.insert_edge(
            &Edge::new(src, EdgeType::LIKE, VertexId(video))
                .with_props((i as u64).to_le_bytes().to_vec()),
        )
        .unwrap();
        if i % 500 == 499 {
            moved += match policy {
                Some(_) => db.run_gc_cycle(24).unwrap().moved_bytes,
                None => {
                    // Hybrid policy: driven directly through the reclaimer.
                    let forest = std::sync::Arc::clone(db.forest());
                    SpaceReclaimer::new(
                        db.store().clone(),
                        HybridTtlGradientPolicy::default(),
                        move |tag: u64, old, new| {
                            forest.repair_relocated(tag, old, new);
                        },
                    )
                    .run_cycle(24)
                    .unwrap()
                    .moved_bytes
                }
            };
        }
    }
    let label = match policy {
        Some(GcPolicyKind::Fifo) => "FIFO (traditional Bw-tree)",
        Some(GcPolicyKind::DirtyRatio) => "Dirty ratio (ArkDB)",
        Some(GcPolicyKind::WorkloadAware) => "Workload-aware (BG3)",
        None => "Hybrid TTL+gradient (future work)",
    };
    let row = GcAblationRow {
        policy: label.into(),
        moved_bytes: moved,
        wasted_bytes: db.store().stats().snapshot().wasted_relocation_bytes,
    };
    (row, db.store().metrics_snapshot())
}

fn run_consolidation(
    threshold: usize,
    ops: usize,
) -> (ConsolidationRow, bg3_storage::MetricsSnapshot) {
    let store =
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build();
    let tree = BwTree::new(
        1,
        store.clone(),
        BwTreeConfig::read_optimized_baseline().with_consolidate_threshold(threshold),
    );
    let zipf = Zipf::new(512, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..ops {
        let key = format!("user{:06}", zipf.sample(&mut rng)).into_bytes();
        tree.put(&key, &i.to_le_bytes()).unwrap();
        let read_key = format!("user{:06}", zipf.sample(&mut rng)).into_bytes();
        let _ = tree.get(&read_key).unwrap();
    }
    let stats = tree.stats().snapshot();
    let row = ConsolidationRow {
        threshold,
        read_amplification: stats.read_amplification(),
        write_bytes_per_op: store.stats().snapshot().bytes_appended as f64 / ops as f64,
    };
    (row, store.metrics_snapshot())
}

/// Runs both ablations.
pub fn run(ops: usize) -> AblationReport {
    let mut metrics = bg3_storage::MetricsSnapshot::default();
    let mut gc_rows = Vec::new();
    for policy in [
        Some(GcPolicyKind::Fifo),
        Some(GcPolicyKind::DirtyRatio),
        Some(GcPolicyKind::WorkloadAware),
        None,
    ] {
        let (row, snap) = run_gc_policy(policy, ops);
        gc_rows.push(row);
        metrics.merge(&snap);
    }
    let mut consolidation_rows = Vec::new();
    for t in [2, 5, 10, 20, 40] {
        let (row, snap) = run_consolidation(t, ops / 2);
        consolidation_rows.push(row);
        metrics.merge(&snap);
    }
    AblationReport {
        gc_rows,
        consolidation_rows,
        metrics,
    }
}

/// Renders both ablation tables.
pub fn render(report: &AblationReport) -> String {
    let mut out = String::from("Ablation A: GC policy sweep (moving-hotspot workload)\n");
    for row in &report.gc_rows {
        out.push_str(&format!(
            "{:<36} moved {:>11}  wasted {:>11}\n",
            row.policy,
            super::mib(row.moved_bytes),
            super::mib(row.wasted_bytes),
        ));
    }
    out.push_str("\nAblation B: read-optimized Bw-tree consolidation threshold\n");
    for row in &report.consolidation_rows {
        out.push_str(&format!(
            "ConsolidateNum {:>3}  cold-read amplification {:.2}x  write bytes/op {:.0}\n",
            row.threshold, row.read_amplification, row.write_bytes_per_op,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fifo_is_worst_and_thresholds_trade_reads_for_writes() {
        let report = super::run(6_000);
        let by_name = |needle: &str| {
            report
                .gc_rows
                .iter()
                .find(|r| r.policy.contains(needle))
                .unwrap()
        };
        // FIFO ignores content entirely: it must move at least as much as
        // the content-aware policies.
        assert!(
            by_name("FIFO").moved_bytes >= by_name("BG3").moved_bytes,
            "FIFO {} vs BG3 {}",
            by_name("FIFO").moved_bytes,
            by_name("BG3").moved_bytes
        );
        // Consolidation threshold: higher => longer chains => more read
        // amplification but fewer base rewrites (less write volume).
        let rows = &report.consolidation_rows;
        assert!(rows[0].read_amplification <= rows[rows.len() - 1].read_amplification + 1e-9);
        assert!(
            rows[0].write_bytes_per_op > rows[rows.len() - 1].write_bytes_per_op,
            "tiny thresholds rewrite bases constantly: {} vs {}",
            rows[0].write_bytes_per_op,
            rows[rows.len() - 1].write_bytes_per_op
        );
    }
}
