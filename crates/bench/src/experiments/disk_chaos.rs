//! Disk chaos — the disk-fault envelope exercised end to end on the real
//! file backend: seeded errno storms, crash-kill/recover rounds, and the
//! ENOSPC degradation ladder, all in a self-cleaning tempdir.
//!
//! Each round decorates a fresh [`FileBackend`] with a seeded
//! [`FaultBackend`] and drives the WAL group-commit path through one of
//! three storm shapes (rotating by round):
//!
//! * **enospc** — random `ENOSPC` write failures plus a sticky disk-full
//!   regime armed mid-storm. Proves reads keep flowing through the full
//!   window and that expiring TTL-dead extents (GC reclaim) frees real
//!   space, clears the sticky regime, and restores write flow.
//! * **fsyncgate** — random fsync/seal `EIO` plus torn media writes.
//!   Proves the fail-closed rule: the first failed durability barrier
//!   poisons the writer, no rider of a failed group commit is ever acked,
//!   and nothing acked-durable is lost across kill+recover.
//! * **mixed** — everything at once at lower probabilities.
//!
//! After every storm the "node" is killed by dropping all in-memory state
//! and a brand-new store is opened over the surviving extent files with
//! **no** fault decoration — recovery is the fsyncgate exit. The audit
//! asserts, per round: every record with `lsn <= durable_lsn` at kill time
//! is replayed byte-identical (zero acked-durable loss), and the shadow
//! model saw zero `Ok` appends after the writer was poisoned.
//!
//! Read-EIO faults are deliberately absent from the storm plans: the reads
//! -keep-flowing audit inside the sticky full-disk window must observe the
//! *degradation* contract (writes shed, reads succeed), not random read
//! faults. `ReadEio` coverage lives in the `FaultBackend` unit tests and
//! the backend-conformance proptest.
//!
//! The whole run executes twice from the same seeds into separate
//! directories; the two per-round audit trails must serialize
//! bit-identically — the errno storm is a pure function of the seed.

use bg3_storage::{
    AppendOnlyStore, ErrorKind, ExtentBackend, FaultBackend, FaultPlan, FileBackend, IoErrorClass,
    MetricsSnapshot, StoreBuilder, StreamId,
};
use bg3_wal::{WalPayload, WalRecord, WalWriter};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// WAL appends per storm (before the reclaim phase).
const STORM_APPENDS: u64 = 48;
/// WAL appends after the reclaim phase (prove write flow restored).
const POST_RECLAIM_APPENDS: u64 = 8;
/// TTL-carrying DELTA appends seeded before the storm — the reclaimable
/// space the full-disk round frees.
const TTL_RECORDS: u64 = 6;

/// One round's audit trail. Every field is derived from virtual clocks,
/// seeded draws, and record counts — no wall-clock, paths, or pids — so
/// two runs from the same seed serialize bit-identically.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct DiskChaosRound {
    /// Seed of this round's fault plan.
    pub seed: u64,
    /// Storm shape: `enospc`, `fsyncgate`, or `mixed`.
    pub storm: String,
    /// Appends that returned `Ok` (the writer acked them).
    pub acked: u64,
    /// Appends rejected with `IoErrorClass::SyncFailed` (the failed
    /// barrier itself).
    pub sync_failures: u64,
    /// Appends rejected with `IoErrorClass::NoSpace`.
    pub enospc_errors: u64,
    /// Appends rejected by an injected torn media write.
    pub torn_writes: u64,
    /// Appends rejected because the writer/stream was already poisoned.
    pub rejected_poisoned: u64,
    /// Appends that failed for any other reason.
    pub other_errors: u64,
    /// The writer or the WAL stream ended the storm poisoned.
    pub poisoned: bool,
    /// `Ok` appends observed *after* poisoning — the shadow-model
    /// violation counter; must be 0.
    pub acks_after_poison: u64,
    /// The sticky disk-full regime was active when audited.
    pub disk_full_window: bool,
    /// `DiskHealth` rendered inside the window (empty when no window).
    pub health_in_window: String,
    /// Records the full-window read audit attempted.
    pub window_reads: u64,
    /// Records the full-window read audit served intact.
    pub window_reads_ok: u64,
    /// TTL-dead DELTA extents expired by the reclaim phase.
    pub extents_reclaimed: u64,
    /// `DiskHealth` rendered after reclaim.
    pub health_after_reclaim: String,
    /// Round saw the sticky full window *and* ended it via reclaim with
    /// writes shedding no longer required.
    pub recovered_from_full: bool,
    /// Appends acked after the reclaim phase.
    pub acked_after_reclaim: u64,
    /// `durable_lsn` at kill time: the replay floor.
    pub durable: u64,
    /// Records the post-kill recovery replayed.
    pub recovered: u64,
    /// Acked records at or below the durable floor that recovery lost or
    /// altered; must be 0.
    pub durable_lost: u64,
    /// The recovered (undecorated) writer accepted and flushed an append.
    pub post_recover_append_ok: bool,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct DiskChaosReport {
    /// Backend under test (always `fault(file)` during storms, `file`
    /// during recovery).
    pub backend: String,
    /// Per-round audit trails (first run).
    pub rounds: Vec<DiskChaosRound>,
    /// Sum of `acked` across rounds.
    pub acked_total: u64,
    /// Sum of `durable_lost` (must be 0).
    pub durable_lost_total: u64,
    /// Sum of `acks_after_poison` (must be 0).
    pub acks_after_poison_total: u64,
    /// Rounds that ended poisoned (fsyncgate coverage; must be ≥ 1).
    pub poisoned_rounds: u64,
    /// Rounds that hit the sticky disk-full window (must be ≥ 1).
    pub full_window_rounds: u64,
    /// Read audit totals inside full windows (ok must equal attempted).
    pub window_reads: u64,
    /// Reads served intact inside full windows.
    pub window_reads_ok: u64,
    /// Full-window rounds that reclaimed their way back to write flow.
    pub recovered_from_full_rounds: u64,
    /// The two seeded runs produced bit-identical round trails.
    pub double_run_identical: bool,
    /// Merged registry snapshot across every storm and recovery store of
    /// the first run (`sync_poisoned_total`, `disk_health`, backend
    /// counters included).
    pub metrics: MetricsSnapshot,
}

/// Minimal self-cleaning tempdir (no external crates available).
struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let unique = format!(
            "bg3-disk-chaos-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )
        .replace(['(', ')'], "");
        let path = std::env::temp_dir().join(unique);
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn storm_name(round: usize) -> &'static str {
    match round % 3 {
        0 => "enospc",
        1 => "fsyncgate",
        _ => "mixed",
    }
}

/// The seeded fault plan for one round. `DiskFull` windows are indexed in
/// backend writes: the setup phase issues [`TTL_RECORDS`] of them, so the
/// thresholds below always land the sticky window mid-storm.
fn storm_plan(round: usize, seed: u64) -> FaultPlan {
    match round % 3 {
        0 => FaultPlan::seeded(seed)
            .no_space_writes(0.05)
            .disk_full_after(14),
        1 => FaultPlan::seeded(seed)
            .fail_syncs(0.2)
            .torn_backend_writes(0.1),
        _ => FaultPlan::seeded(seed)
            .fail_syncs(0.08)
            .no_space_writes(0.05)
            .torn_backend_writes(0.05)
            .disk_full_after(24),
    }
}

fn chaos_store(root: &Path, backend: Arc<dyn ExtentBackend>) -> AppendOnlyStore {
    let _ = root; // layout lives inside the backend; kept for symmetry
    StoreBuilder::counting()
        .backend(backend)
        .extent_capacity(1024)
        .build()
}

/// The deterministic payload of storm append `i` — recovery compares
/// byte-for-byte against this.
fn storm_payload(round: usize, i: u64) -> WalPayload {
    WalPayload::Upsert {
        key: format!("chaos-r{round}-{i}").into_bytes(),
        value: (i.wrapping_mul(31).wrapping_add(round as u64))
            .to_le_bytes()
            .to_vec(),
    }
}

/// Runs one storm round rooted at `root` and returns its audit trail.
fn run_round(root: &Path, round: usize, seed: u64) -> (DiskChaosRound, MetricsSnapshot) {
    std::fs::create_dir_all(root).unwrap();
    let plan = storm_plan(round, seed);
    let fault = Arc::new(FaultBackend::new(
        Arc::new(FileBackend::open(root.to_path_buf()).unwrap()),
        plan,
    ));
    let store = chaos_store(root, fault.clone() as Arc<dyn ExtentBackend>);
    let writer = WalWriter::new(store.clone()).with_group_sync_every(4);

    // ---- Setup: TTL-carrying DELTA extents the reclaim phase can free. ----
    for i in 0..TTL_RECORDS {
        // Setup appends draw from the same seeded schedule; losing a few
        // to random ENOSPC is part of the storm.
        let _ = store.append(StreamId::DELTA, &[0xEE; 16], i + 1, Some(1_000));
    }
    store.clock().advance_nanos(10_000); // every TTL deadline passes

    let mut acked_records: BTreeMap<u64, WalPayload> = BTreeMap::new();
    let mut round_stats = DiskChaosRound {
        seed,
        storm: storm_name(round).to_string(),
        acked: 0,
        sync_failures: 0,
        enospc_errors: 0,
        torn_writes: 0,
        rejected_poisoned: 0,
        other_errors: 0,
        poisoned: false,
        acks_after_poison: 0,
        disk_full_window: false,
        health_in_window: String::new(),
        window_reads: 0,
        window_reads_ok: 0,
        extents_reclaimed: 0,
        health_after_reclaim: String::new(),
        recovered_from_full: false,
        acked_after_reclaim: 0,
        durable: 0,
        recovered: 0,
        durable_lost: 0,
        post_recover_append_ok: false,
    };

    let mut storm_append = |i: u64, stats: &mut DiskChaosRound, after_reclaim: bool| {
        // Shadow model: poisoning observed *before* the append must mean
        // the append cannot ack. Any Ok after this flag is a violation.
        let was_poisoned = writer.is_poisoned() || store.is_poisoned(StreamId::WAL);
        match writer.append(round as u64, i, storm_payload(round, i)) {
            Ok(rec) => {
                stats.acked += 1;
                if after_reclaim {
                    stats.acked_after_reclaim += 1;
                }
                if was_poisoned {
                    stats.acks_after_poison += 1;
                }
                acked_records.insert(rec.lsn.0, rec.payload);
            }
            Err(err) => match &err.kind {
                ErrorKind::SyncPoisoned { .. } => stats.rejected_poisoned += 1,
                ErrorKind::Io {
                    class: IoErrorClass::SyncFailed,
                    ..
                } => stats.sync_failures += 1,
                ErrorKind::Io {
                    class: IoErrorClass::NoSpace,
                    ..
                } => stats.enospc_errors += 1,
                ErrorKind::Io {
                    class: IoErrorClass::WriteZero,
                    ..
                } => stats.torn_writes += 1,
                _ => stats.other_errors += 1,
            },
        }
    };

    // ---- Storm: hammer the group-commit path through the fault plan. ----
    for i in 0..STORM_APPENDS {
        storm_append(i, &mut round_stats, false);
    }

    // ---- Full-window audit: reads must flow while writes shed. ----
    if fault.is_disk_full() {
        round_stats.disk_full_window = true;
        round_stats.health_in_window = store.disk_health().to_string();
        match store.scan_stream(StreamId::WAL) {
            Ok(records) => {
                round_stats.window_reads = records.len() as u64;
                round_stats.window_reads_ok = records.len() as u64;
            }
            Err(_) => {
                // Count the failed audit as one attempted, zero served.
                round_stats.window_reads = 1;
            }
        }
    }

    // ---- Reclaim: expire TTL-dead DELTA extents; deletes free space. ----
    if let Ok(infos) = store.extent_infos(StreamId::DELTA) {
        for info in infos {
            if store.expire_extent(StreamId::DELTA, info.id).is_ok() {
                round_stats.extents_reclaimed += 1;
            }
        }
    }
    round_stats.health_after_reclaim = store.disk_health().to_string();
    round_stats.recovered_from_full = round_stats.disk_full_window
        && !fault.is_disk_full()
        && !store.disk_health().sheds_writes();

    for i in 0..POST_RECLAIM_APPENDS {
        storm_append(STORM_APPENDS + i, &mut round_stats, true);
    }

    // ---- Kill: capture the durability floor, then drop everything. ----
    round_stats.poisoned = writer.is_poisoned() || store.is_poisoned(StreamId::WAL);
    round_stats.durable = writer.durable_lsn().0;
    let storm_metrics = store.metrics_snapshot();
    drop(writer);
    drop(store);
    drop(fault); // only the extent files survive

    // ---- Recover: plain file backend, no fault decoration. ----
    let recovered_store = StoreBuilder::counting()
        .backend_kind(bg3_storage::BackendKind::File {
            root: root.to_path_buf(),
        })
        .extent_capacity(1024)
        .open()
        .expect("recovery open over surviving extent files");
    let (recovered_writer, replayed) =
        WalWriter::recover(recovered_store.clone()).expect("WAL recovery");
    round_stats.recovered = replayed.len() as u64;
    let by_lsn: BTreeMap<u64, &WalRecord> = replayed.iter().map(|r| (r.lsn.0, r)).collect();
    for (lsn, payload) in &acked_records {
        if *lsn > round_stats.durable {
            // Above the floor: the group-commit ack hole — loss is legal.
            continue;
        }
        match by_lsn.get(lsn) {
            Some(rec) if rec.payload == *payload => {}
            _ => round_stats.durable_lost += 1,
        }
    }
    round_stats.post_recover_append_ok = recovered_writer
        .append(round as u64, u64::MAX, storm_payload(round, u64::MAX))
        .is_ok()
        && recovered_writer.flush().is_ok();

    let mut metrics = storm_metrics;
    metrics.merge(&recovered_store.metrics_snapshot());
    (round_stats, metrics)
}

/// One full seeded pass: `rounds` storm/kill/recover rounds under `root`.
fn run_once(root: &Path, rounds: usize) -> (Vec<DiskChaosRound>, MetricsSnapshot) {
    let mut trail = Vec::with_capacity(rounds);
    let mut metrics = MetricsSnapshot::default();
    for round in 0..rounds {
        let seed = 0xD15C_0000 + round as u64;
        let round_root = root.join(format!("round-{round:02}"));
        let (stats, round_metrics) = run_round(&round_root, round, seed);
        trail.push(stats);
        metrics.merge(&round_metrics);
    }
    (trail, metrics)
}

/// Runs the disk-chaos experiment: `rounds` seeded errno-storm rounds,
/// executed twice for the determinism audit.
pub fn run(rounds: usize) -> DiskChaosReport {
    let tmp = TempDir::new();
    let (trail, metrics) = run_once(&tmp.0.join("run0"), rounds);
    let (second_trail, _) = run_once(&tmp.0.join("run1"), rounds);
    let double_run_identical =
        serde_json::to_string(&trail).unwrap() == serde_json::to_string(&second_trail).unwrap();

    let report = DiskChaosReport {
        backend: "fault(file)".to_string(),
        acked_total: trail.iter().map(|r| r.acked).sum(),
        durable_lost_total: trail.iter().map(|r| r.durable_lost).sum(),
        acks_after_poison_total: trail.iter().map(|r| r.acks_after_poison).sum(),
        poisoned_rounds: trail.iter().filter(|r| r.poisoned).count() as u64,
        full_window_rounds: trail.iter().filter(|r| r.disk_full_window).count() as u64,
        window_reads: trail.iter().map(|r| r.window_reads).sum(),
        window_reads_ok: trail.iter().map(|r| r.window_reads_ok).sum(),
        recovered_from_full_rounds: trail.iter().filter(|r| r.recovered_from_full).count() as u64,
        double_run_identical,
        rounds: trail,
        metrics,
    };
    report
}

/// True when every envelope guarantee held.
pub fn verdict(report: &DiskChaosReport) -> bool {
    report.durable_lost_total == 0
        && report.acks_after_poison_total == 0
        && report.poisoned_rounds >= 1
        && report.full_window_rounds >= 1
        && report.window_reads >= 1
        && report.window_reads_ok == report.window_reads
        && report.recovered_from_full_rounds >= 1
        && report.rounds.iter().all(|r| r.post_recover_append_ok)
        && report.double_run_identical
}

/// Renders the pass/fail summary.
pub fn render(report: &DiskChaosReport) -> String {
    let mut out = String::from("Disk chaos: errno storms over the file backend\n");
    out.push_str(&format!(
        "storms       : {} rounds, {} acked, {} poisoned rounds, {} full-disk windows\n",
        report.rounds.len(),
        report.acked_total,
        report.poisoned_rounds,
        report.full_window_rounds,
    ));
    out.push_str(&format!(
        "fail-closed  : {} acks after poison, {} acked-durable lost across kill+recover\n",
        report.acks_after_poison_total, report.durable_lost_total,
    ));
    out.push_str(&format!(
        "degradation  : {}/{} reads served inside full-disk windows, {} rounds reclaimed back to write flow\n",
        report.window_reads_ok, report.window_reads, report.recovered_from_full_rounds,
    ));
    out.push_str(&format!(
        "determinism  : double run identical {}\n",
        report.double_run_identical,
    ));
    out.push_str(&format!(
        "verdict      : {}\n",
        if verdict(report) { "PASS" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::DiskHealth;

    #[test]
    fn errno_storms_never_lose_acked_durable_writes() {
        let report = run(6);
        assert_eq!(report.durable_lost_total, 0, "acked-durable records lost");
        assert_eq!(
            report.acks_after_poison_total, 0,
            "a poisoned writer acked an append"
        );
        assert!(report.poisoned_rounds >= 1, "no fsyncgate round poisoned");
        assert!(report.full_window_rounds >= 1, "no sticky full-disk window");
        assert!(
            report.window_reads >= 1 && report.window_reads_ok == report.window_reads,
            "reads failed inside the full-disk window: {}/{}",
            report.window_reads_ok,
            report.window_reads,
        );
        assert!(
            report.recovered_from_full_rounds >= 1,
            "reclaim never restored write flow after a full-disk window"
        );
        assert!(report.rounds.iter().all(|r| r.post_recover_append_ok));
        assert!(report.double_run_identical, "seeded runs diverged");
        assert!(verdict(&report));
    }

    #[test]
    fn enospc_rounds_shed_writes_while_health_reports_full() {
        let report = run(3);
        let windows: Vec<_> = report
            .rounds
            .iter()
            .filter(|r| r.disk_full_window)
            .collect();
        assert!(!windows.is_empty());
        for round in windows {
            assert!(
                round.health_in_window == DiskHealth::Full.to_string()
                    || round.health_in_window == DiskHealth::Poisoned.to_string(),
                "window health was {:?}",
                round.health_in_window,
            );
            assert!(round.enospc_errors >= 1, "no ENOSPC surfaced in the window");
        }
    }
}
