//! `cache_scaling` — concurrent read-path sweep: threads × page-cache size.
//!
//! The workload is the Fig. 8 Douyin-Follow shape (Zipf-skewed point reads
//! with a 10% write mix) run against a durable BG3 engine with the Bw-tree's
//! own page-image serving disabled, so every point read takes the cold path
//! to the shared store — which is where the sharded CLOCK page cache sits.
//!
//! Per cache size the workload is executed once on the real CPU, charging
//! each op its measured CPU time plus one storage round-trip per random
//! read that actually reached storage (cache hits never leave the node and
//! are therefore free). The samples are then replayed through the
//! [`VirtualCluster`] at each thread count — the repo's standard
//! methodology for throughput on a single-core CI host (see DESIGN.md).
//! Reads take shared latches and run in parallel; writes serialize on the
//! owning Bw-tree's latch (dedicated tree when split out, INIT otherwise),
//! exactly the Fig. 8 contention model over the lock-striped forest.
//!
//! [`run_threads`] is the real-OS-thread driver mode behind
//! `reproduce cache_scaling --threads N`: same workload, N actual threads
//! over one shared engine, wall-clock throughput. On a multi-core host it
//! measures true scaling; on the single-core CI host it only demonstrates
//! that the striped read path is thread-safe under contention.

use crate::vdriver::VirtualCluster;
use bg3_core::prelude::*;
use bg3_graph::edge_group;
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// Simulated latency of one random storage read — same constant as Fig. 8.
const RANDOM_READ_NS: u64 = 150_000;

/// Cache budgets swept: disabled, pressure (forces CLOCK eviction), warm.
pub const CACHE_SIZES: [usize; 3] = [0, 64 * 1024, 8 * 1024 * 1024];

/// Thread counts swept in the virtual replay.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

const POPULATION: u64 = 2_048;
const PRELOAD_EDGES: usize = 8_000;

/// One (cache size × thread count) throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CacheScalingRow {
    /// Page-cache budget in bytes (0 = disabled).
    pub cache_bytes: usize,
    /// Virtual worker count.
    pub threads: usize,
    /// Throughput in ops/second (virtual time).
    pub qps: f64,
}

/// Per-cache-size I/O outcome (thread-count independent — the measured
/// sample set is shared across the replay thread counts).
#[derive(Debug, Clone, Serialize)]
pub struct CacheCell {
    /// Page-cache budget in bytes (0 = disabled).
    pub cache_bytes: usize,
    /// Cache hit rate over the measured phase.
    pub hit_rate: f64,
    /// Cache-adjusted I/O counters for the measured phase.
    pub io: super::IoSummary,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct CacheScalingReport {
    /// All (cache size × threads) measurements.
    pub rows: Vec<CacheScalingRow>,
    /// Per-cache-size hit rate and read amplification.
    pub cells: Vec<CacheCell>,
    /// Merged registry snapshot across every cache-size cell.
    pub metrics: MetricsSnapshot,
}

/// Result of one real-OS-thread run (`--threads N`).
#[derive(Debug, Clone, Serialize)]
pub struct ThreadedRunReport {
    /// OS threads driving the shared engine.
    pub threads: usize,
    /// Total ops executed across all threads.
    pub ops: usize,
    /// Wall-clock throughput in ops/second.
    pub qps: f64,
    /// Cache hit rate over the run.
    pub hit_rate: f64,
    /// Cache-adjusted I/O counters for the run.
    pub io: super::IoSummary,
    /// Registry snapshot of the shared engine after the run.
    pub metrics: MetricsSnapshot,
}

/// Durable engine with Bw-tree page-image serving off: point reads take the
/// cold path through the shared store and its page cache.
fn build_engine(cache_bytes: usize) -> Bg3Db {
    let mut config = Bg3Config::default()
        .with_durability()
        .with_cache_capacity(cache_bytes);
    config.forest = config.forest.clone().with_split_out_threshold(64);
    config.forest.tree_config = config.forest.tree_config.clone().with_read_cache(false);
    Bg3Db::open(config)
}

fn preload(db: &Bg3Db) {
    let zipf = Zipf::new(POPULATION, 1.0);
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..PRELOAD_EDGES {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
    // Flush pages so base addresses exist and cold reads have storage to hit.
    db.checkpoint().unwrap();
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The latch a write serializes on — the Fig. 8 BG3 contention model:
/// dedicated trees are distinct latches, the INIT tree is latch 0, reads
/// are free.
fn write_resource(db: &Bg3Db, src: VertexId) -> Option<u64> {
    let group = edge_group(src, EdgeType::FOLLOW);
    if db.forest().dedicated_tree(&group).is_some() {
        Some(16 + fxhash(&group))
    } else {
        Some(0)
    }
}

/// Executes one op of the 90/10 read/write mix. Returns the op's latch.
fn run_op(db: &Bg3Db, i: usize, src: VertexId, dst: VertexId) -> Option<u64> {
    if i % 10 == 9 {
        let resource = write_resource(db, src);
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
        resource
    } else {
        db.get_edge(src, EdgeType::FOLLOW, dst).unwrap();
        None
    }
}

/// Measures `(cost_ns, latch)` samples for one cache configuration, plus
/// the cache outcome of the measured phase.
fn measure(db: &Bg3Db, cache_bytes: usize, ops: usize) -> (Vec<(u64, Option<u64>)>, CacheCell) {
    let zipf = Zipf::new(POPULATION, 1.0);
    let mut rng = StdRng::seed_from_u64(42);
    let io_before = db.io_snapshot();
    let cache_before = db.cache_snapshot();
    let mut reads_before = io_before.random_reads;
    let mut samples = Vec::with_capacity(ops);
    for i in 0..ops {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        let started = Instant::now();
        let resource = run_op(db, i, src, dst);
        let cpu = started.elapsed().as_nanos() as u64;
        let reads_after = db.io_snapshot().random_reads;
        let io = (reads_after - reads_before) * RANDOM_READ_NS;
        reads_before = reads_after;
        samples.push((cpu + io, resource));
    }
    let io = db.io_snapshot().delta_since(&io_before);
    let cache_after = db.cache_snapshot();
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    let looked = hits + misses;
    let cell = CacheCell {
        cache_bytes,
        hit_rate: if looked == 0 {
            0.0
        } else {
            hits as f64 / looked as f64
        },
        io: super::IoSummary::from_delta(&io),
    };
    (samples, cell)
}

/// Runs the full sweep. `ops` is the op count per cache-size cell.
pub fn run(ops: usize) -> CacheScalingReport {
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for cache_bytes in CACHE_SIZES {
        let db = build_engine(cache_bytes);
        preload(&db);
        let (samples, cell) = measure(&db, cache_bytes, ops);
        cells.push(cell);
        metrics.merge(&db.metrics_snapshot());
        for threads in THREADS {
            let mut cluster = VirtualCluster::new(threads);
            for &(cost, resource) in &samples {
                cluster.submit(cost, resource);
            }
            rows.push(CacheScalingRow {
                cache_bytes,
                threads,
                qps: cluster.throughput(),
            });
        }
    }
    CacheScalingReport {
        rows,
        cells,
        metrics,
    }
}

/// Real-OS-thread driver mode: `threads` actual threads share one warm
/// engine and split `ops` between them; throughput is wall-clock.
pub fn run_threads(threads: usize, ops: usize) -> ThreadedRunReport {
    let threads = threads.max(1);
    let db = build_engine(*CACHE_SIZES.last().unwrap());
    preload(&db);
    let io_before = db.io_snapshot();
    let cache_before = db.cache_snapshot();
    let per_thread = ops.div_ceil(threads);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = &db;
            scope.spawn(move || {
                let zipf = Zipf::new(POPULATION, 1.0);
                let mut rng = StdRng::seed_from_u64(42 + t as u64);
                for i in 0..per_thread {
                    let src = VertexId(zipf.sample(&mut rng));
                    let dst = VertexId(zipf.sample(&mut rng));
                    run_op(db, i, src, dst);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let io = db.io_snapshot().delta_since(&io_before);
    let cache_after = db.cache_snapshot();
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    let looked = hits + misses;
    ThreadedRunReport {
        threads,
        ops: per_thread * threads,
        qps: (per_thread * threads) as f64 / elapsed,
        hit_rate: if looked == 0 {
            0.0
        } else {
            hits as f64 / looked as f64
        },
        io: super::IoSummary::from_delta(&io),
        metrics: db.metrics_snapshot(),
    }
}

fn label(cache_bytes: usize) -> String {
    if cache_bytes == 0 {
        "no cache".to_string()
    } else if cache_bytes < 1024 * 1024 {
        format!("{} KiB", cache_bytes / 1024)
    } else {
        format!("{} MiB", cache_bytes / (1024 * 1024))
    }
}

/// Renders the sweep, one series per cache size.
pub fn render(report: &CacheScalingReport) -> String {
    let mut out = String::from(
        "cache_scaling: threads x cache size (virtual-time throughput, 90/10 cold-read mix)\n",
    );
    for cell in &report.cells {
        let series: Vec<String> = report
            .rows
            .iter()
            .filter(|r| r.cache_bytes == cell.cache_bytes)
            .map(|r| format!("{}@{}t", super::kqps(r.qps), r.threads))
            .collect();
        out.push_str(&format!(
            "{:<9} hit-rate {:>5.1}%  read-amp {:.2}  {}\n",
            label(cell.cache_bytes),
            cell.hit_rate * 100.0,
            cell.io.read_amplification,
            series.join("  ")
        ));
    }
    out
}

/// Renders one real-thread run.
pub fn render_threads(report: &ThreadedRunReport) -> String {
    format!(
        "cache_scaling --threads {}: {} ops wall-clock, {}  hit-rate {:.1}%  read-amp {:.2}\n",
        report.threads,
        report.ops,
        super::kqps(report.qps),
        report.hit_rate * 100.0,
        report.io.read_amplification
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_cuts_read_amplification_and_threads_scale() {
        let report = run(1_200);
        let cell = |bytes: usize| {
            report
                .cells
                .iter()
                .find(|c| c.cache_bytes == bytes)
                .unwrap()
        };
        let no_cache = cell(0);
        let warm = cell(*CACHE_SIZES.last().unwrap());
        assert_eq!(no_cache.io.read_amplification, 1.0, "no cache, no hits");
        assert!(
            warm.io.read_amplification < no_cache.io.read_amplification,
            "warm cache strictly below the no-cache baseline: {} vs {}",
            warm.io.read_amplification,
            no_cache.io.read_amplification
        );
        assert!(
            warm.hit_rate > 0.5,
            "Zipf reads mostly hit: {}",
            warm.hit_rate
        );
        let qps = |bytes: usize, threads: usize| {
            report
                .rows
                .iter()
                .find(|r| r.cache_bytes == bytes && r.threads == threads)
                .unwrap()
                .qps
        };
        for bytes in CACHE_SIZES {
            assert!(
                qps(bytes, 4) >= 2.0 * qps(bytes, 1),
                "4 threads at least doubles 1 thread ({bytes} B cache): {} vs {}",
                qps(bytes, 4),
                qps(bytes, 1)
            );
        }
    }

    #[test]
    fn real_thread_mode_is_coherent_under_contention() {
        let report = run_threads(8, 1_600);
        assert_eq!(report.ops, 1_600);
        assert!(report.qps > 0.0);
        assert!(report.hit_rate > 0.0, "warm engine hits its cache");
        assert!(report.io.read_amplification < 1.0);
    }
}
