//! Chaos experiment — fault injection + crash/recovery validation.
//!
//! Not a figure from the paper: this exercises the durability claims behind
//! §3.4 (WAL-before-ack, group commit, recovery from shared storage). For
//! each named crash point the harness runs a durable [`Bg3Db`] under a 4%
//! append-failure rate, kills the engine at the crash point mid-workload,
//! restarts it with [`Bg3Db::recover`], and diffs the recovered graph
//! against an in-memory shadow model. It also proves the zero-cost-when-off
//! contract: an empty fault plan leaves the I/O counters byte-identical to
//! a plan-free store.

use bg3_core::prelude::*;
use bg3_graph::MemGraph;
use serde::Serialize;

/// One crash-point scenario's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosRow {
    /// Which crash point was armed.
    pub crash_point: String,
    /// Operations applied before the engine died.
    pub ops_before_crash: u64,
    /// Injected faults absorbed by retries along the way.
    pub faults_fired: u64,
    /// WAL LSN at recovery (records replayed).
    pub recovered_lsn: u64,
    /// Whether the recovered graph matched the shadow model exactly.
    pub recovered_match: bool,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// One row per crash point.
    pub rows: Vec<ChaosRow>,
    /// Zero-cost contract: I/O counters with an empty fault plan vs none.
    pub faultless_iostats_identical: bool,
    /// Merged registry snapshot across every crash-point scenario
    /// (pre-crash and post-recovery activity share one store).
    pub metrics: MetricsSnapshot,
}

const USERS: u64 = 48;
const HOT_USERS: u64 = 5;

fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixed Follow workload op `i`: follow, unfollow, or profile upsert.
/// Returns `None` for read ticks (reads don't mutate either model).
fn op_at(i: u64) -> Option<Edge> {
    let r = mix(i);
    let src = if r.is_multiple_of(3) {
        VertexId(mix(r) % USERS)
    } else {
        VertexId(mix(r) % HOT_USERS)
    };
    let dst = VertexId(1_000 + mix(r ^ 0xABCD) % 200);
    (r % 10 <= 6).then(|| Edge {
        src,
        etype: EdgeType::FOLLOW,
        dst,
        props: i.to_le_bytes().to_vec(),
    })
}

fn chaos_config() -> Bg3Config {
    let mut config = Bg3Config::default();
    config.store = StoreConfig::counting()
        .with_extent_capacity(4096)
        .with_faults(FaultPlan::seeded(0xC4A0_5EED).with_rule(FaultRule::new(
            FaultOp::Append,
            FaultKind::AppendFail,
            0.04,
        )));
    config.forest = config.forest.clone().with_split_out_threshold(12);
    config.forest.tree_config = config
        .forest
        .tree_config
        .clone()
        .with_max_page_entries(8)
        .with_consolidate_threshold(4);
    config.gc_policy = GcPolicyKind::Fifo;
    config.durability = Some(DurabilityConfig {
        group_commit_pages: 6,
    });
    config
}

fn graphs_match(db: &Bg3Db, shadow: &MemGraph) -> bool {
    (0..USERS).all(|u| {
        let id = VertexId(u);
        db.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap()
            == shadow.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap()
    })
}

/// Runs one crash-point scenario; see the module docs.
fn scenario(point: CrashPoint, ops: u64) -> (ChaosRow, MetricsSnapshot) {
    let config = chaos_config();
    let db = Bg3Db::new(config.clone());
    let shadow = MemGraph::new();
    let warm_up = ops / 8;

    let mut crashed: Option<Edge> = None;
    let mut ops_before_crash = 0;
    for i in 0..ops {
        if i == warm_up {
            db.crash_switch().arm(point);
        }
        if let Some(edge) = op_at(i) {
            match db.insert_edge(&edge) {
                Ok(()) => shadow.insert_edge(&edge).unwrap(),
                Err(_) => {
                    crashed = Some(edge);
                    break;
                }
            }
        }
        ops_before_crash = i + 1;
        if point == CrashPoint::MidGcCycle && i % 64 == 63 && db.run_gc_cycle(2).is_err() {
            break;
        }
    }
    let faults_fired = db.store().fault_injector().total_fired();

    let store = db.store().clone();
    let mapping = db.mapping().expect("durable engine").clone();
    drop(db);
    let recovered = Bg3Db::recover(store, mapping, config).expect("recovery succeeds");
    // The interrupted op is atomic: adopt it into the shadow iff it landed.
    if let Some(edge) = &crashed {
        if recovered
            .get_edge(edge.src, edge.etype, edge.dst)
            .unwrap()
            .as_deref()
            == Some(edge.props.as_slice())
        {
            shadow.insert_edge(edge).unwrap();
        }
    }
    let row = ChaosRow {
        crash_point: format!("{point:?}"),
        ops_before_crash,
        faults_fired,
        recovered_lsn: recovered.last_lsn().0,
        recovered_match: graphs_match(&recovered, &shadow),
    };
    (row, recovered.metrics_snapshot())
}

/// Identical workload on two non-durable engines: one with no fault plan,
/// one with an explicitly empty seeded plan. Their I/O counters must be
/// byte-identical — fault injection is free when no rule matches.
fn faultless_identical(ops: u64) -> bool {
    let run = |faults: FaultPlan| {
        let config = Bg3Config {
            store: StoreConfig::counting().with_faults(faults),
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        for i in 0..ops {
            if let Some(edge) = op_at(i) {
                db.insert_edge(&edge).unwrap();
            }
        }
        db.io_snapshot()
    };
    run(FaultPlan::none()) == run(FaultPlan::seeded(7))
}

/// Runs every crash-point scenario plus the zero-cost check.
pub fn run(ops: u64) -> ChaosReport {
    let mut rows = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for point in [
        CrashPoint::MidFlush,
        CrashPoint::MidSplit,
        CrashPoint::MidGcCycle,
        CrashPoint::MidGroupCommit,
    ] {
        let (row, snap) = scenario(point, ops);
        rows.push(row);
        metrics.merge(&snap);
    }
    ChaosReport {
        rows,
        faultless_iostats_identical: faultless_identical(ops.min(2_000)),
        metrics,
    }
}

/// Renders the scenario table.
pub fn render(report: &ChaosReport) -> String {
    let mut out = String::from("Chaos: crash/recovery under injected append faults\n");
    out.push_str("crash point      ops-before-crash  faults  recovered-lsn  shadow-match\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:<16} {:>16} {:>7} {:>14} {:>13}\n",
            row.crash_point,
            row.ops_before_crash,
            row.faults_fired,
            row.recovered_lsn,
            row.recovered_match
        ));
    }
    out.push_str(&format!(
        "faultless I/O counters identical: {}\n",
        report.faultless_iostats_identical
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_crash_point_recovers_to_the_shadow_model() {
        let report = run(1_500);
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.recovered_match, "{} diverged", row.crash_point);
            assert!(row.recovered_lsn > 0, "{} replayed no WAL", row.crash_point);
        }
        assert!(report.faultless_iostats_identical);
    }
}
