//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [all|table1|fig8|cost|fig9|fig10|fig11|table2|fig12|fig13|fig14
//!            |ablation|chaos|failover|scrub|cache_scaling|disk_smoke
//!            |disk_chaos|khop|overload|profile]
//!           [--scale full|quick] [--json <path>] [--metrics-json <path>]
//!           [--threads N] [--cycles N] [--slow-log N]
//! ```
//!
//! Prints each experiment's rows in the shape of the paper's artifact and,
//! with `--json`, writes all raw results to a JSON file. Every experiment
//! additionally gets the shared [`bg3_obs::export::experiment_summary`]
//! lines: a `cache:` line when the report embeds cache-adjusted I/O
//! counters, a `fencing:` line when it embeds epoch-fence counters, and
//! `latency <op>: p50 … p95 … p99 … max …` lines from the virtual-time
//! histograms. `--metrics-json <path>` writes the merged
//! [`MetricsSnapshot`](bg3_storage::MetricsSnapshot) per experiment (plus a
//! `total` entry across all of them) for the `scripts/check.sh` drift gate.
//! `--threads N` appends real-OS-thread `cache_scaling` and `khop` runs at
//! that thread count (wall-clock throughput over one shared engine). `--cycles
//! N` overrides the failover and scrub experiments' crash/failover cycle
//! counts. `--slow-log N` overrides the `profile` experiment's slow-query-log
//! capacity (the K worst profiles kept by modelled cost).

use bg3_bench::experiments::*;
use bg3_obs::export;
use serde_json::{json, Value};
use std::time::Instant;

struct Scale {
    fig8_ops: usize,
    fig9_ops: usize,
    fig10_ops: usize,
    fig11_ops: usize,
    table2_ops: usize,
    cost_ops: usize,
    fig12_writes: usize,
    fig13_sim_millis: u64,
    fig14_reads: usize,
    chaos_ops: u64,
    cache_ops: usize,
    khop_queries: usize,
    failover_cycles: usize,
    scrub_cycles: usize,
    disk_smoke_threads: usize,
    disk_smoke_per_thread: usize,
    disk_chaos_rounds: usize,
    overload_ops: usize,
    profile_queries: usize,
    slow_log_k: usize,
}

const FULL: Scale = Scale {
    fig8_ops: 20_000,
    fig9_ops: 20_000,
    fig10_ops: 20_000,
    fig11_ops: 40_000,
    table2_ops: 40_000,
    cost_ops: 30_000,
    fig12_writes: 20_000,
    fig13_sim_millis: 1_500,
    fig14_reads: 30_000,
    chaos_ops: 6_000,
    cache_ops: 12_000,
    khop_queries: 1_200,
    failover_cycles: 5,
    scrub_cycles: 4,
    disk_smoke_threads: 4,
    disk_smoke_per_thread: 200,
    disk_chaos_rounds: 24,
    overload_ops: 4_000,
    profile_queries: 600,
    slow_log_k: 8,
};

const QUICK: Scale = Scale {
    fig8_ops: 3_000,
    fig9_ops: 4_000,
    fig10_ops: 4_000,
    fig11_ops: 8_000,
    table2_ops: 10_000,
    cost_ops: 8_000,
    fig12_writes: 4_000,
    fig13_sim_millis: 600,
    fig14_reads: 6_000,
    chaos_ops: 1_500,
    cache_ops: 2_000,
    khop_queries: 240,
    failover_cycles: 3,
    scrub_cycles: 2,
    disk_smoke_threads: 2,
    disk_smoke_per_thread: 60,
    disk_chaos_rounds: 6,
    overload_ops: 1_000,
    profile_queries: 150,
    slow_log_k: 5,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut metrics_json_path: Option<String> = None;
    let mut scale = &FULL;
    let mut threads: Option<usize> = None;
    let mut cycles: Option<usize> = None;
    let mut slow_log: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_path = it.next().cloned(),
            "--metrics-json" => metrics_json_path = it.next().cloned(),
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("quick") => &QUICK,
                    _ => &FULL,
                }
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .or_else(|| panic!("--threads takes a positive integer"));
            }
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .or_else(|| panic!("--cycles takes a positive integer"));
            }
            "--slow-log" => {
                slow_log = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .or_else(|| panic!("--slow-log takes a positive integer"));
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1",
            "fig8",
            "cost",
            "fig9",
            "fig10",
            "fig11",
            "table2",
            "fig12",
            "fig13",
            "fig14",
            "ablation",
            "chaos",
            "failover",
            "scrub",
            "cache_scaling",
            "disk_smoke",
            "disk_chaos",
            "khop",
            "overload",
            "profile",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut results: Vec<(String, Value)> = Vec::new();
    for name in &which {
        let started = Instant::now();
        let (rendered, value) = run_one(name, scale, cycles, slow_log);
        println!("{rendered}");
        for line in export::experiment_summary(&value) {
            println!("[{name} {line}]");
        }
        println!("[{name} took {:.1}s]\n", started.elapsed().as_secs_f64());
        results.push((name.clone(), value));
    }

    if let Some(threads) = threads {
        let started = Instant::now();
        let report = cache_scaling::run_threads(threads, scale.cache_ops);
        print!("{}", cache_scaling::render_threads(&report));
        results.push((
            "cache_scaling_threads".to_string(),
            serde_json::to_value(&report).unwrap(),
        ));
        let khop_report = khop::run_threads(threads, scale.khop_queries);
        print!("{}", khop::render_threads(&khop_report));
        println!(
            "[threaded runs took {:.1}s]\n",
            started.elapsed().as_secs_f64()
        );
        results.push((
            "khop_threads".to_string(),
            serde_json::to_value(&khop_report).unwrap(),
        ));
    }

    if let Some(path) = metrics_json_path {
        // One merged registry snapshot per experiment, plus a `total`
        // across all of them — the shape the check.sh drift gate consumes.
        let mut total = bg3_storage::MetricsSnapshot::default();
        let mut entries: Vec<(String, Value)> = Vec::new();
        for (name, value) in &results {
            if let Some(snap) = export::collect_metrics(value) {
                total.merge(&snap);
                entries.push((name.clone(), serde_json::to_value(&snap).unwrap()));
            }
        }
        entries.push(("total".to_string(), serde_json::to_value(&total).unwrap()));
        let doc: Value = Value::Object(entries.into_iter().collect());
        std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("metrics written to {path}");
    }

    if let Some(path) = json_path {
        let doc: Value = Value::Object(results.into_iter().collect());
        std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("raw results written to {path}");
    }
}

fn run_one(
    name: &str,
    scale: &Scale,
    cycles: Option<usize>,
    slow_log: Option<usize>,
) -> (String, Value) {
    match name {
        "table1" => (table1::render(), json!(null)),
        "fig8" => {
            let report = fig8::run(scale.fig8_ops);
            let mut rendered = fig8::render(&report);
            for (workload, factor) in fig8::speedups(&report) {
                rendered.push_str(&format!("BG3 over ByteGraph on {workload}: {factor:.2}x\n"));
            }
            (rendered, serde_json::to_value(&report).unwrap())
        }
        "cost" => {
            let report = cost::run(scale.cost_ops);
            (
                cost::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig9" => {
            let report = fig9::run(scale.fig9_ops);
            (
                fig9::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig10" => {
            let report = fig10::run(scale.fig10_ops);
            (
                fig10::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig11" => {
            let report = fig11::run(scale.fig11_ops, 50_000);
            (
                fig11::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "table2" => {
            let report = table2::run(scale.table2_ops);
            (
                table2::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig12" => {
            let report = fig12::run(scale.fig12_writes);
            (
                fig12::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig13" => {
            let report = fig13::run(scale.fig13_sim_millis);
            (
                fig13::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "ablation" => {
            let report = ablation::run(scale.table2_ops / 2);
            (
                ablation::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig14" => {
            let report = fig14::run(scale.fig14_reads);
            (
                fig14::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "chaos" => {
            let report = chaos::run(scale.chaos_ops);
            (
                chaos::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "failover" => {
            let report = failover::run(cycles.unwrap_or(scale.failover_cycles));
            (
                failover::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "scrub" => {
            let report = scrub::run(cycles.unwrap_or(scale.scrub_cycles));
            (
                scrub::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "disk_smoke" => {
            let report = disk_smoke::run(scale.disk_smoke_threads, scale.disk_smoke_per_thread);
            (
                disk_smoke::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "disk_chaos" => {
            let report = disk_chaos::run(scale.disk_chaos_rounds);
            (
                disk_chaos::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "cache_scaling" => {
            let report = cache_scaling::run(scale.cache_ops);
            (
                cache_scaling::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "khop" => {
            let report = khop::run(scale.khop_queries);
            (
                khop::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "overload" => {
            let report = overload::run(scale.overload_ops);
            (
                overload::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "profile" => {
            let report = profile::run(scale.profile_queries, slow_log.unwrap_or(scale.slow_log_k));
            (
                profile::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        other => (format!("unknown experiment: {other}"), json!(null)),
    }
}
