//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [all|table1|fig8|cost|fig9|fig10|fig11|table2|fig12|fig13|fig14|chaos]
//!           [--scale full|quick] [--json <path>]
//! ```
//!
//! Prints each experiment's rows in the shape of the paper's artifact and,
//! with `--json`, writes all raw results to a JSON file.

use bg3_bench::experiments::*;
use serde_json::{json, Value};
use std::time::Instant;

struct Scale {
    fig8_ops: usize,
    fig9_ops: usize,
    fig10_ops: usize,
    fig11_ops: usize,
    table2_ops: usize,
    cost_ops: usize,
    fig12_writes: usize,
    fig13_sim_millis: u64,
    fig14_reads: usize,
    chaos_ops: u64,
}

const FULL: Scale = Scale {
    fig8_ops: 20_000,
    fig9_ops: 20_000,
    fig10_ops: 20_000,
    fig11_ops: 40_000,
    table2_ops: 40_000,
    cost_ops: 30_000,
    fig12_writes: 20_000,
    fig13_sim_millis: 1_500,
    fig14_reads: 30_000,
    chaos_ops: 6_000,
};

const QUICK: Scale = Scale {
    fig8_ops: 3_000,
    fig9_ops: 4_000,
    fig10_ops: 4_000,
    fig11_ops: 8_000,
    table2_ops: 10_000,
    cost_ops: 8_000,
    fig12_writes: 4_000,
    fig13_sim_millis: 600,
    fig14_reads: 6_000,
    chaos_ops: 1_500,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut scale = &FULL;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_path = it.next().cloned(),
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("quick") => &QUICK,
                    _ => &FULL,
                }
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "fig8", "cost", "fig9", "fig10", "fig11", "table2", "fig12", "fig13",
            "fig14", "ablation", "chaos",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut results: Vec<(String, Value)> = Vec::new();
    for name in &which {
        let started = Instant::now();
        let (rendered, value) = run_one(name, scale);
        println!("{rendered}");
        println!("[{name} took {:.1}s]\n", started.elapsed().as_secs_f64());
        results.push((name.clone(), value));
    }

    if let Some(path) = json_path {
        let doc: Value = Value::Object(results.into_iter().collect());
        std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("raw results written to {path}");
    }
}

fn run_one(name: &str, scale: &Scale) -> (String, Value) {
    match name {
        "table1" => (table1::render(), json!(null)),
        "fig8" => {
            let report = fig8::run(scale.fig8_ops);
            let mut rendered = fig8::render(&report);
            for (workload, factor) in fig8::speedups(&report) {
                rendered.push_str(&format!("BG3 over ByteGraph on {workload}: {factor:.2}x\n"));
            }
            (rendered, serde_json::to_value(&report).unwrap())
        }
        "cost" => {
            let report = cost::run(scale.cost_ops);
            (
                cost::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig9" => {
            let report = fig9::run(scale.fig9_ops);
            (
                fig9::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig10" => {
            let report = fig10::run(scale.fig10_ops);
            (
                fig10::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig11" => {
            let report = fig11::run(scale.fig11_ops, 50_000);
            (
                fig11::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "table2" => {
            let report = table2::run(scale.table2_ops);
            (
                table2::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig12" => {
            let report = fig12::run(scale.fig12_writes);
            (
                fig12::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig13" => {
            let report = fig13::run(scale.fig13_sim_millis);
            (
                fig13::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "ablation" => {
            let report = ablation::run(scale.table2_ops / 2);
            (
                ablation::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "fig14" => {
            let report = fig14::run(scale.fig14_reads);
            (
                fig14::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        "chaos" => {
            let report = chaos::run(scale.chaos_ops);
            (
                chaos::render(&report),
                serde_json::to_value(&report).unwrap(),
            )
        }
        other => (format!("unknown experiment: {other}"), json!(null)),
    }
}
