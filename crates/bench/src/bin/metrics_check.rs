//! `metrics_check <path>` — the `--metrics-json` drift gate.
//!
//! Parses a file written by `reproduce --metrics-json`, re-hydrates every
//! per-experiment [`MetricsSnapshot`], and verifies the stable-name
//! contract: the `total` entry must carry every counter in
//! [`bg3_obs::names::REQUIRED_COUNTERS`] and every histogram in
//! [`bg3_obs::names::REQUIRED_HISTOGRAMS`]. Exits nonzero (with one line
//! per violation) on any failure, so `scripts/check.sh` can gate on it.

use bg3_obs::names;
use bg3_obs::MetricsSnapshot;
use serde_json::Value;
use std::process::ExitCode;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = bg3_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Value::Object(entries) = &doc else {
        return Err(format!("{path}: top level is not an object"));
    };

    let mut errors = Vec::new();
    let mut snapshots = 0usize;
    let mut total: Option<MetricsSnapshot> = None;
    for (name, value) in entries.iter() {
        match MetricsSnapshot::from_value(value) {
            Some(snap) => {
                snapshots += 1;
                if name == "total" {
                    total = Some(snap);
                }
            }
            None => errors.push(format!("entry {name:?} is not a metrics snapshot")),
        }
    }
    if snapshots == 0 {
        errors.push("no metrics snapshots in the document".to_string());
    }
    match &total {
        None => errors.push("missing the merged `total` entry".to_string()),
        Some(total) => {
            for name in names::REQUIRED_COUNTERS {
                if total.counter(name).is_none() {
                    errors.push(format!("total: missing required counter {name}"));
                }
            }
            for name in names::REQUIRED_HISTOGRAMS {
                if total.histogram(name).is_none() {
                    errors.push(format!("total: missing required histogram {name}"));
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(format!(
            "{path}: {snapshots} snapshot(s), all {} required counters and {} histograms present",
            names::REQUIRED_COUNTERS.len(),
            names::REQUIRED_HISTOGRAMS.len(),
        ))
    } else {
        Err(errors.join("\n"))
    }
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: metrics_check <metrics.json>");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            eprintln!("{errors}");
            ExitCode::FAILURE
        }
    }
}
