//! # bg3-bench
//!
//! The benchmark harness that regenerates every table and figure of the BG3
//! paper's evaluation (§4). Each experiment lives in [`experiments`] and
//! returns a serializable report; the `reproduce` binary runs them and
//! prints rows shaped like the paper's.
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — workload descriptions |
//! | [`experiments::fig8`] | Fig. 8 — overall throughput, scale-up + scale-out |
//! | [`experiments::cost`] | §4.2 — storage cost comparison |
//! | [`experiments::fig9`] | Fig. 9 — read amplification, SLED vs read-optimized |
//! | [`experiments::fig10`] | Fig. 10 — write bandwidth, SLED vs read-optimized |
//! | [`experiments::fig11`] | Fig. 11 — Bw-tree forest scaling |
//! | [`experiments::table2`] | Table 2 — space-reclamation policies |
//! | [`experiments::fig12`] | Fig. 12 — recall under packet loss |
//! | [`experiments::fig13`] | Fig. 13 — leader-follower latency vs write load |
//! | [`experiments::fig14`] | Fig. 14 — RO read scaling + sync latency |
//!
//! Timing methodology: throughput experiments (Figs. 8/11/14) run ops
//! sequentially, measure each op's real cost, and replay them through the
//! [`vdriver::VirtualCluster`] discrete-event simulator — see DESIGN.md for
//! why (single-core CI host). Latency experiments (Figs. 13/14) use the
//! storage layer's simulated clock. Counting experiments (Figs. 9/10,
//! Table 2, cost) read the store's I/O counters directly.

pub mod driver;
pub mod experiments;
pub mod vdriver;

pub use driver::{execute_op, Engine, EngineKind};
pub use vdriver::VirtualCluster;
