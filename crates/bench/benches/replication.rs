//! Criterion benchmarks of the synchronization path (Figs. 12–14 as
//! micro-benchmarks): leader write cost, WAL shipping, follower replay.

use bg3_storage::{StoreBuilder, StoreConfig};
use bg3_sync::{RoNode, RoNodeConfig, RwNode, RwNodeConfig};
use bg3_wal::{WalPayload, WalWriter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let wal = WalWriter::new(StoreBuilder::from_config(StoreConfig::counting()).build());
    let mut i = 0u64;
    group.bench_function("append_upsert", |b| {
        b.iter(|| {
            i += 1;
            wal.append(
                1,
                i % 64,
                WalPayload::Upsert {
                    key: i.to_be_bytes().to_vec(),
                    value: vec![0u8; 16],
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_leader_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let rw = RwNode::new(
        StoreBuilder::from_config(StoreConfig::counting()).build(),
        RwNodeConfig::default(),
    );
    let mut i = 0u64;
    group.bench_function("put_with_wal", |b| {
        b.iter(|| {
            i += 1;
            rw.put(&i.to_be_bytes(), &[1u8; 16]).unwrap();
        })
    });
    group.finish();
}

fn bench_follower(c: &mut Criterion) {
    let mut group = c.benchmark_group("follower");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let store = StoreBuilder::from_config(StoreConfig::counting()).build();
    let rw = RwNode::new(store.clone(), RwNodeConfig::default());
    for i in 0..50_000u64 {
        rw.put(&(i % 4096).to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let ro = RoNode::new(
        store,
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig::default(),
    );
    ro.poll().unwrap();
    let mut i = 0u64;
    group.bench_function("warm_get", |b| {
        b.iter(|| {
            i += 1;
            ro.get(1, &(i % 4096).to_be_bytes()).unwrap()
        })
    });
    group.bench_function("poll_quiet_log", |b| b.iter(|| ro.poll().unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_leader_write,
    bench_follower
);
criterion_main!(benches);
