//! Criterion micro-benchmarks of the three engines' core operations —
//! the per-op costs underlying Fig. 8.

use bg3_bench::{Engine, EngineKind};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn preload(engine: &Engine, edges: usize) {
    let zipf = Zipf::new(5_000, 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..edges {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        engine
            .insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_edge");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for kind in EngineKind::all() {
        let engine = Engine::build(kind);
        preload(&engine, 5_000);
        let zipf = Zipf::new(5_000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut next_dst = 100_000u64;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let src = VertexId(zipf.sample(&mut rng));
                next_dst += 1;
                engine
                    .insert_edge(&Edge::new(src, EdgeType::FOLLOW, VertexId(next_dst)))
                    .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_one_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_hop");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for kind in EngineKind::all() {
        let engine = Engine::build(kind);
        preload(&engine, 10_000);
        let zipf = Zipf::new(5_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let src = VertexId(zipf.sample(&mut rng));
                engine.neighbors(src, EdgeType::FOLLOW, 100).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_get_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_edge");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for kind in EngineKind::all() {
        let engine = Engine::build(kind);
        preload(&engine, 10_000);
        let zipf = Zipf::new(5_000, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let src = VertexId(zipf.sample(&mut rng));
                let dst = VertexId(zipf.sample(&mut rng));
                engine.get_edge(src, EdgeType::FOLLOW, dst).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_one_hop, bench_get_edge);
criterion_main!(benches);
