//! Criterion benchmarks of k-hop expansion: the batched (morsel-driven)
//! executor vs the scalar per-vertex executor over a warm, checkpointed
//! BG3 engine whose sealed pages serve CSR-packed adjacency.

use bg3_core::{Bg3Config, Bg3Db, GraphEngine};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_query::{optimize, parse, Executor, ExecutorConfig};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Durable engine, checkpointed after preload so base pages seal and the
/// CSR pack path engages — the regime the batched sweep is built for.
fn warm_sealed_engine() -> Bg3Db {
    let mut config = Bg3Config::default().with_durability();
    config.forest = config.forest.clone().with_split_out_threshold(64);
    let db = Bg3Db::open(config);
    let zipf = Zipf::new(4_096, 1.0);
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..24_000 {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
    db.checkpoint().unwrap();
    db
}

fn exec_config() -> ExecutorConfig {
    ExecutorConfig {
        default_fanout: 32,
        max_traversers: 1_000_000,
        ..ExecutorConfig::default()
    }
}

fn bench_khop_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("khop_modes");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let db = warm_sealed_engine();
    let batched = Executor::new(exec_config());
    let scalar = Executor::new(exec_config().scalar());
    for (hops, text) in [
        (1, "g.V(1).out(follow).count()"),
        (2, "g.V(1).repeat(out(follow), 2).dedup().count()"),
        (3, "g.V(1).repeat(out(follow), 3).dedup().count()"),
    ] {
        let plan = optimize(&parse(text).unwrap());
        group.bench_function(format!("batched_{hops}hop"), |b| {
            b.iter(|| batched.run_plan(&db, &plan).unwrap())
        });
        group.bench_function(format!("scalar_{hops}hop"), |b| {
            b.iter(|| scalar.run_plan(&db, &plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_khop_modes);
criterion_main!(benches);
