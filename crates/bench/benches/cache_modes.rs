//! Criterion comparison of the shared store's read path under three page
//! cache regimes: disabled, cold (budget far below the working set, so
//! CLOCK churns), and warm (working set resident). Each mode also reports
//! its cache-adjusted read amplification — storage reads per logical read
//! — which is the number the `cache_scaling` experiment sweeps.

use bg3_storage::{AppendOnlyStore, CacheConfig, PageAddr, StoreBuilder, StoreConfig, StreamId};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const RECORDS: u64 = 4_096;
const RECORD_BYTES: usize = 128;

fn store_with(cache: CacheConfig) -> (AppendOnlyStore, Vec<PageAddr>) {
    let store = StoreBuilder::from_config(
        StoreConfig::counting()
            .with_extent_capacity(1 << 20)
            .with_cache(cache),
    )
    .build();
    let addrs = (0..RECORDS)
        .map(|i| {
            store
                .append(StreamId::BASE, &[(i % 251) as u8; RECORD_BYTES], i, None)
                .unwrap()
        })
        .collect();
    (store, addrs)
}

fn modes() -> [(&'static str, CacheConfig); 3] {
    [
        ("no-cache", CacheConfig::disabled()),
        // ~1/32 of the working set: every sweep is an eviction fight.
        (
            "cold-cache",
            CacheConfig::default().with_capacity_bytes(16 * 1024),
        ),
        // Whole working set resident after one pass.
        (
            "warm-cache",
            CacheConfig::default().with_capacity_bytes(8 << 20),
        ),
    ]
}

fn bench_read_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_read");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for (label, cache) in modes() {
        let (store, addrs) = store_with(cache);
        let zipf = Zipf::new(RECORDS, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        // Warm pass: populates the cache to steady state (a no-op for the
        // disabled mode, a fully-churning state for the cold one).
        for _ in 0..RECORDS * 2 {
            store
                .read(addrs[zipf.sample(&mut rng) as usize % addrs.len()])
                .unwrap();
        }
        let before = store.stats().snapshot();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let addr = addrs[zipf.sample(&mut rng) as usize % addrs.len()];
                store.read(addr).unwrap()
            })
        });
        let delta = store.stats().snapshot().delta_since(&before);
        eprintln!(
            "store_read/{label}: read amplification {:.3} ({} storage reads, {} cache hits)",
            delta.read_amplification(),
            delta.random_reads,
            delta.cache_hits
        );
    }
    group.finish();
}

criterion_group!(benches, bench_read_modes);
criterion_main!(benches);
