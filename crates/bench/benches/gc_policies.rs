//! Criterion benchmarks of the space-reclamation policies (Table 2 as a
//! micro-benchmark): plan construction cost and full-cycle cost.

use bg3_gc::{
    DirtyRatioPolicy, FifoPolicy, NullRouter, ReclaimPolicy, SpaceReclaimer, WorkloadAwarePolicy,
};
use bg3_storage::{AppendOnlyStore, StoreBuilder, StoreConfig, StreamId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Builds a store with many fragmented sealed extents.
fn fragmented_store(extents: usize) -> AppendOnlyStore {
    let store =
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1024)).build();
    let per_extent = 1024 / 64;
    for i in 0..extents * per_extent {
        let addr = store
            .append(StreamId::DELTA, &[0u8; 56], i as u64, None)
            .unwrap();
        store.clock().advance_micros(10);
        if i % 3 != 0 {
            store.invalidate(addr).unwrap();
        }
    }
    store
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_plan");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let store = fragmented_store(200);
    let candidates = store.extent_infos(StreamId::DELTA).unwrap();
    let now = store.clock().now();
    let policies: [(&str, &dyn ReclaimPolicy); 3] = [
        ("fifo", &FifoPolicy),
        ("dirty-ratio", &DirtyRatioPolicy),
        (
            "workload-aware",
            &WorkloadAwarePolicy { cold_fraction: 0.5 },
        ),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| policy.plan(&candidates, now, 16))
        });
    }
    group.finish();
}

fn bench_full_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_cycle");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function("dirty_ratio_cycle_of_8", |b| {
        b.iter_with_setup(
            || {
                SpaceReclaimer::new(fragmented_store(64), DirtyRatioPolicy, NullRouter)
                    .with_streams(vec![StreamId::DELTA])
            },
            |reclaimer| reclaimer.run_cycle(8).unwrap(),
        )
    });
    group.bench_function("workload_aware_cycle_of_8", |b| {
        b.iter_with_setup(
            || {
                SpaceReclaimer::new(
                    fragmented_store(64),
                    WorkloadAwarePolicy::default(),
                    NullRouter,
                )
                .with_streams(vec![StreamId::DELTA])
            },
            |reclaimer| reclaimer.run_cycle(8).unwrap(),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_planning, bench_full_cycle);
criterion_main!(benches);
