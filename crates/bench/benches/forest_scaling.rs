//! Criterion benchmark of the Bw-tree forest write path at different
//! split-out thresholds (Fig. 11's per-op cost side).

use bg3_forest::{BwTreeForest, ForestConfig};
use bg3_storage::{StoreBuilder, StoreConfig};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_forest_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_put");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for (label, threshold) in [
        ("single-tree", usize::MAX),
        ("threshold-512", 512),
        ("threshold-32", 32),
    ] {
        let forest = BwTreeForest::new(
            StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20))
                .build(),
            ForestConfig::default()
                .with_split_out_threshold(threshold)
                .with_init_tree_max_entries(usize::MAX),
        );
        let zipf = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seq = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                seq += 1;
                let group_key = zipf.sample(&mut rng).to_be_bytes();
                forest
                    .put(&group_key, &seq.to_be_bytes(), &[0u8; 16])
                    .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_forest_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_scan_group");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let forest = BwTreeForest::new(
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build(),
        ForestConfig::default().with_split_out_threshold(64),
    );
    let zipf = Zipf::new(2_000, 1.0);
    let mut rng = StdRng::seed_from_u64(9);
    for seq in 0..50_000u64 {
        let group_key = zipf.sample(&mut rng).to_be_bytes();
        forest
            .put(&group_key, &seq.to_be_bytes(), &[0u8; 8])
            .unwrap();
    }
    group.bench_function("scan_100", |b| {
        b.iter(|| {
            let group_key = zipf.sample(&mut rng).to_be_bytes();
            forest.scan_group(&group_key, 100)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forest_put, bench_forest_scan);
criterion_main!(benches);
