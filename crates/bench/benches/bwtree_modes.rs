//! Criterion comparison of the two Bw-tree write paths (Figs. 9/10 as
//! micro-benchmarks): write cost, warm-read cost, and cold-read cost.

use bg3_bwtree::{BwTree, BwTreeConfig, WriteMode};
use bg3_storage::{StoreBuilder, StoreConfig};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn tree(mode: WriteMode, read_cache: bool) -> BwTree {
    let config = BwTreeConfig::default()
        .with_mode(mode)
        .with_read_cache(read_cache)
        .with_consolidate_threshold(10)
        .with_max_page_entries(256);
    BwTree::new(
        1,
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build(),
        config,
    )
}

fn label(mode: WriteMode) -> &'static str {
    match mode {
        WriteMode::Traditional => "traditional",
        WriteMode::ReadOptimized => "read-optimized",
    }
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bwtree_write");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for mode in [WriteMode::Traditional, WriteMode::ReadOptimized] {
        let t = tree(mode, true);
        let zipf = Zipf::new(1_024, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_function(BenchmarkId::from_parameter(label(mode)), |b| {
            b.iter(|| {
                let key = zipf.sample(&mut rng).to_be_bytes();
                t.put(&key, &[7u8; 16]).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_cold_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("bwtree_cold_read");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for mode in [WriteMode::Traditional, WriteMode::ReadOptimized] {
        let t = tree(mode, false);
        let zipf = Zipf::new(1_024, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20_000 {
            let key = zipf.sample(&mut rng).to_be_bytes();
            t.put(&key, &[7u8; 16]).unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(label(mode)), |b| {
            b.iter(|| {
                let key = zipf.sample(&mut rng).to_be_bytes();
                t.get(&key).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_warm_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("bwtree_warm_read");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for mode in [WriteMode::Traditional, WriteMode::ReadOptimized] {
        let t = tree(mode, true);
        let zipf = Zipf::new(1_024, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let key = zipf.sample(&mut rng).to_be_bytes();
            t.put(&key, &[7u8; 16]).unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(label(mode)), |b| {
            b.iter(|| {
                let key = zipf.sample(&mut rng).to_be_bytes();
                t.get(&key).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_writes, bench_cold_reads, bench_warm_reads);
criterion_main!(benches);
