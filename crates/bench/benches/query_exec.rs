//! Criterion benchmarks of the query layer: parsing, planning, and
//! execution over a warm BG3 engine.

use bg3_core::{Bg3Config, Bg3Db};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_query::{optimize, parse, Executor};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn warm_engine() -> Bg3Db {
    let db = Bg3Db::new(Bg3Config {
        maintain_reverse_edges: true,
        ..Bg3Config::default()
    });
    let zipf = Zipf::new(2_000, 1.0);
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..30_000 {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, VertexId(dst.0)))
            .unwrap();
    }
    db
}

fn bench_parse_and_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_frontend");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let text = "g.V(1).repeat(out(follow), 2).dedup().order().limit(20).count()";
    group.bench_function("parse", |b| b.iter(|| parse(text).unwrap()));
    let query = parse(text).unwrap();
    group.bench_function("optimize", |b| b.iter(|| optimize(&query)));
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_exec");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let db = warm_engine();
    let exec = Executor::default();
    for (label, text) in [
        ("one_hop_limit", "g.V(1).out(follow).limit(20)"),
        (
            "two_hop_dedup_count",
            "g.V(1).out(follow).out(follow).dedup().count()",
        ),
        ("in_edges", "g.V(1).in(follow).limit(20)"),
        (
            "three_hop_repeat",
            "g.V(1).repeat(out(follow), 3).limit(50).count()",
        ),
    ] {
        let plan = optimize(&parse(text).unwrap());
        group.bench_function(label, |b| b.iter(|| exec.run_plan(&db, &plan).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_parse_and_plan, bench_execution);
criterion_main!(benches);
