//! Criterion benchmarks of the workload generators and the Zipf sampler —
//! the harness must never be the bottleneck of a throughput experiment.

use bg3_workloads::{DouyinFollow, DouyinRecommendation, FinancialRiskControl, WorkloadGen, Zipf};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sample");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for (label, n, s) in [
        ("n=10k,s=1.0", 10_000u64, 1.0),
        ("n=10M,s=1.0", 10_000_000, 1.0),
        ("n=10M,s=0.8", 10_000_000, 0.8),
    ] {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(10);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| zipf.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_next_op");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let mut follow = DouyinFollow::new(1_000_000, 1.0, 11);
    group.bench_function("douyin_follow", |b| b.iter(|| follow.next_op()));
    let mut risk = FinancialRiskControl::new(1_000_000, 1.0, 12);
    group.bench_function("risk_control", |b| b.iter(|| risk.next_op()));
    let mut rec = DouyinRecommendation::new(1_000_000, 1.0, 13);
    group.bench_function("recommendation", |b| b.iter(|| rec.next_op()));
    group.finish();
}

criterion_group!(benches, bench_zipf, bench_generators);
criterion_main!(benches);
