//! Criterion benchmarks of the query profiler's overhead: the same plan
//! through `run_plan` (no tracing) and `run_plan_profiled` (request
//! ledger + span tree + cost snapshotting), over a warm, checkpointed BG3
//! engine. Before handing the pair to criterion, a manual A/B measurement
//! asserts the profiled path stays within [`MAX_OVERHEAD_RATIO`]× of the
//! plain path — the bound `scripts/check.sh` relies on, so a span-layer
//! regression fails the gate rather than silently taxing every query.

use bg3_core::{Bg3Config, Bg3Db, GraphEngine};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_query::{optimize, parse, Executor, ExecutorConfig};
use bg3_workloads::Zipf;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Ceiling on profiled-over-plain mean latency. The profiled path adds a
/// ledger install, one span per hop, and a cost snapshot per span — fixed
/// small work against a traversal that scans real adjacency, so even with
/// scheduler noise it must stay well under this.
const MAX_OVERHEAD_RATIO: f64 = 4.0;

/// Durable engine, checkpointed after preload so base pages seal and the
/// CSR pack path engages — the regime the batched sweep is built for.
fn warm_sealed_engine() -> Bg3Db {
    let mut config = Bg3Config::default().with_durability();
    config.forest = config.forest.clone().with_split_out_threshold(64);
    let db = Bg3Db::open(config);
    let zipf = Zipf::new(4_096, 1.0);
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..24_000 {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
    db.checkpoint().unwrap();
    db
}

fn exec_config() -> ExecutorConfig {
    ExecutorConfig {
        default_fanout: 32,
        max_traversers: 1_000_000,
        ..ExecutorConfig::default()
    }
}

/// Mean ns/iter of `f` over `iters` calls after `warmup` discarded calls.
fn mean_nanos(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_overhead");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let db = warm_sealed_engine();
    let exec = Executor::new(exec_config());
    let plan = optimize(&parse("g.V(1).repeat(out(follow), 2).dedup().count()").unwrap());

    // The asserted bound: one paired A/B measurement before criterion's
    // statistics, so the gate is a hard failure, not a report to eyeball.
    let plain = mean_nanos(50, 300, || {
        exec.run_plan(&db, &plan).unwrap();
    });
    let profiled = mean_nanos(50, 300, || {
        exec.run_plan_profiled(&db, &plan, "2hop").unwrap();
    });
    let ratio = profiled / plain.max(1.0);
    assert!(
        ratio <= MAX_OVERHEAD_RATIO,
        "profiled execution is {ratio:.2}x plain (plain {plain:.0}ns, \
         profiled {profiled:.0}ns), over the {MAX_OVERHEAD_RATIO}x budget"
    );
    println!("span overhead: profiled/plain = {ratio:.2}x (budget {MAX_OVERHEAD_RATIO}x)");

    group.bench_function("plain_2hop", |b| {
        b.iter(|| exec.run_plan(&db, &plan).unwrap())
    });
    group.bench_function("profiled_2hop", |b| {
        b.iter(|| exec.run_plan_profiled(&db, &plan, "2hop").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_span_overhead);
criterion_main!(benches);
