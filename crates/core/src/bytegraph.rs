//! The ByteGraph baseline: B-tree-style edge cache over an LSM KV engine.
//!
//! This reproduces the §2 architecture the paper replaces: the memory layer
//! (BGS) keeps adjacency lists in a B-tree-like index with bounded DRAM;
//! misses fall through to a leveled LSM KV store whose read path probes
//! multiple levels ("reading a data piece necessitates massive I/O to scan
//! through multiple layers", §2.4). Edges are persisted as one KV pair per
//! edge under `group ++ dst` keys, so an uncached adjacency scan is an LSM
//! range scan across overlapping runs.

use bg3_graph::{
    decode_dst, edge_group, edge_item, vertex_key, Edge, EdgeType, GraphStore, Vertex, VertexId,
};
use bg3_lsm::{LsmConfig, LsmKv};
use bg3_storage::{AppendOnlyStore, StorageResult, StoreBuilder, StoreConfig};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct ByteGraphConfig {
    /// Shared-store parameters for the LSM's SST stream.
    pub store: StoreConfig,
    /// LSM engine knobs.
    pub lsm: LsmConfig,
    /// Adjacency lists cached in the memory layer (BGS). Power-law traffic
    /// with a bounded cache leaves the long tail on the LSM path.
    pub cache_capacity_groups: usize,
}

impl Default for ByteGraphConfig {
    fn default() -> Self {
        ByteGraphConfig {
            store: StoreConfig::counting(),
            lsm: LsmConfig::default(),
            cache_capacity_groups: 4096,
        }
    }
}

struct EdgeCache {
    /// group key → adjacency (dst item → props).
    groups: HashMap<Vec<u8>, BTreeMap<Vec<u8>, Vec<u8>>>,
    /// LRU stamps.
    stamps: HashMap<Vec<u8>, u64>,
    clock: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl EdgeCache {
    fn touch(&mut self, group: &[u8]) {
        self.clock += 1;
        self.stamps.insert(group.to_vec(), self.clock);
    }

    fn evict_if_full(&mut self) {
        if self.groups.len() < self.capacity {
            return;
        }
        if let Some(victim) = self
            .stamps
            .iter()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(k, _)| k.clone())
        {
            self.groups.remove(&victim);
            self.stamps.remove(&victim);
        }
    }
}

/// The previous-generation ByteGraph engine (single node).
pub struct ByteGraphDb {
    lsm: LsmKv,
    cache: Mutex<EdgeCache>,
}

impl ByteGraphDb {
    /// Opens a baseline engine over a fresh store.
    pub fn new(config: ByteGraphConfig) -> Self {
        let store = StoreBuilder::from_config(config.store.clone()).build();
        Self::with_store(store, config)
    }

    /// Opens a baseline engine over an existing store.
    pub fn with_store(store: AppendOnlyStore, config: ByteGraphConfig) -> Self {
        ByteGraphDb {
            lsm: LsmKv::new(store, config.lsm.clone()),
            cache: Mutex::new(EdgeCache {
                groups: HashMap::new(),
                stamps: HashMap::new(),
                clock: 0,
                capacity: config.cache_capacity_groups.max(1),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The LSM persistence layer (I/O statistics).
    pub fn lsm(&self) -> &LsmKv {
        &self.lsm
    }

    /// `(hits, misses)` of the memory layer.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.hits, cache.misses)
    }

    fn edge_key(src: VertexId, etype: EdgeType, dst: VertexId) -> Vec<u8> {
        let mut key = edge_group(src, etype);
        key.extend_from_slice(&edge_item(dst));
        key
    }

    /// Loads one adjacency list into the cache from the LSM (range scan
    /// across levels — the expensive path).
    fn load_group(&self, group: &[u8]) -> StorageResult<BTreeMap<Vec<u8>, Vec<u8>>> {
        let mut end = group.to_vec();
        // Group keys are fixed width (10 bytes, src+etype) and never all
        // 0xFF in practice; a simple increment produces the scan bound.
        for i in (0..end.len()).rev() {
            if end[i] != 0xFF {
                end[i] += 1;
                end.truncate(i + 1);
                break;
            }
        }
        let hits = self.lsm.scan(Some(group), Some(&end), usize::MAX)?;
        Ok(hits
            .into_iter()
            .map(|(k, v)| (k[group.len()..].to_vec(), v))
            .collect())
    }
}

impl GraphStore for ByteGraphDb {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        let group = edge_group(edge.src, edge.etype);
        self.lsm
            .put(&Self::edge_key(edge.src, edge.etype, edge.dst), &edge.props)?;
        let mut cache = self.cache.lock();
        if let Some(adj) = cache.groups.get_mut(&group) {
            adj.insert(edge_item(edge.dst), edge.props.clone());
        }
        Ok(())
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        let group = edge_group(src, etype);
        {
            let mut cache = self.cache.lock();
            let hit = cache
                .groups
                .get(&group)
                .map(|adj| adj.get(&edge_item(dst)).cloned());
            if let Some(hit) = hit {
                cache.hits += 1;
                cache.touch(&group);
                return Ok(hit);
            }
            cache.misses += 1;
        }
        // Miss: single-key LSM probe (multi-level).
        self.lsm.get(&Self::edge_key(src, etype, dst))
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        let group = edge_group(src, etype);
        self.lsm.delete(&Self::edge_key(src, etype, dst))?;
        let mut cache = self.cache.lock();
        if let Some(adj) = cache.groups.get_mut(&group) {
            adj.remove(&edge_item(dst));
        }
        Ok(())
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        let group = edge_group(src, etype);
        {
            let mut cache = self.cache.lock();
            let hit: Option<Vec<(VertexId, Vec<u8>)>> = cache.groups.get(&group).map(|adj| {
                adj.iter()
                    .take(limit)
                    .filter_map(|(item, props)| decode_dst(item).map(|d| (d, props.clone())))
                    .collect()
            });
            if let Some(out) = hit {
                cache.hits += 1;
                cache.touch(&group);
                return Ok(out);
            }
            cache.misses += 1;
        }
        // Miss: LSM range scan, then install in the cache.
        let adj = self.load_group(&group)?;
        let out = adj
            .iter()
            .take(limit)
            .filter_map(|(item, props)| decode_dst(item).map(|d| (d, props.clone())))
            .collect();
        let mut cache = self.cache.lock();
        cache.evict_if_full();
        cache.touch(&group);
        cache.groups.insert(group, adj);
        Ok(out)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        let mut key = b"V:".to_vec();
        key.extend_from_slice(&vertex_key(vertex.id));
        self.lsm.put(&key, &vertex.props)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        let mut key = b"V:".to_vec();
        key.extend_from_slice(&vertex_key(id));
        self.lsm.get(&key)
    }
}

impl std::fmt::Debug for ByteGraphDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteGraphDb")
            .field("lsm", &self.lsm)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> ByteGraphDb {
        ByteGraphDb::new(ByteGraphConfig {
            lsm: LsmConfig::tiny(),
            ..ByteGraphConfig::default()
        })
    }

    #[test]
    fn edge_round_trip_through_lsm() {
        let db = db();
        let e = Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(2)).with_props(b"p".to_vec());
        db.insert_edge(&e).unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap(),
            Some(b"p".to_vec())
        );
        db.delete_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
            .unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap(),
            None
        );
    }

    #[test]
    fn neighbors_from_cold_and_warm_paths_agree() {
        let db = db();
        for dst in [4u64, 2, 8, 6] {
            db.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        let cold = db
            .neighbors(VertexId(1), EdgeType::FOLLOW, usize::MAX)
            .unwrap();
        let warm = db
            .neighbors(VertexId(1), EdgeType::FOLLOW, usize::MAX)
            .unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            cold.iter().map(|(v, _)| v.0).collect::<Vec<_>>(),
            vec![2, 4, 6, 8]
        );
        let (hits, misses) = db.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn cache_sees_inserts_after_load() {
        let db = db();
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(2)))
            .unwrap();
        db.neighbors(VertexId(1), EdgeType::FOLLOW, usize::MAX)
            .unwrap(); // warm
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(3)))
            .unwrap();
        let n = db
            .neighbors(VertexId(1), EdgeType::FOLLOW, usize::MAX)
            .unwrap();
        assert_eq!(n.len(), 2, "write-through into the warm cache");
    }

    #[test]
    fn cache_capacity_evicts_lru() {
        let db = ByteGraphDb::new(ByteGraphConfig {
            lsm: LsmConfig::tiny(),
            cache_capacity_groups: 2,
            ..ByteGraphConfig::default()
        });
        for src in 1..=4u64 {
            db.insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(9)))
                .unwrap();
            db.neighbors(VertexId(src), EdgeType::FOLLOW, 10).unwrap();
        }
        let cache = db.cache.lock();
        assert!(cache.groups.len() <= 2);
    }

    #[test]
    fn uncached_reads_probe_storage() {
        let db = ByteGraphDb::new(ByteGraphConfig {
            lsm: LsmConfig::tiny(),
            cache_capacity_groups: 1,
            ..ByteGraphConfig::default()
        });
        // Enough writes to force memtable flushes so reads hit SSTables.
        for src in 0..200u64 {
            db.insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(1)))
                .unwrap();
        }
        db.lsm().flush().unwrap();
        let before = db.lsm().stats().sst_probes;
        for src in 0..50u64 {
            db.get_edge(VertexId(src), EdgeType::FOLLOW, VertexId(1))
                .unwrap();
        }
        assert!(
            db.lsm().stats().sst_probes > before,
            "cold gets reach the LSM read path"
        );
    }

    #[test]
    fn vertices_round_trip() {
        let db = db();
        db.insert_vertex(&Vertex {
            id: VertexId(77),
            props: b"x".to_vec(),
        })
        .unwrap();
        assert_eq!(db.get_vertex(VertexId(77)).unwrap(), Some(b"x".to_vec()));
        assert_eq!(db.get_vertex(VertexId(78)).unwrap(), None);
    }
}
