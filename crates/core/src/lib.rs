//! # bg3-core
//!
//! The public face of the BG3 reproduction: three complete graph-database
//! engines behind one [`bg3_graph::GraphStore`] interface, plus the
//! deployment machinery the paper's evaluation exercises.
//!
//! * [`Bg3Db`] — the paper's system (§3): a space-optimized Bw-tree forest
//!   over append-only shared cloud storage, with read-optimized single-delta
//!   pages and workload-aware space reclamation.
//! * [`ByteGraphDb`] — the previous generation (§2): a B-tree-style
//!   in-memory adjacency cache layered over a leveled LSM KV engine. The
//!   elongated read path (cache → LSM levels → storage) is the paper's
//!   first motivation.
//! * [`NeptuneLike`] — a conventional-design comparator standing in for
//!   Amazon Neptune (closed source; see DESIGN.md): one global index with
//!   coarse locking and write-through pages, no graph-native adjacency
//!   optimization.
//! * [`Cluster`] — hash-sharded scale-out wrapper: the multi-node axis of
//!   Fig. 8.
//! * [`ReplicatedBg3`] — one RW node plus N RO nodes over one shared store,
//!   synchronized through the WAL: the deployment of Figs. 12–14.
//! * [`FailoverCluster`] — the availability story on top of that topology:
//!   heartbeat-driven leader-death detection, epoch-fenced promotion of the
//!   most caught-up follower, stale-flagged reads through the outage.
//! * [`GovernedEngine`] — the overload story: per-class token-bucket
//!   admission control with bounded queues and typed load shedding, plus
//!   the graceful-degradation ladder (stale replica reads, debt-throttled
//!   writes, hop-ceiling traversals). See [`admit`].

pub mod admit;
pub mod bg3db;
pub mod bytegraph;
pub mod cluster;
pub mod deployment;
pub mod engine;
pub mod neptune;

pub use admit::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, Admitted, ClassBudget, GovernedConfig,
    GovernedEngine, OpClass, OpOutcome, Served,
};
pub use bg3db::{Bg3Config, Bg3Db, DurabilityConfig, GcPolicyKind};
pub use bytegraph::{ByteGraphConfig, ByteGraphDb};
pub use cluster::{Cluster, FailoverCluster, FailoverConfig, FailoverStatsSnapshot, FailoverTick};
pub use deployment::{ReplicatedBg3, ReplicatedConfig};
pub use engine::{EngineRuntime, GraphEngine, MaintenanceReport};
pub use neptune::NeptuneLike;

/// One-line import for code that drives engines: the unified engine API,
/// the three engines with their configs, the graph data model, and the
/// shared-store types experiments touch (config, faults, crash points).
pub mod prelude {
    pub use crate::engine::{EngineRuntime, GraphEngine, MaintenanceReport};
    pub use crate::{
        AdmissionConfig, AdmissionSnapshot, Bg3Config, Bg3Db, ByteGraphConfig, ByteGraphDb,
        ClassBudget, DurabilityConfig, FailoverCluster, FailoverConfig, FailoverStatsSnapshot,
        FailoverTick, GcPolicyKind, GovernedConfig, GovernedEngine, NeptuneLike, OpClass,
        OpOutcome, Served,
    };
    pub use bg3_graph::{Edge, EdgeType, GraphStore, Vertex, VertexId};
    pub use bg3_storage::{
        obs, AppendOnlyStore, BackendKind, CacheConfig, CacheStatsSnapshot, CrashPoint,
        ExtentBackend, FaultKind, FaultOp, FaultPlan, FaultRule, IoStatsSnapshot, MetricsSnapshot,
        ReadOpts, RetryPolicy, StorageError, StorageResult, StoreBuilder, StoreConfig, TraceBuffer,
        TraceEvent, TraceKind,
    };
}
