//! A conventional-design comparator standing in for Amazon Neptune.
//!
//! Neptune is closed source, so — as documented in DESIGN.md — we simulate
//! the *class* of design the paper contrasts with: a general-purpose store
//! without graph-native adjacency indexing, using one global index under a
//! coarse lock, and write-through page I/O (every mutation rewrites its
//! whole page to storage; every cold read fetches pages). The point is not
//! to model Neptune's internals but to provide a baseline whose costs scale
//! the way Fig. 8 shows: poorly with concurrency and very poorly with
//! multi-hop fan-out.

use bg3_graph::{edge_group, edge_item, vertex_key, Edge, EdgeType, GraphStore, Vertex, VertexId};
use bg3_storage::{AppendOnlyStore, PageAddr, StorageResult, StoreBuilder, StoreConfig, StreamId};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Entries per write-through page.
const PAGE_ENTRIES: usize = 64;

struct NeptuneInner {
    /// One global sorted index: `group ++ item` → props.
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Address of the write-through page covering each page of the
    /// clustered index. Keys sort by `(src, etype, dst)`, so a page holds a
    /// contiguous slice of one key-prefix group — modelled as
    /// `(10-byte group prefix, page-seq within the group)`. Tracks garbage
    /// for honesty of I/O accounting.
    pages: BTreeMap<(Vec<u8>, usize), PageAddr>,
}

/// The clustered-index page prefix: the first 10 bytes of a key
/// (`src ++ etype` for edges, `V:` + id for vertices).
fn page_prefix(key: &[u8]) -> Vec<u8> {
    key[..key.len().min(10)].to_vec()
}

/// The Neptune-like comparator engine (single node).
pub struct NeptuneLike {
    store: AppendOnlyStore,
    inner: Mutex<NeptuneInner>,
}

impl NeptuneLike {
    /// Opens the comparator over a fresh store.
    pub fn new(store_config: StoreConfig) -> Self {
        Self::with_store(StoreBuilder::from_config(store_config).build())
    }

    /// Opens the comparator over an existing store.
    pub fn with_store(store: AppendOnlyStore) -> Self {
        NeptuneLike {
            store,
            inner: Mutex::new(NeptuneInner {
                index: BTreeMap::new(),
                pages: BTreeMap::new(),
            }),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    fn full_key(src: VertexId, etype: EdgeType, dst: VertexId) -> Vec<u8> {
        let mut key = edge_group(src, etype);
        key.extend_from_slice(&edge_item(dst));
        key
    }

    /// Write-through: rewrite the clustered-index page that contains `key`.
    /// No delta buffering — the conventional cost BG3 avoids.
    fn write_through(&self, inner: &mut NeptuneInner, key: &[u8]) -> StorageResult<()> {
        let prefix = page_prefix(key);
        let (seq, _) = Self::locate(inner, key);
        // Serialize the page's entries as its image.
        let image: Vec<u8> = inner
            .index
            .range::<[u8], _>((
                std::ops::Bound::Included(prefix.as_slice()),
                std::ops::Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.starts_with(&prefix))
            .skip(seq * PAGE_ENTRIES)
            .take(PAGE_ENTRIES)
            .flat_map(|(k, v)| {
                let mut rec = Vec::with_capacity(k.len() + v.len() + 8);
                rec.extend_from_slice(&(k.len() as u32).to_le_bytes());
                rec.extend_from_slice(k);
                rec.extend_from_slice(&(v.len() as u32).to_le_bytes());
                rec.extend_from_slice(v);
                rec
            })
            .collect();
        let addr = self
            .store
            .append(StreamId::BASE, &image, seq as u64, None)?;
        if let Some(old) = inner.pages.insert((prefix, seq), addr) {
            // Old page version becomes garbage.
            let _ = self.store.invalidate(old);
        }
        Ok(())
    }

    /// Read path: fetch pages `seq_range` of `prefix`'s group from storage.
    fn read_pages(&self, inner: &NeptuneInner, prefix: &[u8], seqs: impl Iterator<Item = usize>) {
        for seq in seqs {
            if let Some(addr) = inner.pages.get(&(prefix.to_vec(), seq)) {
                // Charge the random read; content is authoritative in memory.
                let _ = self.store.read(*addr);
            }
        }
    }

    /// `(page-seq within the group, rank within the group)` of `key`.
    fn locate(inner: &NeptuneInner, key: &[u8]) -> (usize, usize) {
        let prefix = page_prefix(key);
        let rank = inner
            .index
            .range::<[u8], _>((
                std::ops::Bound::Included(prefix.as_slice()),
                std::ops::Bound::Excluded(key),
            ))
            .count();
        (rank / PAGE_ENTRIES, rank)
    }
}

impl GraphStore for NeptuneLike {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        let key = Self::full_key(edge.src, edge.etype, edge.dst);
        let mut inner = self.inner.lock();
        inner.index.insert(key.clone(), edge.props.clone());
        self.write_through(&mut inner, &key)
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        let key = Self::full_key(src, etype, dst);
        let inner = self.inner.lock();
        let (seq, _) = Self::locate(&inner, &key);
        self.read_pages(&inner, &page_prefix(&key), std::iter::once(seq));
        Ok(inner.index.get(&key).cloned())
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        let key = Self::full_key(src, etype, dst);
        let mut inner = self.inner.lock();
        if inner.index.remove(&key).is_some() {
            self.write_through(&mut inner, &key)?;
        }
        Ok(())
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        let group = edge_group(src, etype);
        let inner = self.inner.lock();
        let hits: Vec<(VertexId, Vec<u8>)> = inner
            .index
            .range::<[u8], _>((
                std::ops::Bound::Included(group.as_slice()),
                std::ops::Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.starts_with(&group))
            .take(limit)
            .filter_map(|(k, v)| bg3_graph::decode_dst(&k[group.len()..]).map(|d| (d, v.clone())))
            .collect();
        // Charge page reads proportional to the scan size.
        let pages_touched = hits.len().div_ceil(PAGE_ENTRIES).max(1);
        self.read_pages(&inner, &page_prefix(&group), 0..pages_touched);
        Ok(hits)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        let mut key = b"V:".to_vec();
        key.extend_from_slice(&vertex_key(vertex.id));
        let mut inner = self.inner.lock();
        inner.index.insert(key.clone(), vertex.props.clone());
        self.write_through(&mut inner, &key)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        let mut key = b"V:".to_vec();
        key.extend_from_slice(&vertex_key(id));
        let inner = self.inner.lock();
        let (seq, _) = Self::locate(&inner, &key);
        self.read_pages(&inner, &page_prefix(&key), std::iter::once(seq));
        Ok(inner.index.get(&key).cloned())
    }
}

impl std::fmt::Debug for NeptuneLike {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("NeptuneLike")
            .field("entries", &inner.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> NeptuneLike {
        NeptuneLike::new(StoreConfig::counting())
    }

    #[test]
    fn edge_round_trip() {
        let db = db();
        db.insert_edge(
            &Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(2)).with_props(b"p".to_vec()),
        )
        .unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap(),
            Some(b"p".to_vec())
        );
        db.delete_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
            .unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap(),
            None
        );
    }

    #[test]
    fn neighbors_match_inserted_set() {
        let db = db();
        for dst in [3u64, 1, 2] {
            db.insert_edge(&Edge::new(VertexId(9), EdgeType::LIKE, VertexId(dst)))
                .unwrap();
        }
        db.insert_edge(&Edge::new(VertexId(10), EdgeType::LIKE, VertexId(1)))
            .unwrap();
        let n: Vec<u64> = db
            .neighbors(VertexId(9), EdgeType::LIKE, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(n, vec![1, 2, 3]);
    }

    #[test]
    fn every_write_rewrites_a_page() {
        let db = db();
        for dst in 0..10u64 {
            db.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst)))
                .unwrap();
        }
        let snap = db.store().stats().snapshot();
        assert_eq!(snap.appends, 10, "write-through: one page per write");
        assert!(snap.invalidations >= 9, "old page versions become garbage");
    }

    #[test]
    fn reads_charge_storage_io() {
        let db = db();
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(2)))
            .unwrap();
        let before = db.store().stats().snapshot().random_reads;
        db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(2))
            .unwrap();
        db.neighbors(VertexId(1), EdgeType::LIKE, 10).unwrap();
        assert!(db.store().stats().snapshot().random_reads > before);
    }

    #[test]
    fn vertices_round_trip() {
        let db = db();
        db.insert_vertex(&Vertex {
            id: VertexId(1),
            props: b"v".to_vec(),
        })
        .unwrap();
        assert_eq!(db.get_vertex(VertexId(1)).unwrap(), Some(b"v".to_vec()));
    }
}
