//! A replicated BG3 deployment: one RW node + N RO nodes on shared storage.
//!
//! This is the topology of the synchronization experiments (§4.5): graph
//! writes land on the leader, followers tail the WAL and serve strongly
//! consistent reads. Graph keys are flattened into the replicated tree as
//! `composite(group, item)` — the same encoding the forest's INIT tree
//! uses — so followers can serve adjacency scans with prefix ranges.

use bg3_forest::keys::{composite_key, decode_composite, group_prefix};
use bg3_graph::{decode_dst, edge_group, edge_item, vertex_key, Edge, EdgeType, Vertex, VertexId};
use bg3_storage::{AppendOnlyStore, StorageResult, StoreBuilder, StoreConfig};
use bg3_sync::{RoNode, RoNodeConfig, RwNode, RwNodeConfig};
use std::sync::Arc;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct ReplicatedConfig {
    /// Shared-store parameters (use a latency model for timing studies).
    pub store: StoreConfig,
    /// Number of read-only follower nodes.
    pub ro_nodes: usize,
    /// Leader parameters.
    pub rw: RwNodeConfig,
    /// Follower parameters.
    pub ro: RoNodeConfig,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            store: StoreConfig::counting(),
            ro_nodes: 1,
            rw: RwNodeConfig::default(),
            ro: RoNodeConfig::default(),
        }
    }
}

/// One RW node and N RO nodes sharing a store.
pub struct ReplicatedBg3 {
    store: AppendOnlyStore,
    rw: RwNode,
    ros: Vec<Arc<RoNode>>,
    tree_id: u64,
}

impl ReplicatedBg3 {
    /// Builds the deployment.
    pub fn new(config: ReplicatedConfig) -> Self {
        let store = StoreBuilder::from_config(config.store.clone()).build();
        let rw = RwNode::new(store.clone(), config.rw.clone());
        let ros = (0..config.ro_nodes)
            .map(|_| {
                Arc::new(RoNode::new(
                    store.clone(),
                    rw.mapping().clone(),
                    rw.open_wal_reader(),
                    config.ro.clone(),
                ))
            })
            .collect();
        ReplicatedBg3 {
            store,
            rw,
            ros,
            tree_id: config.rw.tree_id as u64,
        }
    }

    /// The shared store (clock, I/O counters).
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// Merged metrics of the data plane (store) and the metadata plane (the
    /// leader's mapping table).
    pub fn metrics_snapshot(&self) -> bg3_storage::MetricsSnapshot {
        let mut merged = self.store.metrics_snapshot();
        merged.merge(&self.rw.mapping().stats().metrics());
        merged
    }

    /// The leader.
    pub fn rw(&self) -> &RwNode {
        &self.rw
    }

    /// Follower `idx`.
    pub fn ro(&self, idx: usize) -> &Arc<RoNode> {
        &self.ros[idx]
    }

    /// Number of followers.
    pub fn ro_count(&self) -> usize {
        self.ros.len()
    }

    /// Inserts an edge on the leader.
    pub fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        let key = composite_key(&edge_group(edge.src, edge.etype), &edge_item(edge.dst));
        self.rw.put(&key, &edge.props)
    }

    /// Deletes an edge on the leader (TTL-churn expiry).
    pub fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        let key = composite_key(&edge_group(src, etype), &edge_item(dst));
        self.rw.delete(&key)
    }

    /// Inserts a vertex on the leader. Vertex keys use an 8-byte group
    /// with an empty item, so they can never collide with edge keys
    /// (10-byte groups) under the length-prefixed composite encoding.
    pub fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        let key = composite_key(&vertex_key(vertex.id), &[]);
        self.rw.put(&key, &vertex.props)
    }

    /// Fetches a vertex's properties from follower `idx`.
    pub fn ro_get_vertex(&self, idx: usize, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        let key = composite_key(&vertex_key(id), &[]);
        self.ros[idx].get(self.tree_id, &key)
    }

    /// Fetches one edge's properties from follower `idx`.
    pub fn ro_get_edge(
        &self,
        idx: usize,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        let key = composite_key(&edge_group(src, etype), &edge_item(dst));
        self.ros[idx].get(self.tree_id, &key)
    }

    /// Dirty (not yet group-committed) pages on the leader — the WAL
    /// group-commit depth the write-admission throttle keys off.
    pub fn rw_dirty_pages(&self) -> usize {
        self.rw.tree().dirty_count()
    }

    /// Verifies an edge on follower `idx` (the risk-control reconciliation
    /// read).
    pub fn ro_check_edge(
        &self,
        idx: usize,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<bool> {
        let key = composite_key(&edge_group(src, etype), &edge_item(dst));
        Ok(self.ros[idx].get(self.tree_id, &key)?.is_some())
    }

    /// One-hop neighbors served by follower `idx`.
    pub fn ro_neighbors(
        &self,
        idx: usize,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<VertexId>> {
        Ok(self
            .ro_neighbors_props(idx, src, etype, limit)?
            .into_iter()
            .map(|(dst, _)| dst)
            .collect())
    }

    /// One-hop neighbors with edge properties, served by follower `idx` —
    /// the adjacency read behind the governed engine's traversal view.
    pub fn ro_neighbors_props(
        &self,
        idx: usize,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        let prefix = group_prefix(&edge_group(src, etype));
        let mut end = prefix.clone();
        // Prefix successor (group keys are never all-0xFF).
        for i in (0..end.len()).rev() {
            if end[i] != 0xFF {
                end[i] += 1;
                end.truncate(i + 1);
                break;
            }
        }
        let hits = self.ros[idx].scan_range(self.tree_id, Some(&prefix), Some(&end), limit)?;
        Ok(hits
            .into_iter()
            .filter_map(|(k, v)| {
                decode_composite(&k)
                    .and_then(|(_, item)| decode_dst(item))
                    .map(|dst| (dst, v))
            })
            .collect())
    }

    /// Lets every follower consume new WAL records. Returns total records
    /// consumed.
    pub fn poll_all(&self) -> StorageResult<usize> {
        let mut total = 0;
        for ro in &self.ros {
            total += ro.poll()?;
        }
        Ok(total)
    }

    /// Forces a leader checkpoint (group commit + mapping publish).
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.rw.checkpoint()?;
        Ok(())
    }

    /// Recall on follower `idx` for a set of edges the leader wrote: the
    /// Fig. 12 metric. BG3's WAL-through-storage design keeps this at 1.0.
    pub fn recall(
        &self,
        idx: usize,
        edges: &[(VertexId, EdgeType, VertexId)],
    ) -> StorageResult<f64> {
        if edges.is_empty() {
            return Ok(1.0);
        }
        let mut hit = 0usize;
        for &(src, etype, dst) in edges {
            if self.ro_check_edge(idx, src, etype, dst)? {
                hit += 1;
            }
        }
        Ok(hit as f64 / edges.len() as f64)
    }
}

impl std::fmt::Debug for ReplicatedBg3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedBg3")
            .field("ro_nodes", &self.ros.len())
            .field("rw", &self.rw)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u64) -> Vec<(VertexId, EdgeType, VertexId)> {
        (0..n)
            .map(|i| (VertexId(i % 50), EdgeType::TRANSFER, VertexId(1000 + i)))
            .collect()
    }

    #[test]
    fn followers_see_every_leader_write() {
        let dep = ReplicatedBg3::new(ReplicatedConfig {
            ro_nodes: 3,
            ..ReplicatedConfig::default()
        });
        let written = edges(200);
        for &(s, t, d) in &written {
            dep.insert_edge(&Edge::new(s, t, d)).unwrap();
        }
        dep.poll_all().unwrap();
        for idx in 0..3 {
            assert_eq!(dep.recall(idx, &written).unwrap(), 1.0, "RO {idx}");
        }
    }

    #[test]
    fn recall_is_perfect_even_across_checkpoints() {
        let dep = ReplicatedBg3::new(ReplicatedConfig::default());
        let written = edges(100);
        for (i, &(s, t, d)) in written.iter().enumerate() {
            dep.insert_edge(&Edge::new(s, t, d)).unwrap();
            if i % 25 == 24 {
                dep.checkpoint().unwrap();
            }
        }
        dep.poll_all().unwrap();
        assert_eq!(dep.recall(0, &written).unwrap(), 1.0);
    }

    #[test]
    fn ro_neighbors_scan_adjacency() {
        let dep = ReplicatedBg3::new(ReplicatedConfig::default());
        for dst in [5u64, 2, 9] {
            dep.insert_edge(&Edge::new(VertexId(7), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        dep.insert_edge(&Edge::new(VertexId(8), EdgeType::FOLLOW, VertexId(1)))
            .unwrap();
        dep.poll_all().unwrap();
        let n = dep
            .ro_neighbors(0, VertexId(7), EdgeType::FOLLOW, usize::MAX)
            .unwrap();
        assert_eq!(n, vec![VertexId(2), VertexId(5), VertexId(9)]);
    }

    #[test]
    fn sync_latency_visible_on_simulated_clock() {
        let dep = ReplicatedBg3::new(ReplicatedConfig {
            store: StoreConfig::default(), // cloud latency model
            ..ReplicatedConfig::default()
        });
        for &(s, t, d) in &edges(10) {
            dep.insert_edge(&Edge::new(s, t, d)).unwrap();
        }
        dep.poll_all().unwrap();
        let lat = dep.ro(0).sync_latency();
        assert!(lat.count() >= 10);
        assert!(lat.mean_nanos() > 0);
    }
}
