//! The BG3 engine: Bw-tree forest over append-only shared storage.

use bg3_bwtree::{BwTree, BwTreeConfig, FlushMode, PageTag, TreeEventListener};
use bg3_forest::{BwTreeForest, ForestConfig, INIT_TREE_ID};
use bg3_gc::{
    DirtyRatioPolicy, FifoPolicy, ScrubConfig, ScrubReport, Scrubber, SpaceReclaimer,
    WorkloadAwarePolicy,
};
use bg3_graph::{
    decode_dst, edge_group, edge_item, vertex_key, Edge, EdgeType, GraphStore, Vertex, VertexId,
};
use bg3_storage::{
    AppendOnlyStore, CrashPoint, CrashSwitch, PageAddr, RepairSupply, SharedMappingTable,
    StorageResult, StoreBuilder, StoreConfig,
};
use bg3_sync::{recover_tree, WalListener};
use bg3_wal::{Lsn, WalPayload, WalWriter};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which space-reclamation policy the engine's background GC runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcPolicyKind {
    /// Traditional FIFO queue reclamation.
    Fifo,
    /// ArkDB-style highest-fragmentation-first (the Table 2 baseline).
    DirtyRatio,
    /// BG3's gradient + TTL policy (Algorithm 2).
    #[default]
    WorkloadAware,
}

/// Durable-mode knobs (WAL + group commit + crash recovery).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Group commit: checkpoint once this many pages are dirty across all
    /// trees (the paper's "accumulated dirty pages reach a specific
    /// threshold").
    pub group_commit_pages: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit_pages: 16,
        }
    }
}

/// Engine configuration.
#[derive(Clone)]
pub struct Bg3Config {
    /// Shared-store parameters.
    pub store: StoreConfig,
    /// Forest parameters (split-out threshold, per-tree Bw-tree knobs).
    pub forest: ForestConfig,
    /// GC policy for [`Bg3Db::run_gc_cycle`].
    pub gc_policy: GcPolicyKind,
    /// Maintain a reverse-adjacency index (`dst -> src` under
    /// [`EdgeType::reversed`]) so in-edge traversals (`g.V(x).in(...)`)
    /// are as cheap as out-edge ones. Doubles edge write volume.
    pub maintain_reverse_edges: bool,
    /// When set, the engine runs durably: every mutation is WAL-logged
    /// before it is acknowledged, page flushes defer to group commits, and
    /// [`Bg3Db::recover`] can rebuild the engine from the shared store and
    /// mapping table after a crash. `None` (the default) keeps the original
    /// synchronous-flush engine byte-for-byte identical.
    pub durability: Option<DurabilityConfig>,
}

impl Default for Bg3Config {
    fn default() -> Self {
        Bg3Config {
            store: StoreConfig::counting(),
            forest: ForestConfig::default(),
            gc_policy: GcPolicyKind::WorkloadAware,
            maintain_reverse_edges: false,
            durability: None,
        }
    }
}

impl Bg3Config {
    /// Sets the page-cache byte budget on the underlying store; `0`
    /// disables the cache (raw storage reads on every cold lookup).
    pub fn with_cache_capacity(mut self, bytes: usize) -> Self {
        self.store.cache = self.store.cache.with_capacity_bytes(bytes);
        self
    }

    /// Selects the storage backend (simulated in-memory vs. file-backed)
    /// for the underlying append-only store.
    pub fn with_backend(mut self, backend: bg3_storage::BackendKind) -> Self {
        self.store.backend = backend;
        self
    }

    /// Applies a TTL (simulated nanoseconds) to all edge data, as the
    /// Financial Risk Control workload requires.
    pub fn with_ttl_nanos(mut self, ttl: Option<u64>) -> Self {
        self.forest.tree_config = self.forest.tree_config.clone().with_ttl_nanos(ttl);
        self
    }

    /// Enables durable mode with default group-commit settings.
    pub fn with_durability(mut self) -> Self {
        self.durability = Some(DurabilityConfig::default());
        self
    }

    /// Enables durable mode with an explicit group-commit threshold.
    pub fn with_group_commit_pages(mut self, pages: usize) -> Self {
        self.durability = Some(DurabilityConfig {
            group_commit_pages: pages,
        });
        self
    }

    /// The per-tree config durable trees run with: the caller's knobs plus
    /// deferred flushing (the WAL carries durability).
    fn durable_tree_config(&self) -> BwTreeConfig {
        self.forest
            .tree_config
            .clone()
            .with_flush_mode(FlushMode::Deferred)
    }
}

/// Reserved tree id for the vertex table.
const VERTEX_TREE_ID: u32 = u32::MAX;

/// Mapping updates flushed but not yet published, shared with the GC router
/// so relocation can patch addresses that are still awaiting publication.
type PendingPublish = Arc<Mutex<Vec<(u64, Option<PageAddr>)>>>;

/// The BG3 graph database engine (single node).
pub struct Bg3Db {
    store: AppendOnlyStore,
    forest: Arc<BwTreeForest>,
    vertices: Arc<BwTree>,
    config: Bg3Config,
    /// Durable-mode handles; `None` when running without durability.
    wal: Option<Arc<WalWriter>>,
    mapping: Option<SharedMappingTable>,
    /// Flushed-but-unpublished mapping updates, carried over when a publish
    /// is dropped by an injected metadata fault (or a crash interrupts a
    /// checkpoint): pages leave the dirty set on flush, so these addresses
    /// must reach the mapping before a `CheckpointComplete` may cover them.
    pending_publish: PendingPublish,
    /// Crash switch shared with the forest and every tree; arming it kills
    /// the engine at the corresponding named crash point.
    crash: CrashSwitch,
    /// Round-robin scrub position, shared across [`Bg3Db::run_scrub_cycle`]
    /// calls so successive cycles rotate through the sealed extents.
    scrub_cursor: bg3_gc::ScrubCursor,
}

impl Bg3Db {
    /// Opens an engine over a fresh store.
    pub fn new(config: Bg3Config) -> Self {
        let store = StoreBuilder::from_config(config.store.clone()).build();
        Self::with_store(store, config)
    }

    /// Opens an engine over an existing (possibly shared) store.
    pub fn with_store(store: AppendOnlyStore, config: Bg3Config) -> Self {
        if config.durability.is_none() {
            let forest = Arc::new(BwTreeForest::new(store.clone(), config.forest.clone()));
            let crash = forest.crash_switch().clone();
            let vertices = Arc::new(BwTree::new(
                VERTEX_TREE_ID,
                store.clone(),
                BwTreeConfig::default(),
            ));
            return Bg3Db {
                store,
                forest,
                vertices,
                config,
                wal: None,
                mapping: None,
                pending_publish: Arc::new(Mutex::new(Vec::new())),
                crash,
                scrub_cursor: bg3_gc::ScrubCursor::default(),
            };
        }
        let wal =
            Arc::new(WalWriter::new(store.clone()).with_retry(config.forest.tree_config.retry));
        let listener: Arc<dyn TreeEventListener> = WalListener::new(Arc::clone(&wal));
        let mut forest_config = config.forest.clone();
        forest_config.tree_config = config.durable_tree_config();
        let forest = Arc::new(BwTreeForest::with_listener(
            store.clone(),
            forest_config,
            Arc::clone(&listener),
        ));
        let crash = forest.crash_switch().clone();
        let mut vertices = BwTree::with_listener(
            VERTEX_TREE_ID,
            store.clone(),
            BwTreeConfig::default()
                .with_flush_mode(FlushMode::Deferred)
                .with_retry(config.forest.tree_config.retry),
            listener,
        );
        vertices.set_crash_switch(crash.clone());
        let mapping = SharedMappingTable::for_store(&store);
        Bg3Db {
            store,
            forest,
            vertices: Arc::new(vertices),
            config,
            wal: Some(wal),
            mapping: Some(mapping),
            pending_publish: Arc::new(Mutex::new(Vec::new())),
            crash,
            scrub_cursor: bg3_gc::ScrubCursor::default(),
        }
    }

    /// Rebuilds a durable engine after a crash, from the two pieces of
    /// state that survive an RW node's death: the shared store (pages +
    /// WAL) and the shared mapping table (the metadata service).
    ///
    /// The WAL stream is rescanned from storage; `ForestSplitOut` commit
    /// records rebuild the forest directory (a split-out that crashed
    /// before its commit record leaves the INIT tree authoritative and its
    /// half-built tree an ignored orphan); each surviving tree is then
    /// recovered via `bg3-sync` from its mapped page images plus WAL
    /// replay past the last `CheckpointComplete` horizon.
    pub fn recover(
        store: AppendOnlyStore,
        mapping: SharedMappingTable,
        mut config: Bg3Config,
    ) -> StorageResult<Self> {
        config.durability = Some(config.durability.unwrap_or_default());
        let (wal, records) = WalWriter::recover(store.clone())?;
        let wal = Arc::new(wal.with_retry(config.forest.tree_config.retry));
        let listener: Arc<dyn TreeEventListener> = WalListener::new(Arc::clone(&wal));
        let tree_config = config.durable_tree_config();

        // Committed split-outs only; BTreeMap for deterministic recovery
        // order (reads charge I/O and advance the simulated clock).
        let mut directory_ids: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
        for record in &records {
            if let WalPayload::ForestSplitOut { group } = &record.payload {
                directory_ids.insert(group.clone(), record.tree as u32);
            }
        }
        let init = recover_tree(
            INIT_TREE_ID,
            store.clone(),
            &mapping,
            &records,
            tree_config.clone(),
            Arc::clone(&listener),
        )?;
        let mut directory = Vec::with_capacity(directory_ids.len());
        for (group, id) in directory_ids {
            let tree = recover_tree(
                id,
                store.clone(),
                &mapping,
                &records,
                tree_config.clone(),
                Arc::clone(&listener),
            )?;
            directory.push((group, tree));
        }
        // Never reuse a forest tree id — orphans from crashed split-outs
        // still own WAL records under theirs.
        let next_tree_id = records
            .iter()
            .map(|r| r.tree)
            .filter(|&t| t < VERTEX_TREE_ID as u64)
            .max()
            .unwrap_or(INIT_TREE_ID as u64) as u32
            + 1;
        let forest = Arc::new(BwTreeForest::assemble(
            store.clone(),
            {
                let mut fc = config.forest.clone();
                fc.tree_config = tree_config.clone();
                fc
            },
            Some(Arc::clone(&listener)),
            init,
            directory,
            next_tree_id,
        ));
        let mut vertices = recover_tree(
            VERTEX_TREE_ID,
            store.clone(),
            &mapping,
            &records,
            BwTreeConfig::default()
                .with_flush_mode(FlushMode::Deferred)
                .with_retry(config.forest.tree_config.retry),
            listener,
        )?;
        let crash = forest.crash_switch().clone();
        vertices.set_crash_switch(crash.clone());
        Ok(Bg3Db {
            store,
            forest,
            vertices: Arc::new(vertices),
            config,
            wal: Some(wal),
            mapping: Some(mapping),
            pending_publish: Arc::new(Mutex::new(Vec::new())),
            crash,
            scrub_cursor: bg3_gc::ScrubCursor::default(),
        })
    }

    /// The shared store (I/O counters, clock).
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// The Bw-tree forest (structure inspection).
    pub fn forest(&self) -> &Arc<BwTreeForest> {
        &self.forest
    }

    /// The shared mapping table (durable mode only) — the handle a crash
    /// harness carries across restarts.
    pub fn mapping(&self) -> Option<&SharedMappingTable> {
        self.mapping.as_ref()
    }

    /// Last WAL LSN written (durable mode; [`Lsn::ZERO`] otherwise).
    pub fn last_lsn(&self) -> Lsn {
        self.wal.as_ref().map(|w| w.last_lsn()).unwrap_or(Lsn::ZERO)
    }

    /// The crash switch shared by the engine, its forest, and every tree.
    pub fn crash_switch(&self) -> &CrashSwitch {
        &self.crash
    }

    /// Flushes every dirty page across the forest and vertex trees,
    /// publishes the new addresses to the shared mapping table, and logs a
    /// `CheckpointComplete` horizon per affected tree. Durable mode only
    /// (a no-op returning [`Lsn::ZERO`] otherwise).
    pub fn checkpoint(&self) -> StorageResult<Lsn> {
        let (Some(wal), Some(mapping)) = (&self.wal, &self.mapping) else {
            return Ok(Lsn::ZERO);
        };
        let upto = wal.last_lsn();
        // Flushed pages leave the dirty set immediately, so their addresses
        // must survive any interruption from here on — stash them back into
        // `pending_publish` on every early exit.
        let mut updates = std::mem::take(&mut *self.pending_publish.lock());
        let mut flushed_trees = Vec::new();
        let mut trees = self.forest.all_trees();
        trees.push(Arc::clone(&self.vertices));
        for tree in trees {
            let flushed = match tree.flush_dirty() {
                Ok(flushed) => flushed,
                Err(err) => {
                    *self.pending_publish.lock() = updates;
                    return Err(err);
                }
            };
            if flushed.is_empty() {
                continue;
            }
            updates.extend(flushed.iter().map(|f| {
                (
                    PageTag {
                        tree: tree.id(),
                        page: f.page,
                    }
                    .encode(),
                    Some(f.addr),
                )
            }));
            flushed_trees.push(tree.id());
        }
        // Chaos hook: die after the flushes but before the publish — new
        // page images are durable yet unreachable, and no horizon advanced,
        // so recovery replays the WAL past the previous checkpoint.
        if let Err(crash) = self.crash.fire(CrashPoint::MidGroupCommit) {
            *self.pending_publish.lock() = updates;
            return Err(crash);
        }
        let mut version = mapping.snapshot().version();
        if !updates.is_empty() {
            let after = mapping.publish(updates.clone());
            if after == version {
                // The publish was dropped (injected metadata fault). Do NOT
                // log a checkpoint: a horizon the mapping does not cover
                // would lose these pages on recovery. Retry next time.
                *self.pending_publish.lock() = updates;
                return Ok(upto);
            }
            version = after;
        }
        for id in flushed_trees {
            wal.append(
                id as u64,
                0,
                WalPayload::CheckpointComplete {
                    upto: upto.0,
                    mapping_version: version,
                },
            )?;
        }
        Ok(upto)
    }

    fn maybe_group_commit(&self) -> StorageResult<()> {
        let Some(durability) = &self.config.durability else {
            return Ok(());
        };
        if self.forest.dirty_count() + self.vertices.dirty_count() >= durability.group_commit_pages
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn gc_router(&self) -> impl Fn(u64, bg3_storage::PageAddr, bg3_storage::PageAddr) {
        let forest = Arc::clone(&self.forest);
        let vertices = Arc::clone(&self.vertices);
        let mapping = self.mapping.clone();
        let pending = Arc::clone(&self.pending_publish);
        move |tag: u64, old, new| {
            if !forest.repair_relocated(tag, old, new) {
                let decoded = bg3_bwtree::PageTag::decode(tag);
                if decoded.tree == VERTEX_TREE_ID {
                    vertices.repair_relocated(decoded.page, old, new);
                }
            }
            // Relocation reports `old` with a placeholder record id, so
            // match mapping entries by physical slot, not full address.
            let same_slot = |a: PageAddr| {
                a.stream == old.stream && a.extent == old.extent && a.offset == old.offset
            };
            // Durable mode: the metadata service must follow the move too.
            // The fix-up publishes before the old extent is reclaimed, so a
            // crash anywhere around it leaves the mapping readable — either
            // address is still live when the publish hasn't happened yet.
            if let Some(mapping) = &mapping {
                if mapping.snapshot().get(tag).is_some_and(same_slot) {
                    mapping.publish([(tag, Some(new))]);
                }
            }
            // Flushed-but-unpublished addresses stashed for the next
            // checkpoint go stale the same way.
            for slot in pending.lock().iter_mut() {
                if slot.0 == tag && slot.1.is_some_and(same_slot) {
                    slot.1 = Some(new);
                }
            }
        }
    }

    /// Runs one space-reclamation cycle with the configured policy, routing
    /// relocation fix-ups back into the forest's mapping tables. Returns
    /// the cycle report (moved bytes = write amplification). The engine's
    /// crash switch rides along, so arming [`CrashPoint::MidGcCycle`] kills
    /// the cycle mid-relocation.
    pub fn run_gc_cycle(&self, budget: usize) -> StorageResult<bg3_gc::CycleReport> {
        let router = self.gc_router();
        let crash = self.crash.clone();
        match self.config.gc_policy {
            GcPolicyKind::Fifo => SpaceReclaimer::new(self.store.clone(), FifoPolicy, router)
                .with_crash_switch(crash)
                .run_cycle(budget),
            GcPolicyKind::DirtyRatio => {
                SpaceReclaimer::new(self.store.clone(), DirtyRatioPolicy, router)
                    .with_crash_switch(crash)
                    .run_cycle(budget)
            }
            GcPolicyKind::WorkloadAware => {
                SpaceReclaimer::new(self.store.clone(), WorkloadAwarePolicy::default(), router)
                    .with_crash_switch(crash)
                    .run_cycle(budget)
            }
        }
    }

    /// Reclaims until the page streams' utilization reaches `target` (or no
    /// further progress is possible) — the steady-state background GC loop
    /// a space-constrained deployment runs.
    pub fn reclaim_to_utilization(
        &self,
        target: f64,
        per_cycle: usize,
    ) -> StorageResult<bg3_gc::CycleReport> {
        let router = self.gc_router();
        match self.config.gc_policy {
            GcPolicyKind::Fifo => SpaceReclaimer::new(self.store.clone(), FifoPolicy, router)
                .reclaim_to_utilization(target, per_cycle),
            GcPolicyKind::DirtyRatio => {
                SpaceReclaimer::new(self.store.clone(), DirtyRatioPolicy, router)
                    .reclaim_to_utilization(target, per_cycle)
            }
            GcPolicyKind::WorkloadAware => {
                SpaceReclaimer::new(self.store.clone(), WorkloadAwarePolicy::default(), router)
                    .reclaim_to_utilization(target, per_cycle)
            }
        }
    }

    /// The scrubber's repair source: re-encodes the record a tree still owns
    /// at `old` from its authoritative in-memory page image. Records no
    /// tree references — superseded copies, and orphans left by a crash
    /// between a flush and its mapping publish — are declared droppable:
    /// live reads only follow tree pointers, and recovery rebuilds any page
    /// whose mapped image is gone from its full WAL history.
    fn repair_source(&self) -> impl Fn(u64, PageAddr) -> RepairSupply {
        let forest = Arc::clone(&self.forest);
        let vertices = Arc::clone(&self.vertices);
        move |tag: u64, old: PageAddr| {
            if let Some(bytes) = forest.materialize_record(tag, old) {
                return RepairSupply::Payload(bytes);
            }
            let decoded = PageTag::decode(tag);
            if decoded.tree == VERTEX_TREE_ID {
                if let Some(bytes) = vertices.materialize_record(decoded.page, old) {
                    return RepairSupply::Payload(bytes);
                }
            }
            RepairSupply::Drop
        }
    }

    /// Runs one background-scrub cycle: walks a slice of sealed extents,
    /// verifies every valid record's frame, quarantines extents with rot,
    /// and repairs them by re-materializing records from the in-memory
    /// trees before GC may drop the source extent. Relocation fix-ups route
    /// through the same pointer/mapping repair path as GC.
    pub fn run_scrub_cycle(&self) -> StorageResult<ScrubReport> {
        self.scrubber(ScrubConfig::default()).run_cycle()
    }

    /// Runs scrub cycles paced on virtual time for `duration_nanos`,
    /// absorbing each cycle's report. The steady-state integrity loop a
    /// deployment runs alongside GC.
    pub fn run_scrub_for(
        &self,
        duration_nanos: u64,
        config: ScrubConfig,
    ) -> StorageResult<ScrubReport> {
        self.scrubber(config).run_for(duration_nanos)
    }

    /// Deep-scrubs until a full pass over every extent (open tails
    /// included) finds no corruption and leaves nothing quarantined — the
    /// fsck-style barrier run before handing the store to recovery or a
    /// promoted follower. Gives up after `max_passes` (repairs can keep
    /// failing if appends keep tearing under fault injection).
    pub fn scrub_until_clean(&self, max_passes: usize) -> StorageResult<ScrubReport> {
        let config = ScrubConfig {
            extents_per_cycle: usize::MAX,
            include_open: true,
            ..ScrubConfig::default()
        };
        let mut total = ScrubReport::default();
        for _ in 0..max_passes {
            let pass = self.scrubber(config).run_cycle()?;
            let clean = pass.corrupt_records == 0
                && pass.extents_quarantined == 0
                && pass.extents_unrepaired == 0;
            total.absorb(pass);
            if clean {
                break;
            }
        }
        Ok(total)
    }

    fn scrubber(
        &self,
        config: ScrubConfig,
    ) -> Scrubber<impl Fn(u64, PageAddr) -> RepairSupply, impl Fn(u64, PageAddr, PageAddr)> {
        Scrubber::new(self.store.clone(), self.repair_source(), self.gc_router())
            .with_config(config)
            .with_cursor(Arc::clone(&self.scrub_cursor))
    }
}

impl GraphStore for Bg3Db {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.forest.put(
            &edge_group(edge.src, edge.etype),
            &edge_item(edge.dst),
            &edge.props,
        )?;
        if self.config.maintain_reverse_edges && !edge.etype.is_reverse() {
            self.forest.put(
                &edge_group(edge.dst, edge.etype.reversed()),
                &edge_item(edge.src),
                &[],
            )?;
        }
        self.maybe_group_commit()
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.forest.get(&edge_group(src, etype), &edge_item(dst))
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.forest
            .delete(&edge_group(src, etype), &edge_item(dst))?;
        if self.config.maintain_reverse_edges && !etype.is_reverse() {
            self.forest
                .delete(&edge_group(dst, etype.reversed()), &edge_item(src))?;
        }
        self.maybe_group_commit()
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        // Routed through the batched sweep with a one-element frontier so
        // scalar and batched expansion share one scan path (and one set of
        // scan-cost metrics); a singleton batch still benefits from the
        // packed CSR run lookup on sealed pages.
        let groups = [(0usize, edge_group(src, etype))];
        let mut out = Vec::new();
        let outcome = self
            .forest
            .scan_groups(&groups, limit, &mut |_, item, props| {
                if let Some(dst) = decode_dst(item) {
                    out.push((dst, props.to_vec()));
                }
                true
            });
        self.store
            .stats()
            .record_adjacency_scan(outcome.bytes_scanned, outcome.segments_scanned);
        // Ledger-only dimension: CSR fast-path hits have no global mirror.
        bg3_obs::span::charge(bg3_obs::CostDim::CsrHits, outcome.csr_hits);
        Ok(out)
    }

    fn neighbors_batch(
        &self,
        srcs: &[VertexId],
        etype: EdgeType,
        per_src_limit: usize,
        sink: &mut dyn bg3_graph::NeighborSink,
    ) -> StorageResult<()> {
        let groups: Vec<(usize, Vec<u8>)> = srcs
            .iter()
            .enumerate()
            .map(|(i, &src)| (i, edge_group(src, etype)))
            .collect();
        let outcome =
            self.forest.scan_groups(
                &groups,
                per_src_limit,
                &mut |tag, item, props| match decode_dst(item) {
                    Some(dst) => sink.visit(tag, dst, props),
                    None => true,
                },
            );
        self.store
            .stats()
            .record_adjacency_scan(outcome.bytes_scanned, outcome.segments_scanned);
        bg3_obs::span::charge(bg3_obs::CostDim::CsrHits, outcome.csr_hits);
        Ok(())
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.vertices.put(&vertex_key(vertex.id), &vertex.props)?;
        self.maybe_group_commit()
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.vertices.get(&vertex_key(id))
    }
}

impl std::fmt::Debug for Bg3Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bg3Db")
            .field("forest", &self.forest)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::PropertyValue;

    fn db() -> Bg3Db {
        Bg3Db::new(Bg3Config::default())
    }

    #[test]
    fn neighbors_batch_matches_scalar_and_records_scan_metrics() {
        let mut config = Bg3Config::default();
        config.forest.split_out_threshold = 8;
        let db = Bg3Db::new(config);
        // Vertex 1 is a whale that splits out into a dedicated tree;
        // vertices 2..=5 stay INIT-resident, vertex 6 has no edges.
        for dst in 1..=20u64 {
            db.insert_edge(&Edge::new(
                VertexId(1),
                EdgeType::FOLLOW,
                VertexId(100 + dst),
            ))
            .unwrap();
        }
        for src in 2..=5u64 {
            for dst in 0..4u64 {
                db.insert_edge(&Edge::new(
                    VertexId(src),
                    EdgeType::FOLLOW,
                    VertexId(10 * src + dst),
                ))
                .unwrap();
            }
        }
        struct Collect(Vec<Vec<VertexId>>);
        impl bg3_graph::NeighborSink for Collect {
            fn visit(&mut self, src_idx: usize, dst: VertexId, _props: &[u8]) -> bool {
                self.0[src_idx].push(dst);
                true
            }
        }
        let srcs: Vec<VertexId> = (1..=6u64).map(VertexId).collect();
        let mut sink = Collect(vec![Vec::new(); srcs.len()]);
        db.neighbors_batch(&srcs, EdgeType::FOLLOW, usize::MAX, &mut sink)
            .unwrap();
        for (i, &src) in srcs.iter().enumerate() {
            let want: Vec<VertexId> = db
                .neighbors(src, EdgeType::FOLLOW, usize::MAX)
                .unwrap()
                .into_iter()
                .map(|(d, _)| d)
                .collect();
            assert_eq!(sink.0[i], want, "src {src:?}");
        }
        let metrics = db.store().metrics_snapshot();
        assert!(
            metrics
                .counter(bg3_obs::names::QUERY_SCAN_BYTES_TOTAL)
                .unwrap()
                > 0,
            "batched scan should account scanned bytes"
        );
        assert!(
            metrics
                .counter(bg3_obs::names::QUERY_CSR_SEGMENTS_SCANNED_TOTAL)
                .unwrap()
                > 0,
            "batched scan should count leaf segments"
        );
    }

    #[test]
    fn edge_round_trip() {
        let db = db();
        let e = Edge::new(VertexId(1), EdgeType::LIKE, VertexId(42))
            .with_props(PropertyValue::Int(170).encode());
        db.insert_edge(&e).unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(42))
                .unwrap(),
            Some(PropertyValue::Int(170).encode())
        );
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(42))
                .unwrap(),
            None
        );
        db.delete_edge(VertexId(1), EdgeType::LIKE, VertexId(42))
            .unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(42))
                .unwrap(),
            None
        );
    }

    #[test]
    fn neighbors_sorted_by_dst() {
        let db = db();
        for dst in [9u64, 1, 5, 3] {
            db.insert_edge(&Edge::new(VertexId(7), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        let n: Vec<u64> = db
            .neighbors(VertexId(7), EdgeType::FOLLOW, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(n, vec![1, 3, 5, 9]);
    }

    #[test]
    fn active_vertices_split_out_into_their_own_trees() {
        let mut config = Bg3Config::default();
        config.forest = config.forest.with_split_out_threshold(8);
        let db = Bg3Db::new(config);
        for dst in 0..20u64 {
            db.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst)))
                .unwrap();
        }
        assert!(db.forest().tree_count() > 1, "super-vertex split out");
        assert_eq!(
            db.neighbors(VertexId(1), EdgeType::LIKE, usize::MAX)
                .unwrap()
                .len(),
            20
        );
    }

    #[test]
    fn vertex_table_round_trip() {
        let db = db();
        db.insert_vertex(&Vertex {
            id: VertexId(5),
            props: b"user".to_vec(),
        })
        .unwrap();
        assert_eq!(db.get_vertex(VertexId(5)).unwrap(), Some(b"user".to_vec()));
        assert_eq!(db.get_vertex(VertexId(6)).unwrap(), None);
    }

    #[test]
    fn gc_cycle_runs_and_repairs_pointers() {
        let config = Bg3Config {
            store: StoreConfig::counting().with_extent_capacity(512),
            gc_policy: GcPolicyKind::DirtyRatio,
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        // Overwrite the same edges repeatedly to generate garbage.
        for round in 0..20u64 {
            for dst in 0..10u64 {
                db.insert_edge(
                    &Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst))
                        .with_props(round.to_le_bytes().to_vec()),
                )
                .unwrap();
            }
        }
        let report = db.run_gc_cycle(8).unwrap();
        assert!(
            report.relocated_extents > 0 || report.expired_extents > 0,
            "something was reclaimed: {report:?}"
        );
        // Every edge still readable after relocation.
        for dst in 0..10u64 {
            assert_eq!(
                db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(dst))
                    .unwrap(),
                Some(19u64.to_le_bytes().to_vec()),
                "edge {dst} survived GC"
            );
        }
    }

    #[test]
    fn scrub_repairs_silent_rot_from_in_memory_trees() {
        use bg3_storage::{ExtentState, StreamId, TraceKind};
        let config = Bg3Config {
            store: StoreConfig::counting().with_extent_capacity(512),
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        for round in 0..20u64 {
            for dst in 0..10u64 {
                db.insert_edge(
                    &Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst))
                        .with_props(round.to_le_bytes().to_vec()),
                )
                .unwrap();
            }
        }
        // Flip a bit in a valid record that already lives in a sealed
        // extent — silent rot the read path would only see as a checksum
        // mismatch.
        let sealed: Vec<_> = db
            .store()
            .extent_infos(StreamId::BASE)
            .unwrap()
            .into_iter()
            .filter(|i| i.state == ExtentState::Sealed)
            .map(|i| i.id)
            .collect();
        assert!(!sealed.is_empty(), "workload sealed at least one extent");
        let victim = db
            .store()
            .scan_stream(StreamId::BASE)
            .unwrap()
            .into_iter()
            .map(|(addr, _, _)| addr)
            .find(|addr| sealed.contains(&addr.extent))
            .expect("a valid record in a sealed extent");
        db.store().corrupt_record_bit(victim, 9).unwrap();

        // Scrub until the round-robin cursor reaches the rotted extent.
        let mut report = ScrubReport::default();
        for _ in 0..8 {
            report.absorb(db.run_scrub_cycle().unwrap());
            if report.extents_repaired > 0 {
                break;
            }
        }
        assert_eq!(report.extents_quarantined, 1, "rot was quarantined");
        assert_eq!(report.extents_repaired, 1, "quarantine was repaired");
        assert_eq!(report.extents_unrepaired, 0, "{report:?}");

        // Quarantine precedes repair in the trace, and the engine still
        // serves every edge afterwards.
        let events = db.store().trace().events();
        let seq_of = |kind: TraceKind| {
            events
                .iter()
                .find(|e| e.kind == kind && e.subject == victim.extent.0)
                .map(|e| e.seq)
        };
        let quarantine = seq_of(TraceKind::ExtentQuarantine).expect("quarantine traced");
        let repair = seq_of(TraceKind::ExtentRepair).expect("repair traced");
        assert!(quarantine < repair, "quarantine before repair");
        for dst in 0..10u64 {
            assert_eq!(
                db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(dst))
                    .unwrap(),
                Some(19u64.to_le_bytes().to_vec()),
                "edge {dst} survived scrub repair"
            );
        }
    }

    #[test]
    fn reverse_index_serves_in_edge_queries() {
        let config = Bg3Config {
            maintain_reverse_edges: true,
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        for src in [10u64, 20, 30] {
            db.insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(1)))
                .unwrap();
        }
        let followers: Vec<u64> = db
            .neighbors(VertexId(1), EdgeType::FOLLOW.reversed(), usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(followers, vec![10, 20, 30]);
        db.delete_edge(VertexId(20), EdgeType::FOLLOW, VertexId(1))
            .unwrap();
        assert_eq!(
            db.neighbors(VertexId(1), EdgeType::FOLLOW.reversed(), usize::MAX)
                .unwrap()
                .len(),
            2,
            "reverse index follows deletes"
        );
    }

    #[test]
    fn durable_engine_recovers_graph_after_crash() {
        let config = Bg3Config::default().with_group_commit_pages(4);
        let mut fc = config.forest.clone();
        fc = fc.with_split_out_threshold(8);
        let config = Bg3Config {
            forest: fc,
            ..config
        };
        let db = Bg3Db::new(config.clone());
        let store = db.store().clone();
        let mapping = db.mapping().unwrap().clone();
        // Enough edges on vertex 1 to force a split-out, plus scattered
        // edges and vertices; some writes land after the last checkpoint.
        for dst in 0..20u64 {
            db.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst)))
                .unwrap();
        }
        for src in 2..6u64 {
            db.insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(1)))
                .unwrap();
            db.insert_vertex(&Vertex {
                id: VertexId(src),
                props: src.to_le_bytes().to_vec(),
            })
            .unwrap();
        }
        db.delete_edge(VertexId(1), EdgeType::LIKE, VertexId(7))
            .unwrap();
        assert!(db.forest().tree_count() > 1, "split-out happened");
        drop(db); // crash: only the store and mapping survive

        let recovered = Bg3Db::recover(store, mapping, config).unwrap();
        assert!(recovered.forest().tree_count() > 1, "directory rebuilt");
        for dst in 0..20u64 {
            let expect = dst != 7;
            assert_eq!(
                recovered
                    .get_edge(VertexId(1), EdgeType::LIKE, VertexId(dst))
                    .unwrap()
                    .is_some(),
                expect,
                "edge 1->{dst}"
            );
        }
        assert_eq!(
            recovered
                .neighbors(VertexId(1), EdgeType::LIKE, usize::MAX)
                .unwrap()
                .len(),
            19
        );
        for src in 2..6u64 {
            assert_eq!(
                recovered.get_vertex(VertexId(src)).unwrap(),
                Some(src.to_le_bytes().to_vec())
            );
            assert!(recovered
                .get_edge(VertexId(src), EdgeType::FOLLOW, VertexId(1))
                .unwrap()
                .is_some());
        }
        // The recovered engine keeps working durably.
        recovered
            .insert_edge(&Edge::new(VertexId(9), EdgeType::LIKE, VertexId(1)))
            .unwrap();
        assert!(recovered.last_lsn().0 > 0);
    }

    #[test]
    fn dropped_mapping_publish_never_advances_the_horizon() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // The first mapping publish is silently dropped by the metadata
        // service; the engine must not log a checkpoint horizon for pages
        // the mapping cannot resolve, and must re-publish them later.
        let plan = FaultPlan::seeded(3).with_rule(
            FaultRule::new(FaultOp::MappingPublish, FaultKind::PublishDrop, 1.0).at_most(1),
        );
        let config = Bg3Config {
            store: StoreConfig::counting().with_faults(plan),
            ..Bg3Config::default().with_group_commit_pages(usize::MAX)
        };
        let db = Bg3Db::new(config.clone());
        db.insert_vertex(&Vertex {
            id: VertexId(1),
            props: b"v".to_vec(),
        })
        .unwrap();
        db.checkpoint().unwrap();
        let mapping = db.mapping().unwrap();
        assert!(mapping.snapshot().is_empty(), "publish was dropped");
        // No CheckpointComplete may exist: recovery must replay the WAL.
        let (_, records) = bg3_wal::WalWriter::recover(db.store().clone()).unwrap();
        assert!(records
            .iter()
            .all(|r| !matches!(r.payload, WalPayload::CheckpointComplete { .. })));
        // The stashed batch publishes on the next checkpoint.
        db.checkpoint().unwrap();
        assert!(!mapping.snapshot().is_empty(), "pending batch re-published");
        let recovered = Bg3Db::recover(db.store().clone(), mapping.clone(), config).unwrap();
        assert_eq!(
            recovered.get_vertex(VertexId(1)).unwrap(),
            Some(b"v".to_vec())
        );
    }

    #[test]
    fn ttl_config_reaches_storage() {
        let config = Bg3Config::default().with_ttl_nanos(Some(1_000));
        let db = Bg3Db::new(config);
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::TRANSFER, VertexId(2)))
            .unwrap();
        let infos = db
            .store()
            .extent_infos(bg3_storage::StreamId::BASE)
            .unwrap();
        assert!(infos.iter().any(|i| i.ttl_deadline.is_some()));
    }
}
