//! The BG3 engine: Bw-tree forest over append-only shared storage.

use bg3_bwtree::{BwTree, BwTreeConfig};
use bg3_forest::{BwTreeForest, ForestConfig};
use bg3_gc::{DirtyRatioPolicy, FifoPolicy, SpaceReclaimer, WorkloadAwarePolicy};
use bg3_graph::{
    decode_dst, edge_group, edge_item, vertex_key, Edge, EdgeType, GraphStore, Vertex, VertexId,
};
use bg3_storage::{AppendOnlyStore, StorageResult, StoreConfig};
use std::sync::Arc;

/// Which space-reclamation policy the engine's background GC runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcPolicyKind {
    /// Traditional FIFO queue reclamation.
    Fifo,
    /// ArkDB-style highest-fragmentation-first (the Table 2 baseline).
    DirtyRatio,
    /// BG3's gradient + TTL policy (Algorithm 2).
    #[default]
    WorkloadAware,
}

/// Engine configuration.
#[derive(Clone)]
pub struct Bg3Config {
    /// Shared-store parameters.
    pub store: StoreConfig,
    /// Forest parameters (split-out threshold, per-tree Bw-tree knobs).
    pub forest: ForestConfig,
    /// GC policy for [`Bg3Db::run_gc_cycle`].
    pub gc_policy: GcPolicyKind,
    /// Maintain a reverse-adjacency index (`dst -> src` under
    /// [`EdgeType::reversed`]) so in-edge traversals (`g.V(x).in(...)`)
    /// are as cheap as out-edge ones. Doubles edge write volume.
    pub maintain_reverse_edges: bool,
}

impl Default for Bg3Config {
    fn default() -> Self {
        Bg3Config {
            store: StoreConfig::counting(),
            forest: ForestConfig::default(),
            gc_policy: GcPolicyKind::WorkloadAware,
            maintain_reverse_edges: false,
        }
    }
}

impl Bg3Config {
    /// Applies a TTL (simulated nanoseconds) to all edge data, as the
    /// Financial Risk Control workload requires.
    pub fn with_ttl_nanos(mut self, ttl: Option<u64>) -> Self {
        self.forest.tree_config = self.forest.tree_config.clone().with_ttl_nanos(ttl);
        self
    }
}

/// Reserved tree id for the vertex table.
const VERTEX_TREE_ID: u32 = u32::MAX;

/// The BG3 graph database engine (single node).
pub struct Bg3Db {
    store: AppendOnlyStore,
    forest: Arc<BwTreeForest>,
    vertices: Arc<BwTree>,
    config: Bg3Config,
}

impl Bg3Db {
    /// Opens an engine over a fresh store.
    pub fn new(config: Bg3Config) -> Self {
        let store = AppendOnlyStore::new(config.store.clone());
        Self::with_store(store, config)
    }

    /// Opens an engine over an existing (possibly shared) store.
    pub fn with_store(store: AppendOnlyStore, config: Bg3Config) -> Self {
        let forest = Arc::new(BwTreeForest::new(store.clone(), config.forest.clone()));
        let vertices = Arc::new(BwTree::new(
            VERTEX_TREE_ID,
            store.clone(),
            BwTreeConfig::default(),
        ));
        Bg3Db {
            store,
            forest,
            vertices,
            config,
        }
    }

    /// The shared store (I/O counters, clock).
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// The Bw-tree forest (structure inspection).
    pub fn forest(&self) -> &Arc<BwTreeForest> {
        &self.forest
    }

    fn gc_router(&self) -> impl Fn(u64, bg3_storage::PageAddr, bg3_storage::PageAddr) {
        let forest = Arc::clone(&self.forest);
        let vertices = Arc::clone(&self.vertices);
        move |tag: u64, old, new| {
            if !forest.repair_relocated(tag, old, new) {
                let decoded = bg3_bwtree::PageTag::decode(tag);
                if decoded.tree == VERTEX_TREE_ID {
                    vertices.repair_relocated(decoded.page, old, new);
                }
            }
        }
    }

    /// Runs one space-reclamation cycle with the configured policy, routing
    /// relocation fix-ups back into the forest's mapping tables. Returns
    /// the cycle report (moved bytes = write amplification).
    pub fn run_gc_cycle(&self, budget: usize) -> StorageResult<bg3_gc::CycleReport> {
        let router = self.gc_router();
        match self.config.gc_policy {
            GcPolicyKind::Fifo => {
                SpaceReclaimer::new(self.store.clone(), FifoPolicy, router).run_cycle(budget)
            }
            GcPolicyKind::DirtyRatio => {
                SpaceReclaimer::new(self.store.clone(), DirtyRatioPolicy, router).run_cycle(budget)
            }
            GcPolicyKind::WorkloadAware => {
                SpaceReclaimer::new(self.store.clone(), WorkloadAwarePolicy::default(), router)
                    .run_cycle(budget)
            }
        }
    }

    /// Reclaims until the page streams' utilization reaches `target` (or no
    /// further progress is possible) — the steady-state background GC loop
    /// a space-constrained deployment runs.
    pub fn reclaim_to_utilization(
        &self,
        target: f64,
        per_cycle: usize,
    ) -> StorageResult<bg3_gc::CycleReport> {
        let router = self.gc_router();
        match self.config.gc_policy {
            GcPolicyKind::Fifo => SpaceReclaimer::new(self.store.clone(), FifoPolicy, router)
                .reclaim_to_utilization(target, per_cycle),
            GcPolicyKind::DirtyRatio => {
                SpaceReclaimer::new(self.store.clone(), DirtyRatioPolicy, router)
                    .reclaim_to_utilization(target, per_cycle)
            }
            GcPolicyKind::WorkloadAware => {
                SpaceReclaimer::new(self.store.clone(), WorkloadAwarePolicy::default(), router)
                    .reclaim_to_utilization(target, per_cycle)
            }
        }
    }
}

impl GraphStore for Bg3Db {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.forest.put(
            &edge_group(edge.src, edge.etype),
            &edge_item(edge.dst),
            &edge.props,
        )?;
        if self.config.maintain_reverse_edges && !edge.etype.is_reverse() {
            self.forest.put(
                &edge_group(edge.dst, edge.etype.reversed()),
                &edge_item(edge.src),
                &[],
            )?;
        }
        Ok(())
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.forest.get(&edge_group(src, etype), &edge_item(dst))
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.forest
            .delete(&edge_group(src, etype), &edge_item(dst))?;
        if self.config.maintain_reverse_edges && !etype.is_reverse() {
            self.forest
                .delete(&edge_group(dst, etype.reversed()), &edge_item(src))?;
        }
        Ok(())
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        Ok(self
            .forest
            .scan_group(&edge_group(src, etype), limit)
            .into_iter()
            .filter_map(|(item, props)| decode_dst(&item).map(|dst| (dst, props)))
            .collect())
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.vertices.put(&vertex_key(vertex.id), &vertex.props)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.vertices.get(&vertex_key(id))
    }
}

impl std::fmt::Debug for Bg3Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bg3Db")
            .field("forest", &self.forest)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::PropertyValue;

    fn db() -> Bg3Db {
        Bg3Db::new(Bg3Config::default())
    }

    #[test]
    fn edge_round_trip() {
        let db = db();
        let e = Edge::new(VertexId(1), EdgeType::LIKE, VertexId(42))
            .with_props(PropertyValue::Int(170).encode());
        db.insert_edge(&e).unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(42)).unwrap(),
            Some(PropertyValue::Int(170).encode())
        );
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(42)).unwrap(),
            None
        );
        db.delete_edge(VertexId(1), EdgeType::LIKE, VertexId(42)).unwrap();
        assert_eq!(
            db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(42)).unwrap(),
            None
        );
    }

    #[test]
    fn neighbors_sorted_by_dst() {
        let db = db();
        for dst in [9u64, 1, 5, 3] {
            db.insert_edge(&Edge::new(VertexId(7), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        let n: Vec<u64> = db
            .neighbors(VertexId(7), EdgeType::FOLLOW, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(n, vec![1, 3, 5, 9]);
    }

    #[test]
    fn active_vertices_split_out_into_their_own_trees() {
        let mut config = Bg3Config::default();
        config.forest = config.forest.with_split_out_threshold(8);
        let db = Bg3Db::new(config);
        for dst in 0..20u64 {
            db.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst)))
                .unwrap();
        }
        assert!(db.forest().tree_count() > 1, "super-vertex split out");
        assert_eq!(
            db.neighbors(VertexId(1), EdgeType::LIKE, usize::MAX).unwrap().len(),
            20
        );
    }

    #[test]
    fn vertex_table_round_trip() {
        let db = db();
        db.insert_vertex(&Vertex {
            id: VertexId(5),
            props: b"user".to_vec(),
        })
        .unwrap();
        assert_eq!(db.get_vertex(VertexId(5)).unwrap(), Some(b"user".to_vec()));
        assert_eq!(db.get_vertex(VertexId(6)).unwrap(), None);
    }

    #[test]
    fn gc_cycle_runs_and_repairs_pointers() {
        let config = Bg3Config {
            store: StoreConfig::counting().with_extent_capacity(512),
            gc_policy: GcPolicyKind::DirtyRatio,
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        // Overwrite the same edges repeatedly to generate garbage.
        for round in 0..20u64 {
            for dst in 0..10u64 {
                db.insert_edge(
                    &Edge::new(VertexId(1), EdgeType::LIKE, VertexId(dst))
                        .with_props(round.to_le_bytes().to_vec()),
                )
                .unwrap();
            }
        }
        let report = db.run_gc_cycle(8).unwrap();
        assert!(
            report.relocated_extents > 0 || report.expired_extents > 0,
            "something was reclaimed: {report:?}"
        );
        // Every edge still readable after relocation.
        for dst in 0..10u64 {
            assert_eq!(
                db.get_edge(VertexId(1), EdgeType::LIKE, VertexId(dst)).unwrap(),
                Some(19u64.to_le_bytes().to_vec()),
                "edge {dst} survived GC"
            );
        }
    }

    #[test]
    fn reverse_index_serves_in_edge_queries() {
        let config = Bg3Config {
            maintain_reverse_edges: true,
            ..Bg3Config::default()
        };
        let db = Bg3Db::new(config);
        for src in [10u64, 20, 30] {
            db.insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(1)))
                .unwrap();
        }
        let followers: Vec<u64> = db
            .neighbors(VertexId(1), EdgeType::FOLLOW.reversed(), usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(followers, vec![10, 20, 30]);
        db.delete_edge(VertexId(20), EdgeType::FOLLOW, VertexId(1)).unwrap();
        assert_eq!(
            db.neighbors(VertexId(1), EdgeType::FOLLOW.reversed(), usize::MAX)
                .unwrap()
                .len(),
            2,
            "reverse index follows deletes"
        );
    }

    #[test]
    fn ttl_config_reaches_storage() {
        let config = Bg3Config::default().with_ttl_nanos(Some(1_000));
        let db = Bg3Db::new(config);
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::TRANSFER, VertexId(2)))
            .unwrap();
        let infos = db
            .store()
            .extent_infos(bg3_storage::StreamId::BASE)
            .unwrap();
        assert!(infos.iter().any(|i| i.ttl_deadline.is_some()));
    }
}
