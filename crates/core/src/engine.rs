//! The unified engine API.
//!
//! The three engines ([`Bg3Db`], [`ByteGraphDb`], [`NeptuneLike`]) already
//! share the [`GraphStore`] query surface, but construction, I/O accounting,
//! and background maintenance were bespoke per engine — every experiment
//! driver grew a three-armed `match`. This module splits the remaining
//! surface in two:
//!
//! * [`EngineRuntime`] — object-safe: everything a driver needs once the
//!   engine exists (name, backing store, I/O snapshots, maintenance).
//!   Drivers can hold `dyn EngineRuntime`.
//! * [`GraphEngine`] — adds uniform construction (`open` / `with_store`)
//!   with a per-engine `Config` associated type, so generic harness code
//!   can build any engine from its `Default` configuration.

use crate::bg3db::{Bg3Config, Bg3Db};
use crate::bytegraph::{ByteGraphConfig, ByteGraphDb};
use crate::neptune::NeptuneLike;
use bg3_graph::GraphStore;
use bg3_storage::{
    AppendOnlyStore, CacheStatsSnapshot, IoStatsSnapshot, MetricsSnapshot, StorageResult,
    StoreConfig,
};

/// What one bounded background-maintenance pass accomplished, in
/// engine-neutral terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Extents reclaimed by space reclamation (relocated + TTL-expired).
    pub reclaimed_extents: u64,
    /// Bytes rewritten while moving live data — the background write
    /// amplification of Table 2 (BG3) or compaction I/O (LSM engines).
    pub moved_bytes: u64,
    /// Memtable flushes plus compaction rounds, for engines whose
    /// maintenance is LSM-shaped rather than extent GC.
    pub compactions: u64,
}

/// The object-safe runtime surface shared by every engine.
///
/// Extends [`GraphStore`], so a `dyn EngineRuntime` answers queries *and*
/// exposes the operational knobs the experiment drivers poke.
pub trait EngineRuntime: GraphStore {
    /// Display name used in experiment output rows.
    fn engine_name(&self) -> &'static str;

    /// The append-only shared store backing this engine.
    fn shared_store(&self) -> &AppendOnlyStore;

    /// Point-in-time copy of the backing store's I/O counters. Drivers
    /// diff two snapshots (`delta_since`) to attribute I/O to a workload
    /// phase without per-engine stat plumbing.
    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.shared_store().stats().snapshot()
    }

    /// Point-in-time copy of the backing store's page-cache counters
    /// (hits, misses, admissions, evictions, residency). Every engine
    /// reads through the same store-level cache, so the default is
    /// authoritative.
    fn cache_snapshot(&self) -> CacheStatsSnapshot {
        self.shared_store().cache_stats()
    }

    /// Full registry snapshot (counters, gauges, latency histograms in
    /// virtual nanoseconds) of the backing store's data plane. Engines with
    /// additional metric planes (e.g. BG3's mapping table) override this to
    /// merge them in.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared_store().metrics_snapshot()
    }

    /// Runs one bounded background-maintenance pass. `budget` caps the
    /// work in engine-specific units (extents examined for BG3's space
    /// reclamation; ignored by LSM flush). Engines with no background
    /// work return an empty report.
    fn run_maintenance(&self, budget: usize) -> StorageResult<MaintenanceReport>;
}

/// Uniform construction over the engines: `open` on a fresh store, or
/// `with_store` to share an existing one (multi-tenant experiments, crash
/// harnesses re-opening the surviving store).
pub trait GraphEngine: EngineRuntime + Sized {
    /// Engine-specific configuration; `Default` is the paper's baseline
    /// setup for that engine.
    type Config: Default + Clone;

    /// Opens the engine over a fresh store built from `config`.
    fn open(config: Self::Config) -> Self;

    /// Opens the engine over an existing (possibly shared) store.
    fn with_store(store: AppendOnlyStore, config: Self::Config) -> Self;
}

impl EngineRuntime for Bg3Db {
    fn engine_name(&self) -> &'static str {
        "bg3"
    }

    fn shared_store(&self) -> &AppendOnlyStore {
        self.store()
    }

    /// Data plane plus — in durable mode — the mapping table's
    /// metadata-plane registry (publish latency, epoch seals, fencing).
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut merged = self.store().metrics_snapshot();
        if let Some(mapping) = self.mapping() {
            merged.merge(&mapping.stats().metrics());
        }
        merged
    }

    fn run_maintenance(&self, budget: usize) -> StorageResult<MaintenanceReport> {
        let report = self.run_gc_cycle(budget)?;
        Ok(MaintenanceReport {
            reclaimed_extents: report.relocated_extents + report.expired_extents,
            moved_bytes: report.moved_bytes,
            compactions: 0,
        })
    }
}

impl GraphEngine for Bg3Db {
    type Config = Bg3Config;

    fn open(config: Bg3Config) -> Self {
        Bg3Db::new(config)
    }

    fn with_store(store: AppendOnlyStore, config: Bg3Config) -> Self {
        Bg3Db::with_store(store, config)
    }
}

impl EngineRuntime for ByteGraphDb {
    fn engine_name(&self) -> &'static str {
        "bytegraph"
    }

    fn shared_store(&self) -> &AppendOnlyStore {
        self.lsm().store()
    }

    /// Flushes the memtable (which may cascade compactions). The LSM sizes
    /// its own compaction work, so `budget` is ignored.
    fn run_maintenance(&self, _budget: usize) -> StorageResult<MaintenanceReport> {
        let before = self.lsm().stats();
        self.lsm().flush()?;
        let after = self.lsm().stats();
        Ok(MaintenanceReport {
            reclaimed_extents: 0,
            moved_bytes: after.compaction_bytes - before.compaction_bytes,
            compactions: (after.flushes - before.flushes)
                + (after.compactions - before.compactions),
        })
    }
}

impl GraphEngine for ByteGraphDb {
    type Config = ByteGraphConfig;

    fn open(config: ByteGraphConfig) -> Self {
        ByteGraphDb::new(config)
    }

    fn with_store(store: AppendOnlyStore, config: ByteGraphConfig) -> Self {
        ByteGraphDb::with_store(store, config)
    }
}

impl EngineRuntime for NeptuneLike {
    fn engine_name(&self) -> &'static str {
        "neptune-like"
    }

    fn shared_store(&self) -> &AppendOnlyStore {
        self.store()
    }

    /// Write-through pages need no background maintenance.
    fn run_maintenance(&self, _budget: usize) -> StorageResult<MaintenanceReport> {
        Ok(MaintenanceReport::default())
    }
}

impl GraphEngine for NeptuneLike {
    type Config = StoreConfig;

    fn open(config: StoreConfig) -> Self {
        NeptuneLike::new(config)
    }

    /// The store already fixes latency/fault behavior, so the config is
    /// unused when attaching to an existing store.
    fn with_store(store: AppendOnlyStore, _config: StoreConfig) -> Self {
        NeptuneLike::with_store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::{Edge, EdgeType, VertexId};
    use bg3_storage::StoreBuilder;

    /// Generic over `GraphEngine`: the same harness body drives any engine.
    fn exercise<E: GraphEngine>() -> (u64, &'static str) {
        let engine = E::open(E::Config::default());
        for i in 0..20u64 {
            engine
                .insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(10 + i)))
                .unwrap();
        }
        let before = engine.io_snapshot();
        assert_eq!(
            engine
                .neighbors(VertexId(1), EdgeType::FOLLOW, usize::MAX)
                .unwrap()
                .len(),
            20
        );
        let after = engine.io_snapshot();
        engine.run_maintenance(4).unwrap();
        (
            after.delta_since(&before).random_reads,
            engine.engine_name(),
        )
    }

    #[test]
    fn all_engines_run_through_the_unified_api() {
        let (_, name) = exercise::<Bg3Db>();
        assert_eq!(name, "bg3");
        let (_, name) = exercise::<ByteGraphDb>();
        assert_eq!(name, "bytegraph");
        let (_, name) = exercise::<NeptuneLike>();
        assert_eq!(name, "neptune-like");
    }

    #[test]
    fn engines_are_usable_as_trait_objects() {
        let engines: Vec<Box<dyn EngineRuntime>> = vec![
            Box::new(Bg3Db::open(Bg3Config::default())),
            Box::new(ByteGraphDb::open(ByteGraphConfig::default())),
            Box::new(NeptuneLike::open(StoreConfig::counting())),
        ];
        for engine in &engines {
            engine
                .insert_edge(&Edge::new(VertexId(7), EdgeType::FOLLOW, VertexId(8)))
                .unwrap();
            assert!(engine
                .get_edge(VertexId(7), EdgeType::FOLLOW, VertexId(8))
                .unwrap()
                .is_some());
            let report = engine.run_maintenance(2).unwrap();
            assert_eq!(report.reclaimed_extents, 0, "nothing to reclaim yet");
        }
    }

    /// Durable engine with the Bw-tree's own page image serving disabled:
    /// every point read takes the cold path to the shared store, which is
    /// where the page cache sits.
    fn cold_reading_config(cache_bytes: usize) -> Bg3Config {
        let mut config = Bg3Config::default()
            .with_durability()
            .with_cache_capacity(cache_bytes);
        config.forest.tree_config = config.forest.tree_config.clone().with_read_cache(false);
        config
    }

    #[test]
    fn cache_stats_flow_through_the_unified_api() {
        let engine = Bg3Db::open(cold_reading_config(8 * 1024 * 1024));
        for i in 0..20u64 {
            engine
                .insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(10 + i)))
                .unwrap();
        }
        engine.checkpoint().unwrap();
        for _ in 0..5 {
            assert!(engine
                .get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(10))
                .unwrap()
                .is_some());
        }
        let cache = engine.cache_snapshot();
        assert!(cache.hits > 0, "repeat cold reads hit the page cache");
        let io = engine.io_snapshot();
        assert_eq!(io.cache_hits, cache.hits, "both surfaces agree");
        assert!(io.read_amplification() < 1.0);

        // The knob round-trips: a zero-capacity engine never caches.
        let cold = Bg3Db::open(cold_reading_config(0));
        cold.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(2)))
            .unwrap();
        cold.checkpoint().unwrap();
        for _ in 0..3 {
            cold.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap();
        }
        assert_eq!(cold.cache_snapshot().hits, 0);
        assert_eq!(cold.io_snapshot().read_amplification(), 1.0);
    }

    #[test]
    fn with_store_attaches_to_a_shared_store() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let db = <Bg3Db as GraphEngine>::with_store(store.clone(), Bg3Config::default());
        db.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(2)))
            .unwrap();
        // Same underlying store: the attached handle's counters move it.
        assert!(db.shared_store().stats().snapshot().bytes_appended > 0);
        assert_eq!(
            store.stats().snapshot(),
            db.shared_store().stats().snapshot()
        );
    }
}
