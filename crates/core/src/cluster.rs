//! Hash-sharded scale-out wrapper.
//!
//! The paper deploys multiple RW nodes by "distributing write requests
//! across distinct RW nodes using hashing" (§3.1); Fig. 8's horizontal axis
//! scales from 2 to 10 nodes. [`Cluster`] reproduces that: N independent
//! engine shards behind a source-vertex hash router, itself implementing
//! [`GraphStore`] so benchmark drivers are oblivious to the deployment.

use bg3_graph::{Edge, EdgeType, GraphStore, Vertex, VertexId};
use bg3_storage::StorageResult;
use std::sync::Arc;

/// N engine shards behind a hash router.
pub struct Cluster<S> {
    shards: Vec<Arc<S>>,
}

impl<S: GraphStore> Cluster<S> {
    /// Builds a cluster with `nodes` shards produced by `factory(i)`.
    pub fn new(nodes: usize, factory: impl FnMut(usize) -> S) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let mut factory = factory;
        Cluster {
            shards: (0..nodes).map(|i| Arc::new(factory(i))).collect(),
        }
    }

    /// Number of shards.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `src`'s adjacency lists.
    pub fn shard_for(&self, src: VertexId) -> &Arc<S> {
        // Fibonacci hashing spreads sequential ids.
        let h = src.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Direct shard access (diagnostics).
    pub fn shard(&self, idx: usize) -> &Arc<S> {
        &self.shards[idx]
    }
}

impl<S: GraphStore> GraphStore for Cluster<S> {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.shard_for(edge.src).insert_edge(edge)
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.shard_for(src).get_edge(src, etype, dst)
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.shard_for(src).delete_edge(src, etype, dst)
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        self.shard_for(src).neighbors(src, etype, limit)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.shard_for(vertex.id).insert_vertex(vertex)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.shard_for(id).get_vertex(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bg3db::{Bg3Config, Bg3Db};
    use bg3_graph::MemGraph;

    #[test]
    fn routing_is_stable_and_spread() {
        let cluster = Cluster::new(4, |_| MemGraph::new());
        assert_eq!(cluster.nodes(), 4);
        // Stability: the same vertex always routes to the same shard.
        let a = Arc::as_ptr(cluster.shard_for(VertexId(42)));
        let b = Arc::as_ptr(cluster.shard_for(VertexId(42)));
        assert_eq!(a, b);
        // Spread: many vertices hit more than one shard.
        let mut seen = std::collections::HashSet::new();
        for v in 0..64u64 {
            seen.insert(Arc::as_ptr(cluster.shard_for(VertexId(v))) as usize);
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn cluster_behaves_like_one_store() {
        let cluster = Cluster::new(3, |_| MemGraph::new());
        for src in 0..20u64 {
            for dst in 0..5u64 {
                cluster
                    .insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(dst)))
                    .unwrap();
            }
        }
        for src in 0..20u64 {
            assert_eq!(
                cluster
                    .neighbors(VertexId(src), EdgeType::FOLLOW, usize::MAX)
                    .unwrap()
                    .len(),
                5,
                "src {src}"
            );
        }
        cluster
            .delete_edge(VertexId(3), EdgeType::FOLLOW, VertexId(0))
            .unwrap();
        assert_eq!(
            cluster
                .neighbors(VertexId(3), EdgeType::FOLLOW, usize::MAX)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn cluster_of_bg3_engines() {
        let cluster = Cluster::new(2, |_| Bg3Db::new(Bg3Config::default()));
        cluster
            .insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(2)))
            .unwrap();
        cluster
            .insert_vertex(&Vertex {
                id: VertexId(1),
                props: b"u".to_vec(),
            })
            .unwrap();
        assert_eq!(
            cluster
                .get_edge(VertexId(1), EdgeType::LIKE, VertexId(2))
                .unwrap(),
            Some(vec![])
        );
        assert_eq!(
            cluster.get_vertex(VertexId(1)).unwrap(),
            Some(b"u".to_vec())
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_is_rejected() {
        let _ = Cluster::new(0, |_| MemGraph::new());
    }
}
