//! Hash-sharded scale-out wrapper and the leader-failover coordinator.
//!
//! The paper deploys multiple RW nodes by "distributing write requests
//! across distinct RW nodes using hashing" (§3.1); Fig. 8's horizontal axis
//! scales from 2 to 10 nodes. [`Cluster`] reproduces that: N independent
//! engine shards behind a source-vertex hash router, itself implementing
//! [`GraphStore`] so benchmark drivers are oblivious to the deployment.
//!
//! [`FailoverCluster`] covers the availability axis instead: one leader plus
//! N followers on one shared store, a coordinator that detects leader death
//! through missed group-commit heartbeats on the virtual clock, and an
//! epoch-fenced promotion path ([`bg3_sync::RoNode::promote`]) that turns
//! the most caught-up follower into the next leader while reads keep being
//! served (stale-flagged) throughout the outage.

use bg3_graph::{Edge, EdgeType, GraphStore, Vertex, VertexId};
use bg3_storage::{
    AppendOnlyStore, EpochFenceSnapshot, MetricsSnapshot, SharedMappingTable, SimInstant,
    StorageError, StorageOp, StorageResult, StoreBuilder, StoreConfig, TraceBuffer, TraceKind,
};
use bg3_sync::{RoNode, RoNodeConfig, RwNode, RwNodeConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// N engine shards behind a hash router.
pub struct Cluster<S> {
    shards: Vec<Arc<S>>,
}

impl<S: GraphStore> Cluster<S> {
    /// Builds a cluster with `nodes` shards produced by `factory(i)`.
    pub fn new(nodes: usize, factory: impl FnMut(usize) -> S) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let mut factory = factory;
        Cluster {
            shards: (0..nodes).map(|i| Arc::new(factory(i))).collect(),
        }
    }

    /// Number of shards.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `src`'s adjacency lists.
    pub fn shard_for(&self, src: VertexId) -> &Arc<S> {
        // Fibonacci hashing spreads sequential ids.
        let h = src.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Direct shard access (diagnostics).
    pub fn shard(&self, idx: usize) -> &Arc<S> {
        &self.shards[idx]
    }
}

impl<S: GraphStore> GraphStore for Cluster<S> {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.shard_for(edge.src).insert_edge(edge)
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.shard_for(src).get_edge(src, etype, dst)
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.shard_for(src).delete_edge(src, etype, dst)
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        self.shard_for(src).neighbors(src, etype, limit)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.shard_for(vertex.id).insert_vertex(vertex)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.shard_for(id).get_vertex(id)
    }
}

/// Failover-deployment parameters.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Shared-store parameters.
    pub store: StoreConfig,
    /// Number of read-only followers behind the leader.
    pub ro_nodes: usize,
    /// Virtual time without an acknowledged leader write before the
    /// coordinator declares the leader dead and promotes. Models the missed
    /// group-commit heartbeat of a lease-based detector.
    pub heartbeat_timeout_nanos: u64,
    /// Leader parameters (reused for every promoted successor).
    pub rw: RwNodeConfig,
    /// Follower parameters (reused when followers are rebuilt).
    pub ro: RoNodeConfig,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            store: StoreConfig::counting(),
            ro_nodes: 2,
            heartbeat_timeout_nanos: 50_000_000, // 50ms of virtual time
            rw: RwNodeConfig::default(),
            ro: RoNodeConfig::default(),
        }
    }
}

/// What one coordinator tick observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverTick {
    /// A leader is installed and has heartbeated within the timeout.
    Healthy,
    /// No usable leader, but the detection window has not elapsed yet;
    /// followers keep serving stale-flagged reads.
    Waiting {
        /// Virtual nanoseconds since the last acknowledged leader write.
        waited_nanos: u64,
    },
    /// The most caught-up follower was promoted onto `epoch`.
    Promoted {
        /// The new leadership epoch the fence now accepts.
        epoch: u64,
    },
}

/// Counters describing a [`FailoverCluster`]'s life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailoverStatsSnapshot {
    /// The leadership epoch currently accepted by the store.
    pub epoch: u64,
    /// Completed promotions.
    pub failovers: u64,
    /// Reads served while flagged (possibly) stale — availability through
    /// outages.
    pub stale_reads_served: u64,
    /// WAL records past the promoting follower's `seen_lsn` replayed during
    /// promotions.
    pub promotion_replay_records: u64,
    /// The store-side fence counters (seals, rejected zombie publishes and
    /// appends).
    pub fence: EpochFenceSnapshot,
}

struct FailoverState {
    leader: Option<Arc<RwNode>>,
    followers: Vec<Arc<RoNode>>,
    /// Virtual instant of the last acknowledged leader write (put or
    /// checkpoint): the group-commit heartbeat.
    last_heartbeat: SimInstant,
}

/// One leader + N followers on one shared store, with heartbeat-driven
/// leader-death detection and epoch-fenced promotion.
///
/// The coordinator never blocks reads: during an outage followers keep
/// serving from their caches and the adopted mapping version, flagged stale
/// so clients (and the stats) know the leader's final writes may be
/// missing. Writes during an outage fail fast with
/// [`bg3_storage::ErrorKind::NoLeader`].
pub struct FailoverCluster {
    store: AppendOnlyStore,
    mapping: SharedMappingTable,
    config: FailoverConfig,
    state: Mutex<FailoverState>,
    next_read: AtomicUsize,
    failovers: AtomicU64,
    /// Stale reads and promotion replays from follower generations that
    /// were already torn down (followers are rebuilt after each promotion).
    retired_stale_reads: AtomicU64,
    retired_promotion_replays: AtomicU64,
}

impl FailoverCluster {
    /// Builds the deployment: a fresh leader plus `ro_nodes` followers.
    pub fn new(config: FailoverConfig) -> Self {
        let store = StoreBuilder::from_config(config.store.clone()).build();
        let rw = RwNode::new(store.clone(), config.rw.clone());
        let mapping = rw.mapping().clone();
        let followers = Self::build_followers(&store, &rw, &config);
        let last_heartbeat = store.clock().now();
        FailoverCluster {
            store,
            mapping,
            config,
            state: Mutex::new(FailoverState {
                leader: Some(Arc::new(rw)),
                followers,
                last_heartbeat,
            }),
            next_read: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            retired_stale_reads: AtomicU64::new(0),
            retired_promotion_replays: AtomicU64::new(0),
        }
    }

    fn build_followers(
        store: &AppendOnlyStore,
        rw: &RwNode,
        config: &FailoverConfig,
    ) -> Vec<Arc<RoNode>> {
        (0..config.ro_nodes)
            .map(|_| {
                Arc::new(RoNode::new(
                    store.clone(),
                    rw.mapping().clone(),
                    rw.open_wal_reader(),
                    config.ro.clone(),
                ))
            })
            .collect()
    }

    /// The shared store (clock, I/O counters, fence counters).
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// The current leader, if one is installed.
    pub fn leader(&self) -> Option<Arc<RwNode>> {
        self.state.lock().leader.clone()
    }

    /// Follower `idx` of the current generation.
    pub fn follower(&self, idx: usize) -> Arc<RoNode> {
        self.state.lock().followers[idx].clone()
    }

    /// Number of followers.
    pub fn follower_count(&self) -> usize {
        self.state.lock().followers.len()
    }

    /// Writes through the leader; each acknowledged write doubles as the
    /// leader's heartbeat. Fails with `NoLeader` during an outage.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let leader = self
            .leader()
            .ok_or_else(|| StorageError::no_leader(StorageOp::Append))?;
        leader.put(key, value)?;
        self.state.lock().last_heartbeat = self.store.clock().now();
        Ok(())
    }

    /// Deletes through the leader (heartbeats like [`FailoverCluster::put`]).
    pub fn delete(&self, key: &[u8]) -> StorageResult<()> {
        let leader = self
            .leader()
            .ok_or_else(|| StorageError::no_leader(StorageOp::Append))?;
        leader.delete(key)?;
        self.state.lock().last_heartbeat = self.store.clock().now();
        Ok(())
    }

    /// Forces a leader group commit + mapping publish (also a heartbeat).
    pub fn checkpoint(&self) -> StorageResult<()> {
        let leader = self
            .leader()
            .ok_or_else(|| StorageError::no_leader(StorageOp::Append))?;
        leader.checkpoint()?;
        self.state.lock().last_heartbeat = self.store.clock().now();
        Ok(())
    }

    /// Reads from a follower (round-robin), falling back to the leader when
    /// no followers are configured. Keeps working through an outage — the
    /// serving follower counts the read as stale while its flag is set.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let tree = self.config.rw.tree_id as u64;
        let (follower, leader) = {
            let state = self.state.lock();
            if state.followers.is_empty() {
                (None, state.leader.clone())
            } else {
                let idx = self.next_read.fetch_add(1, Ordering::Relaxed) % state.followers.len();
                (Some(state.followers[idx].clone()), None)
            }
        };
        if let Some(ro) = follower {
            return ro.get(tree, key);
        }
        match leader {
            Some(rw) => rw.get(key),
            None => Err(StorageError::no_leader(StorageOp::Read)),
        }
    }

    /// Lets every follower of the current generation tail the WAL. Returns
    /// total records consumed.
    pub fn poll_followers(&self) -> StorageResult<usize> {
        let followers = self.state.lock().followers.clone();
        let mut total = 0;
        for ro in &followers {
            total += ro.poll()?;
        }
        Ok(total)
    }

    /// Simulates a leader crash: removes the leader from routing (returning
    /// the handle so chaos experiments can resurrect it as a zombie) and
    /// flags every follower stale. Detection still waits for the heartbeat
    /// timeout — [`FailoverCluster::tick`] promotes only after the window
    /// elapses.
    pub fn kill_leader(&self) -> Option<Arc<RwNode>> {
        let mut state = self.state.lock();
        let zombie = state.leader.take();
        if zombie.is_some() {
            for ro in &state.followers {
                ro.set_serving_stale(true);
            }
        }
        zombie
    }

    /// One coordinator heartbeat check on the virtual clock.
    ///
    /// * Leader installed and fresh → [`FailoverTick::Healthy`].
    /// * Leader installed but silent past the timeout → it is deposed (a
    ///   lease-style detector cannot distinguish hung from dead) and the
    ///   tick falls through to promotion.
    /// * No leader and the window has not elapsed → [`FailoverTick::Waiting`]
    ///   (followers keep serving stale reads).
    /// * Window elapsed → elect the most caught-up follower, promote it on
    ///   the next epoch, rebuild the follower generation from the new
    ///   leader, clear stale flags.
    pub fn tick(&self) -> StorageResult<FailoverTick> {
        let mut state = self.state.lock();
        let waited = self
            .store
            .clock()
            .now()
            .duration_since(state.last_heartbeat);
        if state.leader.is_some() {
            if waited < self.config.heartbeat_timeout_nanos {
                return Ok(FailoverTick::Healthy);
            }
            // Silent leader: depose it before promoting a successor. The
            // fence — not this routing change — is what makes the deposed
            // node harmless if it was merely slow.
            state.leader = None;
            for ro in &state.followers {
                ro.set_serving_stale(true);
            }
        }
        if waited < self.config.heartbeat_timeout_nanos {
            return Ok(FailoverTick::Waiting {
                waited_nanos: waited,
            });
        }
        self.promote_locked(&mut state)
    }

    fn promote_locked(&self, state: &mut FailoverState) -> StorageResult<FailoverTick> {
        // Elect on what each follower has *applied* — no catch-up round
        // first, so the winner's promotion honestly replays (and counts)
        // the log tail it had not consumed when the leader died.
        let winner = state
            .followers
            .iter()
            .max_by_key(|ro| ro.seen_lsn())
            .cloned()
            .ok_or_else(|| StorageError::no_leader(StorageOp::Recovery))?;
        let epoch = self.mapping.epoch() + 1;
        let rw = Arc::new(winner.promote(epoch, self.config.rw.clone())?);

        // The outgoing follower generation is torn down (their readers
        // indexed the dead leader's WAL); bank their counters first.
        for ro in &state.followers {
            let stats = ro.stats();
            self.retired_stale_reads
                .fetch_add(stats.stale_reads, Ordering::Relaxed);
            self.retired_promotion_replays
                .fetch_add(stats.promotion_replay_records, Ordering::Relaxed);
        }
        state.followers = Self::build_followers(&self.store, &rw, &self.config);
        state.leader = Some(rw);
        state.last_heartbeat = self.store.clock().now();
        let failovers = self.failovers.fetch_add(1, Ordering::Relaxed) + 1;
        // Trace order per promotion cycle: the fence's `epoch_seal` and the
        // winner's `promotion` were already emitted inside `promote`; the
        // coordinator's election record closes the sequence.
        self.store.trace().emit(
            self.store.clock().now().0,
            TraceKind::LeaderElected,
            epoch,
            failovers,
        );
        Ok(FailoverTick::Promoted { epoch })
    }

    /// The structured trace of the deployment's state transitions (epoch
    /// seals, promotions, elections, fence rejections, WAL appends — all
    /// subsystems share the store's ring).
    pub fn trace(&self) -> &TraceBuffer {
        self.store.trace()
    }

    /// Merged metric registries of the data plane (store) and the metadata
    /// plane (mapping table): counters and histograms sum, gauges take the
    /// mapping's value when both planes registered the same name.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut merged = self.store.metrics_snapshot();
        merged.merge(&self.mapping.stats().metrics());
        merged
    }

    /// Counter snapshot: fence state plus counters accumulated across every
    /// follower generation (live followers included).
    pub fn stats(&self) -> FailoverStatsSnapshot {
        let (mut stale, mut replays) = (
            self.retired_stale_reads.load(Ordering::Relaxed),
            self.retired_promotion_replays.load(Ordering::Relaxed),
        );
        for ro in self.state.lock().followers.iter() {
            let s = ro.stats();
            stale += s.stale_reads;
            replays += s.promotion_replay_records;
        }
        FailoverStatsSnapshot {
            epoch: self.mapping.epoch(),
            failovers: self.failovers.load(Ordering::Relaxed),
            stale_reads_served: stale,
            promotion_replay_records: replays,
            fence: self.mapping.fence().snapshot(),
        }
    }
}

impl std::fmt::Debug for FailoverCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("FailoverCluster")
            .field("has_leader", &state.leader.is_some())
            .field("followers", &state.followers.len())
            .field("epoch", &self.mapping.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bg3db::{Bg3Config, Bg3Db};
    use bg3_graph::MemGraph;

    #[test]
    fn routing_is_stable_and_spread() {
        let cluster = Cluster::new(4, |_| MemGraph::new());
        assert_eq!(cluster.nodes(), 4);
        // Stability: the same vertex always routes to the same shard.
        let a = Arc::as_ptr(cluster.shard_for(VertexId(42)));
        let b = Arc::as_ptr(cluster.shard_for(VertexId(42)));
        assert_eq!(a, b);
        // Spread: many vertices hit more than one shard.
        let mut seen = std::collections::HashSet::new();
        for v in 0..64u64 {
            seen.insert(Arc::as_ptr(cluster.shard_for(VertexId(v))) as usize);
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn cluster_behaves_like_one_store() {
        let cluster = Cluster::new(3, |_| MemGraph::new());
        for src in 0..20u64 {
            for dst in 0..5u64 {
                cluster
                    .insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(dst)))
                    .unwrap();
            }
        }
        for src in 0..20u64 {
            assert_eq!(
                cluster
                    .neighbors(VertexId(src), EdgeType::FOLLOW, usize::MAX)
                    .unwrap()
                    .len(),
                5,
                "src {src}"
            );
        }
        cluster
            .delete_edge(VertexId(3), EdgeType::FOLLOW, VertexId(0))
            .unwrap();
        assert_eq!(
            cluster
                .neighbors(VertexId(3), EdgeType::FOLLOW, usize::MAX)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn cluster_of_bg3_engines() {
        let cluster = Cluster::new(2, |_| Bg3Db::new(Bg3Config::default()));
        cluster
            .insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(2)))
            .unwrap();
        cluster
            .insert_vertex(&Vertex {
                id: VertexId(1),
                props: b"u".to_vec(),
            })
            .unwrap();
        assert_eq!(
            cluster
                .get_edge(VertexId(1), EdgeType::LIKE, VertexId(2))
                .unwrap(),
            Some(vec![])
        );
        assert_eq!(
            cluster.get_vertex(VertexId(1)).unwrap(),
            Some(b"u".to_vec())
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_is_rejected() {
        let _ = Cluster::new(0, |_| MemGraph::new());
    }

    fn failover_cluster() -> FailoverCluster {
        FailoverCluster::new(FailoverConfig {
            heartbeat_timeout_nanos: 1_000_000, // 1ms of virtual time
            ..FailoverConfig::default()
        })
    }

    #[test]
    fn healthy_leader_is_left_alone() {
        let cluster = failover_cluster();
        cluster.put(b"k", b"v").unwrap();
        assert_eq!(cluster.tick().unwrap(), FailoverTick::Healthy);
        assert_eq!(cluster.stats().failovers, 0);
        assert_eq!(cluster.stats().epoch, 1);
    }

    #[test]
    fn failover_detects_waits_promotes_and_fences_the_zombie() {
        let cluster = failover_cluster();
        for i in 0..20u32 {
            cluster
                .put(format!("k{i:02}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        cluster.checkpoint().unwrap();
        cluster.poll_followers().unwrap();
        // Two acked writes the followers have not polled yet: the promotion
        // must replay them from the shared WAL.
        cluster.put(b"tail-1", b"t1").unwrap();
        cluster.put(b"tail-2", b"t2").unwrap();

        let zombie = cluster.kill_leader().expect("there was a leader");
        // Writes fail fast; reads keep working, counted stale.
        assert!(matches!(
            cluster.put(b"lost", b"x").unwrap_err().kind,
            bg3_storage::ErrorKind::NoLeader
        ));
        assert_eq!(
            cluster.get(b"k00").unwrap(),
            Some(0u32.to_le_bytes().to_vec())
        );
        assert!(cluster.stats().stale_reads_served >= 1);

        // Detection window: not elapsed yet.
        assert!(matches!(
            cluster.tick().unwrap(),
            FailoverTick::Waiting { .. }
        ));
        cluster.store().clock().advance_nanos(2_000_000);
        assert_eq!(cluster.tick().unwrap(), FailoverTick::Promoted { epoch: 2 });

        // The zombie is fenced at the store on every write plane.
        assert!(zombie.put(b"zombie", b"z").unwrap_err().is_fenced());
        assert!(zombie.checkpoint().unwrap_err().is_fenced());
        let stats = cluster.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.failovers, 1);
        assert!(stats.promotion_replay_records >= 2, "replayed the tail");
        assert!(stats.fence.rejected_appends + stats.fence.rejected_publishes >= 1);

        // The new regime serves every acked write — including the tail the
        // followers never polled — and accepts new ones.
        cluster.put(b"new-era", b"ok").unwrap();
        cluster.poll_followers().unwrap();
        for i in 0..20u32 {
            assert_eq!(
                cluster.get(format!("k{i:02}").as_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
        assert_eq!(cluster.get(b"tail-1").unwrap(), Some(b"t1".to_vec()));
        assert_eq!(cluster.get(b"tail-2").unwrap(), Some(b"t2".to_vec()));
        assert_eq!(cluster.get(b"new-era").unwrap(), Some(b"ok".to_vec()));
        assert_eq!(cluster.get(b"zombie").unwrap(), None);
        assert_eq!(cluster.get(b"lost").unwrap(), None);
    }

    #[test]
    fn promotion_trace_seals_the_epoch_before_the_new_leader_appends() {
        use bg3_obs::names as bg3_obs_names;
        use bg3_storage::TraceKind;
        let cluster = failover_cluster();
        cluster.put(b"before", b"v").unwrap();
        cluster.kill_leader().unwrap();
        cluster.store().clock().advance_nanos(2_000_000);
        assert_eq!(cluster.tick().unwrap(), FailoverTick::Promoted { epoch: 2 });
        cluster.put(b"after", b"v").unwrap();

        let events = cluster.trace().events();
        let seal_seq = events
            .iter()
            .find(|e| e.kind == TraceKind::EpochSeal && e.subject == 2)
            .expect("promotion sealed epoch 2")
            .seq;
        let promo_seq = events
            .iter()
            .find(|e| e.kind == TraceKind::Promotion && e.subject == 2)
            .expect("promotion recorded")
            .seq;
        let elect_seq = events
            .iter()
            .find(|e| e.kind == TraceKind::LeaderElected && e.subject == 2)
            .expect("election recorded")
            .seq;
        let first_new_append = events
            .iter()
            .find(|e| e.kind == TraceKind::WalAppend && e.detail == 2)
            .expect("new leader appended on epoch 2")
            .seq;
        assert!(seal_seq < promo_seq, "seal before promotion completes");
        assert!(promo_seq < elect_seq, "promotion before election record");
        assert!(
            seal_seq < first_new_append,
            "epoch_seal precedes every post-promotion append"
        );
        // Metrics cover both planes: the data-plane appends and the
        // metadata-plane epoch seal land in one merged snapshot.
        let metrics = cluster.metrics_snapshot();
        assert!(
            metrics
                .counter(bg3_obs_names::STORAGE_APPENDS_TOTAL)
                .unwrap()
                > 0
        );
        assert_eq!(metrics.counter(bg3_obs_names::EPOCH_SEALS_TOTAL), Some(1));
    }

    #[test]
    fn silent_leader_is_deposed_after_the_timeout() {
        let cluster = failover_cluster();
        cluster.put(b"k", b"v").unwrap();
        cluster.store().clock().advance_nanos(5_000_000);
        // The handle is still installed, but the lease expired: one tick
        // deposes and promotes.
        assert_eq!(cluster.tick().unwrap(), FailoverTick::Promoted { epoch: 2 });
        cluster.poll_followers().unwrap();
        assert_eq!(cluster.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(cluster.tick().unwrap(), FailoverTick::Healthy);
    }

    #[test]
    fn repeated_failovers_keep_climbing_epochs() {
        let cluster = failover_cluster();
        for round in 0..3u32 {
            cluster
                .put(format!("round{round}").as_bytes(), b"v")
                .unwrap();
            let _zombie = cluster.kill_leader().unwrap();
            cluster.store().clock().advance_nanos(2_000_000);
            assert_eq!(
                cluster.tick().unwrap(),
                FailoverTick::Promoted {
                    epoch: 2 + round as u64
                }
            );
        }
        cluster.poll_followers().unwrap();
        for round in 0..3u32 {
            assert_eq!(
                cluster.get(format!("round{round}").as_bytes()).unwrap(),
                Some(b"v".to_vec()),
                "round {round} write survived every failover"
            );
        }
        let stats = cluster.stats();
        assert_eq!(stats.epoch, 4);
        assert_eq!(stats.failovers, 3);
        assert_eq!(stats.fence.seals, 3);
    }
}
