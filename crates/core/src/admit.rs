//! Admission control and load shedding at the engine API (§4 robustness).
//!
//! Production graph serving at ByteDance runs behind strict SLOs; when
//! offered load exceeds capacity the engine must *shed* rather than build
//! unbounded queues. This module models that discipline on the virtual
//! clock:
//!
//! * [`AdmissionController`] — one token bucket per operation class
//!   (point read / traversal / write). Tokens are *modelled cost units*
//!   (virtual nanoseconds of work, the same currency as `IoStats`
//!   latency accounting); the bucket may go negative up to
//!   `queue_depth × expected_cost`, which is the bounded per-class
//!   queue. Past that the op is shed with
//!   [`ErrorKind::Overloaded`](bg3_storage::StorageError) carrying a
//!   `retry_after` hint; ops whose estimated queue wait exceeds their
//!   class deadline are shed with `DeadlineExceeded` instead of being
//!   admitted only to time out.
//! * [`GovernedEngine`] — a [`ReplicatedBg3`] deployment behind the
//!   controller, with the graceful-degradation ladder: under pressure,
//!   point reads and traversals are served *stale* from the RO replicas
//!   (skipping the WAL catch-up poll), writes pay a cost multiplier
//!   derived from the leader's group-commit debt and the store's GC
//!   backlog, and traversals run through the morsel-driven executor with
//!   a per-hop cost ceiling (truncating, not aborting).
//!
//! Everything threads through `bg3-obs`: `admit_admitted_total`,
//! `admit_shed_total`, `admit_stale_reads_total`, the
//! `admit_queue_wait_latency_ns` histogram, and the `admit_queue_depth`
//! gauge (deepest class).

use crate::deployment::{ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{CycleQuery, Edge, EdgeType, GraphStore, PatternMatcher, Vertex, VertexId};
use bg3_obs::names;
use bg3_obs::{Counter, Gauge, Histogram, MetricRegistry};
use bg3_query::{Executor, ExecutorConfig, Query, QueryError, QueryResult, Step};
use bg3_storage::{SimClock, StorageError, StorageResult};
use bg3_workloads::Op;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const NANOS_PER_SEC: u128 = 1_000_000_000;

/// The three admission classes, mirroring the paper's workload taxonomy
/// (Table 1): cheap existence checks, expensive multi-hop traversals, and
/// writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Single-key reads (edge existence checks, vertex lookups).
    PointRead,
    /// One-hop and multi-hop expansions, pattern matching.
    Traversal,
    /// Edge/vertex inserts and deletes.
    Write,
}

impl OpClass {
    /// All classes, in index order.
    pub const ALL: [OpClass; 3] = [OpClass::PointRead, OpClass::Traversal, OpClass::Write];

    fn idx(self) -> usize {
        match self {
            OpClass::PointRead => 0,
            OpClass::Traversal => 1,
            OpClass::Write => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::PointRead => "point_read",
            OpClass::Traversal => "traversal",
            OpClass::Write => "write",
        }
    }

    /// Which class a workload op belongs to.
    pub fn of(op: &Op) -> OpClass {
        match op {
            Op::InsertEdge { .. } | Op::DeleteEdge { .. } => OpClass::Write,
            Op::CheckEdge { .. } => OpClass::PointRead,
            Op::OneHop { .. } | Op::KHop { .. } | Op::PatternCycle { .. } => OpClass::Traversal,
        }
    }
}

/// Per-class token-bucket budget. Costs are in modelled virtual
/// nanoseconds of work, so `cost_per_sec = 1_000_000_000` means the class
/// may consume one full core-equivalent of modelled work per virtual
/// second.
#[derive(Debug, Clone, Copy)]
pub struct ClassBudget {
    /// Refill rate: cost units per virtual second.
    pub cost_per_sec: u64,
    /// Maximum positive token balance (burst allowance).
    pub burst: u64,
    /// Bounded queue depth, in ops of `expected_cost` each. The bucket
    /// may owe at most `queue_depth × expected_cost` units before ops are
    /// shed `Overloaded`.
    pub queue_depth: u64,
    /// Modelled cost of a typical op in this class (cost units).
    pub expected_cost: u64,
    /// Ops whose estimated queue wait exceeds this are shed
    /// `DeadlineExceeded` up front.
    pub deadline_nanos: u64,
}

impl ClassBudget {
    /// The maximum cost debt the class may carry — the bounded queue in
    /// cost units.
    pub fn backlog_cap(&self) -> u64 {
        self.queue_depth.saturating_mul(self.expected_cost)
    }
}

/// Budgets for all three classes.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Point-read budget.
    pub point_read: ClassBudget,
    /// Traversal budget.
    pub traversal: ClassBudget,
    /// Write budget.
    pub write: ClassBudget,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            point_read: ClassBudget {
                cost_per_sec: 400_000_000,
                burst: 2_000_000,
                queue_depth: 64,
                expected_cost: 20_000,
                deadline_nanos: 5_000_000,
            },
            traversal: ClassBudget {
                cost_per_sec: 300_000_000,
                burst: 10_000_000,
                queue_depth: 32,
                expected_cost: 200_000,
                deadline_nanos: 20_000_000,
            },
            write: ClassBudget {
                cost_per_sec: 300_000_000,
                burst: 4_000_000,
                queue_depth: 128,
                expected_cost: 30_000,
                deadline_nanos: 10_000_000,
            },
        }
    }
}

impl AdmissionConfig {
    /// The budget for `class`.
    pub fn budget(&self, class: OpClass) -> &ClassBudget {
        match class {
            OpClass::PointRead => &self.point_read,
            OpClass::Traversal => &self.traversal,
            OpClass::Write => &self.write,
        }
    }

    /// Mutable budget for `class` (test/experiment tuning).
    pub fn budget_mut(&mut self, class: OpClass) -> &mut ClassBudget {
        match class {
            OpClass::PointRead => &mut self.point_read,
            OpClass::Traversal => &mut self.traversal,
            OpClass::Write => &mut self.write,
        }
    }

    /// Scales every class's refill rate by `factor` — how the overload
    /// experiment sets capacity to a fraction of offered load.
    pub fn scaled(mut self, factor: f64) -> Self {
        for class in OpClass::ALL {
            let b = self.budget_mut(class);
            b.cost_per_sec = ((b.cost_per_sec as f64) * factor).max(1.0) as u64;
        }
        self
    }
}

/// A successful admission.
#[derive(Debug, Clone, Copy)]
pub struct Admitted {
    /// Estimated virtual-time queue wait this op will see (0 when the
    /// bucket was non-negative).
    pub queue_wait_nanos: u64,
    /// Post-admission backlog as a fraction of the bounded queue
    /// (`0.0` = idle, `1.0` = queue full). The degradation ladder keys
    /// off this.
    pub pressure: f64,
}

#[derive(Debug)]
struct Bucket {
    /// Token balance in cost units; negative = queued work.
    tokens: i128,
    /// Virtual instant of the last refill.
    last_refill_nanos: u64,
}

/// Monotonic shed/admit totals (conservation: `submitted == admitted +
/// shed_overloaded + shed_deadline` at every quiescent point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Ops offered to `admit`.
    pub submitted: u64,
    /// Ops admitted.
    pub admitted: u64,
    /// Ops shed with `Overloaded` (queue full).
    pub shed_overloaded: u64,
    /// Ops shed with `DeadlineExceeded` (queue wait beyond deadline).
    pub shed_deadline: u64,
    /// Reads served stale off the RO replicas under pressure.
    pub stale_reads: u64,
}

impl AdmissionSnapshot {
    /// Total shed ops.
    pub fn shed(&self) -> u64 {
        self.shed_overloaded + self.shed_deadline
    }
}

/// Token-bucket admission control over the virtual clock.
#[derive(Debug)]
pub struct AdmissionController {
    clock: SimClock,
    config: AdmissionConfig,
    buckets: [Mutex<Bucket>; 3],
    queue_lens: [AtomicU64; 3],
    submitted: AtomicU64,
    admitted_n: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_deadline: AtomicU64,
    stale_n: AtomicU64,
    admitted_total: Counter,
    shed_total: Counter,
    stale_reads_total: Counter,
    queue_wait: Histogram,
    queue_depth_gauge: Gauge,
}

fn div_ceil_u128(num: u128, den: u128) -> u64 {
    if den == 0 {
        return u64::MAX;
    }
    num.div_ceil(den).min(u64::MAX as u128) as u64
}

impl AdmissionController {
    /// Builds a controller on `clock`, registering its metrics in
    /// `registry` (pass the store's registry to merge with I/O counters).
    pub fn new(clock: SimClock, config: AdmissionConfig, registry: &MetricRegistry) -> Self {
        let bucket = |b: &ClassBudget| {
            Mutex::new(Bucket {
                tokens: b.burst as i128,
                last_refill_nanos: clock.now().0,
            })
        };
        AdmissionController {
            buckets: [
                bucket(&config.point_read),
                bucket(&config.traversal),
                bucket(&config.write),
            ],
            queue_lens: Default::default(),
            submitted: AtomicU64::new(0),
            admitted_n: AtomicU64::new(0),
            shed_overloaded: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            stale_n: AtomicU64::new(0),
            admitted_total: registry.counter(names::ADMIT_ADMITTED_TOTAL),
            shed_total: registry.counter(names::ADMIT_SHED_TOTAL),
            stale_reads_total: registry.counter(names::ADMIT_STALE_READS_TOTAL),
            queue_wait: registry.histogram(names::ADMIT_QUEUE_WAIT_LATENCY_NS),
            queue_depth_gauge: registry.gauge(names::ADMIT_QUEUE_DEPTH),
            clock,
            config,
        }
    }

    /// The configured budgets.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn refill(&self, class: OpClass, bucket: &mut Bucket) {
        let budget = self.config.budget(class);
        let now = self.clock.now().0;
        let elapsed = now.saturating_sub(bucket.last_refill_nanos);
        bucket.last_refill_nanos = now;
        if elapsed > 0 {
            let refill = (elapsed as u128 * budget.cost_per_sec as u128 / NANOS_PER_SEC) as i128;
            bucket.tokens = (bucket.tokens + refill).min(budget.burst as i128);
        }
    }

    fn queue_len_of(budget: &ClassBudget, tokens: i128) -> u64 {
        let backlog = (-tokens).max(0) as u128;
        div_ceil_u128(backlog, budget.expected_cost.max(1) as u128)
    }

    fn publish_queue_len(&self, class: OpClass, len: u64) {
        self.queue_lens[class.idx()].store(len, Ordering::Relaxed);
        let deepest = self
            .queue_lens
            .iter()
            .map(|q| q.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        self.queue_depth_gauge
            .set(deepest.min(i64::MAX as u64) as i64);
    }

    /// Offers one op of modelled `cost` to `class`. Returns the admission
    /// (with estimated queue wait) or the typed shed error.
    pub fn admit(&self, class: OpClass, cost: u64) -> StorageResult<Admitted> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let budget = *self.config.budget(class);
        let mut bucket = self.buckets[class.idx()].lock();
        self.refill(class, &mut bucket);

        let prospective = bucket.tokens - cost as i128;
        let backlog_cap = budget.backlog_cap() as i128;
        if prospective < -backlog_cap {
            // Queue full: shed with a retry hint sized to drain the
            // excess at the refill rate.
            let excess = (-prospective - backlog_cap) as u128;
            let retry_after =
                div_ceil_u128(excess * NANOS_PER_SEC, budget.cost_per_sec.max(1) as u128);
            let len = Self::queue_len_of(&budget, bucket.tokens);
            drop(bucket);
            self.publish_queue_len(class, len);
            self.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            self.shed_total.inc();
            return Err(StorageError::overloaded(retry_after));
        }

        let wait = if prospective < 0 {
            div_ceil_u128(
                (-prospective) as u128 * NANOS_PER_SEC,
                budget.cost_per_sec.max(1) as u128,
            )
        } else {
            0
        };
        if wait > budget.deadline_nanos {
            let len = Self::queue_len_of(&budget, bucket.tokens);
            drop(bucket);
            self.publish_queue_len(class, len);
            self.shed_deadline.fetch_add(1, Ordering::Relaxed);
            self.shed_total.inc();
            return Err(StorageError::deadline_exceeded(wait, budget.deadline_nanos));
        }

        bucket.tokens = prospective;
        let len = Self::queue_len_of(&budget, bucket.tokens);
        let pressure = if backlog_cap > 0 {
            ((-prospective).max(0) as f64) / backlog_cap as f64
        } else {
            0.0
        };
        drop(bucket);
        self.publish_queue_len(class, len);
        self.admitted_n.fetch_add(1, Ordering::Relaxed);
        self.admitted_total.inc();
        self.queue_wait.record(wait);
        bg3_obs::span::charge(bg3_obs::CostDim::AdmitWaitNanos, wait);
        Ok(Admitted {
            queue_wait_nanos: wait,
            pressure,
        })
    }

    /// Current virtual queue length of `class` (ops of expected cost).
    /// Structurally `≤ queue_depth` — the bounded-queue invariant the
    /// admission proptest checks.
    pub fn queue_len(&self, class: OpClass) -> u64 {
        let budget = self.config.budget(class);
        let mut bucket = self.buckets[class.idx()].lock();
        self.refill(class, &mut bucket);
        Self::queue_len_of(budget, bucket.tokens)
    }

    /// Current backlog pressure of `class` in `[0, 1]`.
    pub fn pressure(&self, class: OpClass) -> f64 {
        let budget = self.config.budget(class);
        let cap = budget.backlog_cap();
        if cap == 0 {
            return 0.0;
        }
        let mut bucket = self.buckets[class.idx()].lock();
        self.refill(class, &mut bucket);
        ((-bucket.tokens).max(0) as f64) / cap as f64
    }

    /// Records one read served stale off a replica.
    pub fn note_stale_read(&self) {
        self.stale_n.fetch_add(1, Ordering::Relaxed);
        self.stale_reads_total.inc();
    }

    /// Monotonic totals.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted_n.load(Ordering::Relaxed),
            shed_overloaded: self.shed_overloaded.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            stale_reads: self.stale_n.load(Ordering::Relaxed),
        }
    }
}

/// Degradation-ladder knobs for [`GovernedEngine`].
#[derive(Debug, Clone)]
pub struct GovernedConfig {
    /// Per-class token-bucket budgets.
    pub admission: AdmissionConfig,
    /// Backlog pressure (fraction of the bounded queue) at which reads go
    /// stale and traversals switch to the ceiling-capped executor.
    pub degrade_pressure: f64,
    /// Per-hop emission ceiling for degraded traversals (the executor
    /// truncates, never aborts).
    pub hop_cost_ceiling: usize,
    /// Fan-out per vertex for unbounded expansions in both executors.
    pub default_fanout: usize,
    /// Upper bound on the write-cost multiplier (group-commit + GC debt).
    pub write_throttle_cap: f64,
    /// GC debt (invalidated-but-not-relocated records) that adds 1.0× to
    /// the write-cost multiplier.
    pub gc_debt_norm: u64,
    /// `retry_after` hint attached to writes shed because the store's
    /// disk health is Full or Poisoned (ENOSPC graceful degradation).
    /// Sized to a GC reclaim cadence rather than a token-bucket drain:
    /// the disk recovers when reclaim frees an extent, not with time.
    pub disk_full_retry_after_nanos: u64,
}

impl Default for GovernedConfig {
    fn default() -> Self {
        GovernedConfig {
            admission: AdmissionConfig::default(),
            degrade_pressure: 0.5,
            hop_cost_ceiling: 16,
            default_fanout: 100,
            write_throttle_cap: 4.0,
            gc_debt_norm: 10_000,
            disk_full_retry_after_nanos: 5_000_000,
        }
    }
}

/// How an admitted op was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// A write acknowledged by the leader.
    Write,
    /// A point read; `stale` means it skipped the WAL catch-up poll.
    Read {
        /// Whether the key was present.
        present: bool,
        /// Served without polling replication first.
        stale: bool,
    },
    /// A traversal; `results` is the vertex/match count.
    Traversal {
        /// Result cardinality.
        results: u64,
        /// Served without polling replication first.
        stale: bool,
    },
}

/// The outcome of one governed op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Estimated admission queue wait (virtual ns).
    pub queue_wait_nanos: u64,
    /// Whether the degradation ladder was active for this op.
    pub degraded: bool,
    /// What was served.
    pub served: Served,
}

/// A replicated deployment behind admission control, implementing the
/// graceful-degradation ladder.
pub struct GovernedEngine {
    rep: ReplicatedBg3,
    admit: AdmissionController,
    exec_fresh: Executor,
    exec_degraded: Executor,
    next_ro: AtomicUsize,
    config: GovernedConfig,
    group_commit_pages: usize,
    /// Writes shed at admission because disk health was Full/Poisoned.
    enospc_sheds: Counter,
}

/// A [`GraphStore`] view over one RO replica (reads) and the leader
/// (writes) — what the governed executors traverse.
struct RoView<'a> {
    rep: &'a ReplicatedBg3,
    idx: usize,
}

impl GraphStore for RoView<'_> {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.rep.insert_edge(edge)
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        self.rep.ro_get_edge(self.idx, src, etype, dst)
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.rep.delete_edge(src, etype, dst)
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        self.rep.ro_neighbors_props(self.idx, src, etype, limit)
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.rep.insert_vertex(vertex)
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        self.rep.ro_get_vertex(self.idx, id)
    }
}

fn unwrap_query_err(err: QueryError) -> StorageError {
    match err {
        QueryError::Storage(e) => e,
        // Governed queries are built programmatically and always validate.
        other => unreachable!("governed query rejected: {other}"),
    }
}

impl GovernedEngine {
    /// Builds the deployment and its controller. Metrics land in the
    /// shared store's registry.
    pub fn new(replicated: ReplicatedConfig, config: GovernedConfig) -> Self {
        let group_commit_pages = replicated.rw.group_commit_pages.max(1);
        let rep = ReplicatedBg3::new(replicated);
        let registry = rep.store().stats().registry().clone();
        let admit =
            AdmissionController::new(rep.store().clock().clone(), config.admission, &registry);
        let exec_config = ExecutorConfig {
            default_fanout: config.default_fanout,
            ..ExecutorConfig::default()
        }
        .with_metrics(registry.clone());
        let exec_fresh = Executor::new(exec_config.clone());
        let exec_degraded =
            Executor::new(exec_config.with_hop_cost_ceiling(config.hop_cost_ceiling));
        let enospc_sheds = registry.counter(names::ENOSPC_SHEDS_TOTAL);
        GovernedEngine {
            rep,
            admit,
            exec_fresh,
            exec_degraded,
            next_ro: AtomicUsize::new(0),
            config,
            group_commit_pages,
            enospc_sheds,
        }
    }

    /// The underlying deployment.
    pub fn rep(&self) -> &ReplicatedBg3 {
        &self.rep
    }

    /// The admission controller.
    pub fn admission(&self) -> &AdmissionController {
        &self.admit
    }

    /// Current write-cost multiplier: 1 + group-commit debt + GC debt,
    /// capped. Group-commit debt is the leader's dirty-page count over its
    /// commit threshold; GC debt is invalidated-but-unrelocated records
    /// over `gc_debt_norm`.
    pub fn write_throttle(&self) -> f64 {
        let dirty = self.rep.rw_dirty_pages() as f64 / self.group_commit_pages as f64;
        let io = self.rep.store().stats().snapshot();
        let debt = io.invalidations.saturating_sub(io.relocation_moves) as f64
            / self.config.gc_debt_norm.max(1) as f64;
        (1.0 + dirty + debt).min(self.config.write_throttle_cap)
    }

    /// Modelled admission cost of `op`: the class's expected cost scaled
    /// by traversal depth, plus the write throttle for writes.
    pub fn op_cost(&self, op: &Op) -> u64 {
        let class = OpClass::of(op);
        let base = self.admit.config().budget(class).expected_cost;
        let scaled = match op {
            Op::KHop { hops, .. } => base.saturating_mul((*hops).max(1) as u64),
            Op::PatternCycle { length, .. } => base.saturating_mul((*length).max(1) as u64),
            _ => base,
        };
        if class == OpClass::Write {
            ((scaled as f64) * self.write_throttle()).round() as u64
        } else {
            scaled
        }
    }

    fn pick_ro(&self) -> usize {
        self.next_ro.fetch_add(1, Ordering::Relaxed) % self.rep.ro_count().max(1)
    }

    /// Prepares replica `idx` for a read: fresh mode catches the replica
    /// up through the WAL; degraded mode skips the poll and flags the
    /// replica (and the metrics) as serving stale.
    fn prep_read(&self, idx: usize, degraded: bool) -> StorageResult<()> {
        if degraded {
            self.rep.ro(idx).set_serving_stale(true);
            self.admit.note_stale_read();
        } else {
            self.rep.poll_all()?;
            self.rep.ro(idx).set_serving_stale(false);
        }
        Ok(())
    }

    /// Admits and executes one workload op, applying the degradation
    /// ladder. Shed ops return the typed `Overloaded`/`DeadlineExceeded`
    /// error without touching the engine.
    pub fn submit(&self, op: &Op) -> StorageResult<OpOutcome> {
        let class = OpClass::of(op);
        // ENOSPC graceful degradation: when the disk under the store is
        // Full (or its tail is Poisoned), writes shed *before* touching
        // the token bucket — accepting them could only fail deeper in the
        // stack. Reads and traversals keep flowing: serving the data that
        // is already durable needs no free space, and GC-driven reclaim
        // (which restores health) runs below admission entirely.
        if class == OpClass::Write && self.rep.store().disk_health().sheds_writes() {
            self.enospc_sheds.inc();
            return Err(StorageError::overloaded(
                self.config.disk_full_retry_after_nanos,
            ));
        }
        let cost = self.op_cost(op);
        let admitted = self.admit.admit(class, cost)?;
        let degraded = admitted.pressure >= self.config.degrade_pressure;
        let served = self.execute(op, degraded)?;
        Ok(OpOutcome {
            queue_wait_nanos: admitted.queue_wait_nanos,
            degraded,
            served,
        })
    }

    fn execute(&self, op: &Op, degraded: bool) -> StorageResult<Served> {
        match op {
            Op::InsertEdge {
                src,
                etype,
                dst,
                props,
            } => {
                self.rep.insert_edge(&Edge {
                    src: *src,
                    etype: *etype,
                    dst: *dst,
                    props: props.clone(),
                })?;
                Ok(Served::Write)
            }
            Op::DeleteEdge { src, etype, dst } => {
                self.rep.delete_edge(*src, *etype, *dst)?;
                Ok(Served::Write)
            }
            Op::CheckEdge { src, etype, dst } => {
                let idx = self.pick_ro();
                self.prep_read(idx, degraded)?;
                let present = self.rep.ro_check_edge(idx, *src, *etype, *dst)?;
                Ok(Served::Read {
                    present,
                    stale: degraded,
                })
            }
            Op::OneHop { src, etype, limit } => {
                let mut steps = vec![Step::V(vec![*src]), Step::Out(*etype)];
                if *limit != usize::MAX {
                    steps.push(Step::Limit(*limit));
                }
                self.run_traversal(Query { steps }, degraded)
            }
            Op::KHop {
                src, etype, hops, ..
            } => self.run_traversal(
                Query {
                    steps: vec![
                        Step::V(vec![*src]),
                        Step::Repeat {
                            inner: Box::new(Step::Out(*etype)),
                            times: (*hops).max(1),
                        },
                        Step::Count,
                    ],
                },
                degraded,
            ),
            Op::PatternCycle {
                anchor,
                etype,
                length,
            } => {
                let idx = self.pick_ro();
                self.prep_read(idx, degraded)?;
                let view = RoView {
                    rep: &self.rep,
                    idx,
                };
                // Degraded mode shrinks the expansion budget in step with
                // the traversal hop ceiling.
                let matcher = PatternMatcher {
                    candidate_cap: 8,
                    max_matches: 1,
                    max_expansions: if degraded {
                        self.config.hop_cost_ceiling.saturating_mul(8).max(8)
                    } else {
                        2_000
                    },
                };
                let found = matcher.has_cycle(
                    &view,
                    CycleQuery {
                        etype: *etype,
                        length: *length,
                    },
                    *anchor,
                )?;
                Ok(Served::Traversal {
                    results: found as u64,
                    stale: degraded,
                })
            }
        }
    }

    fn run_traversal(&self, query: Query, degraded: bool) -> StorageResult<Served> {
        let idx = self.pick_ro();
        self.prep_read(idx, degraded)?;
        let view = RoView {
            rep: &self.rep,
            idx,
        };
        let exec = if degraded {
            &self.exec_degraded
        } else {
            &self.exec_fresh
        };
        let results = match exec.run(&view, &query).map_err(unwrap_query_err)? {
            QueryResult::Count(n) => n,
            QueryResult::Vertices(v) => v.len() as u64,
            QueryResult::Values(v) => v.len() as u64,
            QueryResult::Paths(p) => p.len() as u64,
        };
        Ok(Served::Traversal {
            results,
            stale: degraded,
        })
    }
}

impl std::fmt::Debug for GovernedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GovernedEngine")
            .field("rep", &self.rep)
            .field("admission", &self.admit.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::StoreConfig;
    use bg3_sync::RwNodeConfig;

    fn tight_admission() -> AdmissionConfig {
        let budget = ClassBudget {
            cost_per_sec: 1_000_000,
            burst: 5_000,
            queue_depth: 8,
            expected_cost: 1_000,
            deadline_nanos: u64::MAX,
        };
        AdmissionConfig {
            point_read: budget,
            traversal: budget,
            write: budget,
        }
    }

    fn controller(config: AdmissionConfig) -> (SimClock, AdmissionController) {
        let clock = SimClock::new();
        let registry = MetricRegistry::new();
        let ctl = AdmissionController::new(clock.clone(), config, &registry);
        (clock, ctl)
    }

    #[test]
    fn bucket_sheds_overloaded_past_bounded_queue_and_refills() {
        let (clock, ctl) = controller(tight_admission());
        // burst 5k + backlog cap 8k = 13 ops of cost 1k before shedding.
        let mut admitted = 0;
        let mut first_err = None;
        for _ in 0..20 {
            match ctl.admit(OpClass::PointRead, 1_000) {
                Ok(_) => admitted += 1,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        assert_eq!(admitted, 13);
        let err = first_err.unwrap();
        assert!(err.is_overloaded() && err.is_retryable());
        let retry = err.retry_after_nanos().unwrap();
        assert!(retry > 0);
        // Queue length is pinned at the configured depth, never past it.
        assert_eq!(ctl.queue_len(OpClass::PointRead), 8);
        assert_eq!(ctl.pressure(OpClass::PointRead), 1.0);
        // Draining at cost_per_sec=1e6/s: 1ms refills 1000 units = 1 op.
        clock.advance_millis(1);
        assert!(ctl.admit(OpClass::PointRead, 1_000).is_ok());
        let snap = ctl.snapshot();
        assert_eq!(snap.submitted, 21);
        assert_eq!(snap.admitted + snap.shed(), snap.submitted);
        assert_eq!(snap.shed_overloaded, 7);
    }

    #[test]
    fn deadline_shed_fires_before_queue_fills() {
        let mut config = tight_admission();
        // Queue admits up to 8 expected-cost ops ≙ 8ms of wait at 1e6/s,
        // but the deadline only tolerates 2ms.
        config.point_read.deadline_nanos = 2_000_000;
        let (_clock, ctl) = controller(config);
        let mut deadline_sheds = 0;
        for _ in 0..13 {
            if let Err(e) = ctl.admit(OpClass::PointRead, 1_000) {
                assert!(e.is_overloaded());
                assert!(e.retry_after_nanos().is_none(), "deadline, not queue-full");
                deadline_sheds += 1;
            }
        }
        assert!(deadline_sheds > 0);
        assert_eq!(ctl.snapshot().shed_deadline, deadline_sheds);
        // The queue never reached its cap: deadline guards cut in first.
        assert!(ctl.queue_len(OpClass::PointRead) < 8);
    }

    #[test]
    fn classes_are_isolated() {
        let (_clock, ctl) = controller(tight_admission());
        while ctl.admit(OpClass::Write, 1_000).is_ok() {}
        assert!(ctl.admit(OpClass::Write, 1_000).is_err());
        // A saturated write class leaves reads untouched.
        assert!(ctl.admit(OpClass::PointRead, 1_000).is_ok());
        assert_eq!(ctl.queue_len(OpClass::PointRead), 0);
    }

    fn governed(config: GovernedConfig) -> GovernedEngine {
        GovernedEngine::new(
            ReplicatedConfig {
                store: StoreConfig::counting(),
                ro_nodes: 2,
                ..ReplicatedConfig::default()
            },
            config,
        )
    }

    fn seed_fanout(engine: &GovernedEngine, src: u64, n: u64) {
        for dst in 0..n {
            engine
                .rep()
                .insert_edge(&Edge::new(VertexId(src), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        engine.rep().poll_all().unwrap();
    }

    #[test]
    fn fresh_reads_poll_and_degraded_reads_go_stale() {
        let engine = governed(GovernedConfig {
            admission: tight_admission(),
            ..GovernedConfig::default()
        });
        seed_fanout(&engine, 7, 3);
        let check = Op::CheckEdge {
            src: VertexId(7),
            etype: EdgeType::FOLLOW,
            dst: VertexId(1),
        };
        // Idle: fresh, present.
        let out = engine.submit(&check).unwrap();
        assert_eq!(
            out.served,
            Served::Read {
                present: true,
                stale: false
            }
        );
        assert!(!out.degraded);
        // Drain the point-read bucket past 50% backlog: degraded reads.
        let mut saw_stale = false;
        for _ in 0..40 {
            match engine.submit(&check) {
                Ok(o) => {
                    if o.degraded {
                        assert_eq!(
                            o.served,
                            Served::Read {
                                present: true,
                                stale: true
                            }
                        );
                        saw_stale = true;
                    }
                }
                Err(e) => assert!(e.is_overloaded()),
            }
        }
        assert!(saw_stale, "pressure should push reads onto the stale rung");
        let snap = engine.admission().snapshot();
        assert!(snap.stale_reads > 0);
        assert_eq!(snap.submitted, snap.admitted + snap.shed());
        // The stale counter also lands in the shared registry.
        let metrics = engine.rep().store().metrics_snapshot();
        assert_eq!(
            metrics.counter(names::ADMIT_STALE_READS_TOTAL),
            Some(snap.stale_reads)
        );
        assert_eq!(metrics.counter(names::ADMIT_SHED_TOTAL), Some(snap.shed()));
    }

    #[test]
    fn degraded_traversals_truncate_at_the_hop_ceiling() {
        let engine = governed(GovernedConfig {
            admission: tight_admission(),
            degrade_pressure: 0.0, // every op rides the degraded rung
            hop_cost_ceiling: 5,
            ..GovernedConfig::default()
        });
        seed_fanout(&engine, 1, 50);
        let out = engine
            .submit(&Op::OneHop {
                src: VertexId(1),
                etype: EdgeType::FOLLOW,
                limit: usize::MAX,
            })
            .unwrap();
        assert!(out.degraded);
        assert_eq!(
            out.served,
            Served::Traversal {
                results: 5,
                stale: true
            }
        );
        let metrics = engine.rep().store().metrics_snapshot();
        assert!(metrics.counter(names::QUERY_HOP_TRUNCATIONS_TOTAL).unwrap() >= 1);
    }

    #[test]
    fn khop_runs_through_the_executor_on_both_rungs() {
        let engine = governed(GovernedConfig {
            admission: AdmissionConfig::default(),
            ..GovernedConfig::default()
        });
        // 1 → {2,3}, 2 → {4}, 3 → {4}.
        for (s, d) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4)] {
            engine
                .rep()
                .insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
        }
        engine.rep().poll_all().unwrap();
        let out = engine
            .submit(&Op::KHop {
                src: VertexId(1),
                etype: EdgeType::FOLLOW,
                hops: 2,
                fanout: 10,
            })
            .unwrap();
        // Two traversers reach vertex 4 (one per path).
        assert_eq!(
            out.served,
            Served::Traversal {
                results: 2,
                stale: false
            }
        );
    }

    #[test]
    fn write_throttle_rises_with_group_commit_debt() {
        let engine = GovernedEngine::new(
            ReplicatedConfig {
                store: StoreConfig::counting(),
                ro_nodes: 1,
                rw: RwNodeConfig {
                    group_commit_pages: 4,
                    ..RwNodeConfig::default()
                },
                ..ReplicatedConfig::default()
            },
            GovernedConfig::default(),
        );
        let idle_cost = engine.op_cost(&Op::InsertEdge {
            src: VertexId(1),
            etype: EdgeType::FOLLOW,
            dst: VertexId(2),
            props: vec![],
        });
        assert!((engine.write_throttle() - 1.0).abs() < 0.5);
        // Dirty pages accumulate between group commits; the multiplier
        // follows, capped.
        for dst in 0..200u64 {
            engine
                .rep()
                .insert_edge(&Edge::new(VertexId(dst), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        let throttled = engine.write_throttle();
        assert!(throttled >= 1.0);
        assert!(throttled <= engine.config.write_throttle_cap);
        let loaded_cost = engine.op_cost(&Op::InsertEdge {
            src: VertexId(1),
            etype: EdgeType::FOLLOW,
            dst: VertexId(2),
            props: vec![],
        });
        assert!(loaded_cost >= idle_cost);
    }

    #[test]
    fn full_disk_sheds_writes_but_keeps_reads_and_traversals_flowing() {
        use bg3_storage::DiskHealth;
        let engine = governed(GovernedConfig::default());
        seed_fanout(&engine, 5, 4);
        let write = Op::InsertEdge {
            src: VertexId(5),
            etype: EdgeType::FOLLOW,
            dst: VertexId(99),
            props: vec![],
        };
        let read = Op::CheckEdge {
            src: VertexId(5),
            etype: EdgeType::FOLLOW,
            dst: VertexId(1),
        };
        let traversal = Op::OneHop {
            src: VertexId(5),
            etype: EdgeType::FOLLOW,
            limit: usize::MAX,
        };

        for health in [DiskHealth::Full, DiskHealth::Poisoned] {
            engine.rep().store().disk_health_tracker().set(health);
            let err = engine.submit(&write).unwrap_err();
            assert!(err.is_overloaded(), "{health}: writes shed typed");
            assert_eq!(
                err.retry_after_nanos(),
                Some(engine.config.disk_full_retry_after_nanos),
                "{health}: the hint points at the reclaim cadence"
            );
            // The data plane that is already durable stays fully served.
            assert!(matches!(
                engine.submit(&read).unwrap().served,
                Served::Read { present: true, .. }
            ));
            assert!(matches!(
                engine.submit(&traversal).unwrap().served,
                Served::Traversal { results: 4, .. }
            ));
        }
        let metrics = engine.rep().store().metrics_snapshot();
        assert_eq!(metrics.counter(names::ENOSPC_SHEDS_TOTAL), Some(2));
        assert_eq!(
            metrics.gauge(names::DISK_HEALTH),
            Some(DiskHealth::Poisoned.level() as i64)
        );

        // Reclaim frees space (Full → NearFull): writes are admitted again
        // — they are the proof the disk recovered.
        engine
            .rep()
            .store()
            .disk_health_tracker()
            .set(DiskHealth::Full);
        engine.rep().store().disk_health_tracker().on_reclaim();
        assert_eq!(
            engine.rep().store().disk_health(),
            DiskHealth::NearFull,
            "reclaim steps the ladder down"
        );
        engine.submit(&write).unwrap();
        assert_eq!(
            engine
                .rep()
                .store()
                .metrics_snapshot()
                .counter(names::ENOSPC_SHEDS_TOTAL),
            Some(2),
            "no further sheds once reclaim freed space"
        );
    }

    #[test]
    fn deletes_are_writes_and_acked_deletes_stick() {
        let engine = governed(GovernedConfig::default());
        seed_fanout(&engine, 9, 2);
        engine
            .submit(&Op::DeleteEdge {
                src: VertexId(9),
                etype: EdgeType::FOLLOW,
                dst: VertexId(0),
            })
            .unwrap();
        engine.rep().poll_all().unwrap();
        let out = engine
            .submit(&Op::CheckEdge {
                src: VertexId(9),
                etype: EdgeType::FOLLOW,
                dst: VertexId(0),
            })
            .unwrap();
        assert_eq!(
            out.served,
            Served::Read {
                present: false,
                stale: false
            }
        );
    }
}
