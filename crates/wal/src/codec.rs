//! Binary codec for WAL records.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u64 lsn | u64 epoch | u64 tree | u64 page | u64 timestamp_nanos | u8 kind | body
//!
//! body by kind:
//!   0 Upsert            u32 key_len, key, u32 val_len, val
//!   1 Delete            u32 key_len, key
//!   2 PageImage         u32 image_len, image
//!   3 NewPage           u32 image_len, image
//!   4 Split             u64 right_page, u32 sep_len, sep
//!   5 CheckpointComplete u64 upto, u64 mapping_version
//!   6 ForestSplitOut    u32 group_len, group
//! ```
//!
//! The format is intentionally simple — it exists so the storage latency
//! model charges realistic byte counts, and so corrupted/truncated records
//! are detected instead of silently misread.

use crate::record::{Lsn, WalPayload, WalRecord};
use bg3_storage::SimInstant;
use std::fmt;

/// Errors raised while decoding a WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the record did.
    Truncated { needed: usize, remaining: usize },
    /// Unknown payload kind tag.
    UnknownKind(u8),
    /// The record decoded but `len` trailing bytes remain.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated record: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::UnknownKind(k) => write!(f, "unknown WAL record kind {k}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serializes a record into a fresh buffer.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&record.lsn.0.to_le_bytes());
    out.extend_from_slice(&record.epoch.to_le_bytes());
    out.extend_from_slice(&record.tree.to_le_bytes());
    out.extend_from_slice(&record.page.to_le_bytes());
    out.extend_from_slice(&record.timestamp.0.to_le_bytes());
    out.push(record.payload.kind_tag());
    match &record.payload {
        WalPayload::Upsert { key, value } => {
            put_bytes(&mut out, key);
            put_bytes(&mut out, value);
        }
        WalPayload::Delete { key } => put_bytes(&mut out, key),
        WalPayload::PageImage { image } | WalPayload::NewPage { image } => {
            put_bytes(&mut out, image)
        }
        WalPayload::Split {
            right_page,
            separator,
        } => {
            out.extend_from_slice(&right_page.to_le_bytes());
            put_bytes(&mut out, separator);
        }
        WalPayload::CheckpointComplete {
            upto,
            mapping_version,
        } => {
            out.extend_from_slice(&upto.to_le_bytes());
            out.extend_from_slice(&mapping_version.to_le_bytes());
        }
        WalPayload::ForestSplitOut { group } => put_bytes(&mut out, group),
    }
    out
}

/// Deserializes a record, requiring the buffer to contain exactly one record.
pub fn decode_record(buf: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    let lsn = Lsn(r.u64()?);
    let epoch = r.u64()?;
    let tree = r.u64()?;
    let page = r.u64()?;
    let timestamp = SimInstant(r.u64()?);
    let kind = r.u8()?;
    let payload = match kind {
        0 => WalPayload::Upsert {
            key: r.bytes()?,
            value: r.bytes()?,
        },
        1 => WalPayload::Delete { key: r.bytes()? },
        2 => WalPayload::PageImage { image: r.bytes()? },
        3 => WalPayload::NewPage { image: r.bytes()? },
        4 => WalPayload::Split {
            right_page: r.u64()?,
            separator: r.bytes()?,
        },
        5 => WalPayload::CheckpointComplete {
            upto: r.u64()?,
            mapping_version: r.u64()?,
        },
        6 => WalPayload::ForestSplitOut { group: r.bytes()? },
        other => return Err(CodecError::UnknownKind(other)),
    };
    if r.pos != buf.len() {
        return Err(CodecError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(WalRecord {
        lsn,
        epoch,
        tree,
        page,
        timestamp,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(payload: WalPayload) -> WalRecord {
        WalRecord {
            lsn: Lsn(31),
            epoch: 2,
            tree: 7,
            page: 12,
            timestamp: SimInstant(99_000),
            payload,
        }
    }

    #[test]
    fn round_trip_every_variant() {
        let variants = [
            WalPayload::Upsert {
                key: b"video:42".to_vec(),
                value: b"liked_at=170".to_vec(),
            },
            WalPayload::Delete {
                key: b"video:42".to_vec(),
            },
            WalPayload::PageImage {
                image: vec![1, 2, 3, 4, 5],
            },
            WalPayload::NewPage { image: vec![] },
            WalPayload::Split {
                right_page: 1234,
                separator: b"user:500".to_vec(),
            },
            WalPayload::CheckpointComplete {
                upto: 34,
                mapping_version: 0,
            },
            WalPayload::ForestSplitOut {
                group: b"user:7".to_vec(),
            },
        ];
        for payload in variants {
            let original = rec(payload);
            let encoded = encode_record(&original);
            let decoded = decode_record(&encoded).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let encoded = encode_record(&rec(WalPayload::Upsert {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        }));
        for cut in 0..encoded.len() {
            let err = decode_record(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut encoded = encode_record(&rec(WalPayload::CheckpointComplete {
            upto: 1,
            mapping_version: 0,
        }));
        encoded[40] = 250; // kind byte follows the five u64 header fields
        assert_eq!(decode_record(&encoded), Err(CodecError::UnknownKind(250)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = encode_record(&rec(WalPayload::Delete { key: vec![9] }));
        encoded.push(0);
        assert_eq!(decode_record(&encoded), Err(CodecError::TrailingBytes(1)));
    }
}
