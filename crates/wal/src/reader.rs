//! WAL reader (RO-node side).

use crate::codec::decode_record;
use crate::record::{Lsn, WalRecord};
use bg3_storage::{AppendOnlyStore, PageAddr, StorageError, StorageOp, StorageResult};
use parking_lot::RwLock;
use std::sync::Arc;

/// Tails the shared-storage WAL: each call to [`WalReader::fetch_new`]
/// returns (and charges the read cost of) every record appended since the
/// previous call. Each RO node owns one reader; its position is private.
pub struct WalReader {
    store: AppendOnlyStore,
    index: Arc<RwLock<Vec<PageAddr>>>,
    /// Next index position to read (== LSN of the next record minus one).
    next: usize,
}

impl WalReader {
    pub(crate) fn new(store: AppendOnlyStore, index: Arc<RwLock<Vec<PageAddr>>>) -> Self {
        WalReader {
            store,
            index,
            next: 0,
        }
    }

    /// The LSN this reader has consumed up to (exclusive of what a
    /// subsequent `fetch_new` would return).
    pub fn position(&self) -> Lsn {
        Lsn(self.next as u64)
    }

    /// Reads every record the writer has published since the last call.
    /// Records arrive in LSN order.
    ///
    /// If a read fails partway through a batch, the successfully read
    /// prefix is *delivered* rather than discarded — the reader's position
    /// only ever covers records the caller received. The error itself is
    /// returned only when nothing could be read; a persistent fault
    /// re-surfaces on the next call.
    pub fn fetch_new(&mut self) -> StorageResult<Vec<WalRecord>> {
        let addrs: Vec<PageAddr> = {
            let guard = self.index.read();
            guard[self.next.min(guard.len())..].to_vec()
        };
        let mut out = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let record = self.store.read(addr).and_then(|bytes| {
                decode_record(&bytes)
                    .map_err(|_| StorageError::corrupt_record(StorageOp::WalReplay, addr))
            });
            match record {
                Ok(record) => {
                    out.push(record);
                    self.next += 1;
                }
                Err(e) if out.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(out)
    }

    /// True if the writer has records this reader has not consumed.
    pub fn has_new(&self) -> bool {
        self.index.read().len() > self.next
    }
}

impl std::fmt::Debug for WalReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalReader")
            .field("position", &self.position())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalPayload;
    use crate::writer::WalWriter;
    use bg3_storage::{StoreBuilder, StoreConfig, StreamId};

    #[test]
    fn reader_sees_records_in_order_and_once() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let w = WalWriter::new(store);
        let mut r = w.open_reader();
        assert!(!r.has_new());
        assert!(r.fetch_new().unwrap().is_empty());

        for i in 0..3u64 {
            w.append(
                1,
                i,
                WalPayload::CheckpointComplete {
                    upto: i,
                    mapping_version: 0,
                },
            )
            .unwrap();
        }
        assert!(r.has_new());
        let batch = r.fetch_new().unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].lsn, Lsn(1));
        assert_eq!(batch[2].lsn, Lsn(3));
        assert_eq!(r.position(), Lsn(3));
        // Nothing new until the writer appends again.
        assert!(r.fetch_new().unwrap().is_empty());
        w.append(1, 9, WalPayload::Delete { key: vec![1] }).unwrap();
        assert_eq!(r.fetch_new().unwrap().len(), 1);
    }

    #[test]
    fn mid_batch_read_fault_delivers_the_prefix_without_losing_records() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // The 3rd WAL-stream read fails once. The batch must surface the
        // first two records; the rest arrive on the retry — none vanish.
        let plan = FaultPlan::seeded(7).with_rule(
            FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 1.0)
                .on_stream(StreamId::WAL)
                .after(2)
                .at_most(1),
        );
        let store = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let w = WalWriter::new(store);
        let mut r = w.open_reader();
        for i in 0..5u64 {
            w.append(
                1,
                i,
                WalPayload::CheckpointComplete {
                    upto: i,
                    mapping_version: 0,
                },
            )
            .unwrap();
        }
        let prefix = r.fetch_new().unwrap();
        assert_eq!(prefix.len(), 2, "prefix before the fault is delivered");
        assert_eq!(
            r.position(),
            Lsn(2),
            "position covers only delivered records"
        );
        let rest = r.fetch_new().unwrap();
        assert_eq!(rest.len(), 3, "retry resumes at the faulted record");
        assert_eq!(rest[0].lsn, Lsn(3));
        assert_eq!(r.position(), Lsn(5));
    }

    #[test]
    fn leading_read_fault_is_an_error_and_retries_cleanly() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::seeded(7).with_rule(
            FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 1.0)
                .on_stream(StreamId::WAL)
                .at_most(1),
        );
        let store = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let w = WalWriter::new(store);
        let mut r = w.open_reader();
        w.append(
            1,
            1,
            WalPayload::CheckpointComplete {
                upto: 0,
                mapping_version: 0,
            },
        )
        .unwrap();
        let err = r.fetch_new().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(r.position(), Lsn(0), "nothing consumed");
        assert_eq!(r.fetch_new().unwrap().len(), 1);
    }

    #[test]
    fn independent_readers_have_independent_positions() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let w = WalWriter::new(store);
        w.append(
            1,
            1,
            WalPayload::CheckpointComplete {
                upto: 0,
                mapping_version: 0,
            },
        )
        .unwrap();
        let mut r1 = w.open_reader();
        let mut r2 = w.open_reader();
        assert_eq!(r1.fetch_new().unwrap().len(), 1);
        w.append(
            1,
            2,
            WalPayload::CheckpointComplete {
                upto: 0,
                mapping_version: 0,
            },
        )
        .unwrap();
        assert_eq!(r1.fetch_new().unwrap().len(), 1);
        assert_eq!(r2.fetch_new().unwrap().len(), 2, "r2 reads from the start");
    }

    #[test]
    fn tailing_charges_storage_reads() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let w = WalWriter::new(store.clone());
        let mut r = w.open_reader();
        w.append(
            1,
            1,
            WalPayload::CheckpointComplete {
                upto: 0,
                mapping_version: 0,
            },
        )
        .unwrap();
        let before = store.stats().snapshot();
        r.fetch_new().unwrap();
        let delta = store.stats().snapshot().delta_since(&before);
        assert_eq!(delta.random_reads, 1, "RO pays for reading the log");
        let wal_bytes = store.stream_stats(StreamId::WAL).unwrap().valid_bytes;
        assert_eq!(delta.bytes_read, wal_bytes);
    }
}
