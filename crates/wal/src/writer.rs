//! WAL writer (RW-node side).

use crate::codec::encode_record;
use crate::record::{Lsn, WalPayload, WalRecord};
use crate::reader::WalReader;
use bg3_storage::{AppendOnlyStore, PageAddr, StorageResult, StreamId};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Appends records to the WAL stream of the shared store, assigning LSNs.
///
/// Durability contract (§3.4, Fig. 7 step (2)): `append` returns only after
/// the record is on the shared store, so a record's LSN being visible to a
/// reader implies the data survives RW-node failure.
///
/// There is one writer per log (single RW node per shard). Readers are
/// created with [`WalWriter::open_reader`] and tail the log independently.
pub struct WalWriter {
    store: AppendOnlyStore,
    /// Address of record with LSN `i+1` at index `i`. Shared with readers.
    index: Arc<RwLock<Vec<PageAddr>>>,
    /// Guards LSN assignment + append so the index stays LSN-ordered.
    tail: Mutex<Lsn>,
}

impl WalWriter {
    /// Creates a writer over `store`'s WAL stream, starting at LSN 1.
    pub fn new(store: AppendOnlyStore) -> Self {
        WalWriter {
            store,
            index: Arc::new(RwLock::new(Vec::new())),
            tail: Mutex::new(Lsn::ZERO),
        }
    }

    /// Appends a record; returns it with its assigned LSN once durable.
    pub fn append(&self, tree: u64, page: u64, payload: WalPayload) -> StorageResult<WalRecord> {
        let mut tail = self.tail.lock();
        let lsn = tail.next();
        let record = WalRecord {
            lsn,
            tree,
            page,
            timestamp: self.store.clock().now(),
            payload,
        };
        let encoded = encode_record(&record);
        let addr = self.store.append(StreamId::WAL, &encoded, lsn.0, None)?;
        // Publish to the reader index only after the store accepted it, and
        // while still holding the tail lock so positions match LSNs.
        self.index.write().push(addr);
        *tail = lsn;
        Ok(record)
    }

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if none).
    pub fn last_lsn(&self) -> Lsn {
        *self.tail.lock()
    }

    /// Creates a reader that tails this log from the beginning.
    pub fn open_reader(&self) -> WalReader {
        WalReader::new(self.store.clone(), Arc::clone(&self.index))
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("last_lsn", &self.last_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::StoreConfig;

    fn writer() -> WalWriter {
        WalWriter::new(AppendOnlyStore::new(StoreConfig::counting()))
    }

    #[test]
    fn lsns_are_dense_and_increasing() {
        let w = writer();
        for i in 1..=5u64 {
            let rec = w
                .append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
            assert_eq!(rec.lsn, Lsn(i));
        }
        assert_eq!(w.last_lsn(), Lsn(5));
    }

    #[test]
    fn records_are_durable_on_the_wal_stream() {
        let store = AppendOnlyStore::new(StoreConfig::counting());
        let w = WalWriter::new(store.clone());
        w.append(
            3,
            9,
            WalPayload::Upsert {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        )
        .unwrap();
        let stats = store.stream_stats(StreamId::WAL).unwrap();
        assert_eq!(stats.valid_records, 1);
        assert!(stats.valid_bytes > 33, "header + payload bytes on the store");
    }

    #[test]
    fn concurrent_appends_keep_index_ordered() {
        let w = Arc::new(writer());
        let mut handles = Vec::new();
        for t in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    w.append(t, i, WalPayload::CheckpointComplete { upto: 0 })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.last_lsn(), Lsn(200));
        let mut reader = w.open_reader();
        let records = reader.fetch_new().unwrap();
        let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, (1..=200).collect::<Vec<u64>>());
    }
}
