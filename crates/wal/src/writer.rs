//! WAL writer (RW-node side).

use crate::codec::{decode_record, encode_record};
use crate::reader::WalReader;
use crate::record::{Lsn, WalPayload, WalRecord};
use bg3_storage::{
    AppendOnlyStore, EpochFence, PageAddr, RetryPolicy, StorageError, StorageOp, StorageResult,
    StreamId, TraceKind, INITIAL_EPOCH,
};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Appends records to the WAL stream of the shared store, assigning LSNs.
///
/// Durability contract (§3.4, Fig. 7 step (2)): `append` returns only after
/// the record is on the shared store, so a record's LSN being visible to a
/// reader implies the data survives RW-node failure.
///
/// There is one writer per log (single RW node per shard). Readers are
/// created with [`WalWriter::open_reader`] and tail the log independently.
pub struct WalWriter {
    store: AppendOnlyStore,
    /// Address of record with LSN `i+1` at index `i`. Shared with readers.
    index: Arc<RwLock<Vec<PageAddr>>>,
    /// Guards LSN assignment + append so the index stays LSN-ordered.
    tail: Mutex<Lsn>,
    /// Retry policy for the underlying storage append: transient injected
    /// failures back off on the simulated clock and try again, so a flaky
    /// log stream costs latency rather than losing records.
    retry: RetryPolicy,
    /// Leadership epoch stamped into every record this writer appends.
    epoch: u64,
    /// Storage-side fencing token, when the log is fenced: appends carrying
    /// a sealed epoch are rejected before consuming an LSN, so a zombie
    /// leader can never interleave records with its successor.
    fence: Option<EpochFence>,
    /// How many appends may ride behind one WAL-tail fsync. `1` (the
    /// default) syncs on every append — the durable-on-return contract.
    /// Larger values batch fsyncs (group commit on the log tail); callers
    /// that batch must invoke [`WalWriter::flush`] at their durability
    /// points.
    group_sync_every: u64,
    /// Appends accepted since the last WAL-tail sync. Mutated only under
    /// the `tail` lock; atomic so observers can read it without locking.
    pending_sync: AtomicU64,
    /// Fsyncgate flag: set the first time a WAL-tail sync fails. After a
    /// failed fsync the kernel may already have discarded the dirty tail
    /// pages, so "retry the fsync" would silently drop the riders it
    /// claimed to cover. The writer therefore fails closed: every later
    /// append or flush returns [`bg3_storage::ErrorKind::SyncPoisoned`]
    /// and durability is re-derived by reopening the log with
    /// [`WalWriter::recover`].
    poisoned: AtomicBool,
}

impl WalWriter {
    /// Creates a writer over `store`'s WAL stream, starting at LSN 1.
    pub fn new(store: AppendOnlyStore) -> Self {
        WalWriter {
            store,
            index: Arc::new(RwLock::new(Vec::new())),
            tail: Mutex::new(Lsn::ZERO),
            retry: RetryPolicy::default(),
            epoch: INITIAL_EPOCH,
            fence: None,
            group_sync_every: 1,
            pending_sync: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Overrides the append retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Batches up to `every` appends behind one WAL-tail fsync (`0` is
    /// clamped to `1`). With `every > 1`, an append returns once the store
    /// accepted the bytes but possibly *before* they are synced; the
    /// durability point moves to the next batch boundary or explicit
    /// [`WalWriter::flush`].
    ///
    /// **The group-commit ack hole.** Between an accepted append and the
    /// group fsync that covers it, the record is *accepted but not
    /// durable*: a crash in that window may lose it, and that is within
    /// contract — the caller's durability point had not been reached. What
    /// the contract does guarantee is the boundary: every record at or
    /// below [`WalWriter::durable_lsn`] survives any crash, and once a
    /// group fsync *fails* no later append is ever acked (see `poisoned`).
    /// Riders of a failed group commit get the error, not an ack.
    pub fn with_group_sync_every(mut self, every: u64) -> Self {
        self.group_sync_every = every.max(1);
        self
    }

    /// Fences the log: this writer claims `epoch` and every append first
    /// verifies the claim against `fence` (shared with the mapping table,
    /// so one seal covers both planes).
    pub fn with_fence(mut self, fence: EpochFence, epoch: u64) -> Self {
        self.epoch = epoch;
        self.fence = Some(fence);
        self
    }

    /// The epoch this writer stamps into records.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Verifies this writer's epoch is still accepted by the fence. Callers
    /// use this to reject zombie work *before* mutating in-memory state
    /// (e.g. the leader's tree) that would then diverge from the log.
    pub fn check_fence(&self) -> StorageResult<()> {
        if let Some(fence) = &self.fence {
            if let Err(e) = fence.check(self.epoch, StorageOp::Append) {
                self.store.stats().record_fenced_append();
                self.store.trace().emit(
                    self.store.clock().now().0,
                    TraceKind::FenceRejectedAppend,
                    self.epoch,
                    fence.current(),
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// Reopens a writer over an existing WAL after a crash.
    ///
    /// The in-memory LSN index dies with the node, so the WAL stream is
    /// rescanned from shared storage (record tags carry the LSNs), the
    /// index is rebuilt, and the tail is positioned after the highest LSN.
    /// Returns the writer plus every surviving record in LSN order — the
    /// input to [`bg3-sync`]'s recovery replay.
    ///
    /// WAL records are never invalidated and relocation preserves tags, so
    /// LSNs are dense from 1; a gap means the stream is corrupt.
    pub fn recover(store: AppendOnlyStore) -> StorageResult<(Self, Vec<WalRecord>)> {
        let mut slots: Vec<(PageAddr, WalRecord)> = Vec::new();
        for (addr, tag, bytes) in store.scan_stream(StreamId::WAL)? {
            let record = decode_record(&bytes)
                .map_err(|_| StorageError::corrupt_record(StorageOp::WalReplay, addr))?;
            if record.lsn.0 != tag {
                return Err(StorageError::corrupt_record(StorageOp::WalReplay, addr));
            }
            slots.push((addr, record));
        }
        slots.sort_by_key(|(_, r)| r.lsn);
        let mut index = Vec::with_capacity(slots.len());
        let mut records = Vec::with_capacity(slots.len());
        for (i, (addr, record)) in slots.into_iter().enumerate() {
            if record.lsn.0 != i as u64 + 1 {
                return Err(StorageError::corrupt_record(StorageOp::WalReplay, addr));
            }
            index.push(addr);
            records.push(record);
        }
        let tail = Lsn(records.len() as u64);
        // Continue on the highest epoch the log has seen (promotions bump
        // it further via `with_fence`).
        let epoch = records
            .iter()
            .map(|r| r.epoch)
            .max()
            .unwrap_or(INITIAL_EPOCH);
        let writer = WalWriter {
            store,
            index: Arc::new(RwLock::new(index)),
            tail: Mutex::new(tail),
            retry: RetryPolicy::default(),
            epoch,
            fence: None,
            group_sync_every: 1,
            pending_sync: AtomicU64::new(0),
            // A fresh writer over on-disk frames starts unpoisoned: recovery
            // *is* the fsyncgate exit — durability was just re-derived from
            // what the disk actually holds.
            poisoned: AtomicBool::new(false),
        };
        Ok((writer, records))
    }

    /// Appends a record; returns it with its assigned LSN once durable.
    /// The LSN is only consumed if the append (eventually) succeeds.
    pub fn append(&self, tree: u64, page: u64, payload: WalPayload) -> StorageResult<WalRecord> {
        let mut tail = self.tail.lock();
        // Fsyncgate: a poisoned tail accepts nothing. Checked under the
        // tail lock so no append can slip past a concurrent poisoning.
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(StorageError::sync_poisoned(
                StorageOp::Append,
                StreamId::WAL,
            ));
        }
        // Fence check under the tail lock: a zombie append can neither
        // consume an LSN nor race a concurrent seal.
        self.check_fence()?;
        let lsn = tail.next();
        let record = WalRecord {
            lsn,
            epoch: self.epoch,
            tree,
            page,
            timestamp: self.store.clock().now(),
            payload,
        };
        let encoded = encode_record(&record);
        // Flush latency is the virtual-time delta around the (possibly
        // retried) durable append; the tail lock serialises appends, so the
        // delta is not polluted by concurrent writers advancing the clock.
        let started = self.store.clock().now();
        let addr = self.retry.run(self.store.clock(), || {
            self.store.append(StreamId::WAL, &encoded, lsn.0, None)
        })?;
        let flushed = self.store.clock().now();
        self.store
            .stats()
            .record_wal_flush_latency(flushed.duration_since(started));
        self.store
            .trace()
            .emit(flushed.0, TraceKind::WalAppend, lsn.0, self.epoch);
        // Group fsync on the log tail: sync once every
        // `group_sync_every` appends rather than per record. Still under
        // the tail lock, so the pending count cannot race.
        let pending = self.pending_sync.load(Ordering::Relaxed) + 1;
        if pending >= self.group_sync_every {
            if let Err(err) = self.store.sync_stream(StreamId::WAL) {
                // Failed group commit: no rider of this batch gets acked —
                // this record is not published to the index, the LSN tail
                // does not advance, and the writer poisons itself so the
                // fsync is never retried (the kernel may have dropped the
                // very pages a retry would claim to flush).
                self.poisoned.store(true, Ordering::Relaxed);
                return Err(err);
            }
            self.pending_sync.store(0, Ordering::Relaxed);
        } else {
            self.pending_sync.store(pending, Ordering::Relaxed);
        }
        // Publish to the reader index only after the store accepted it, and
        // while still holding the tail lock so positions match LSNs.
        self.index.write().push(addr);
        *tail = lsn;
        Ok(record)
    }

    /// Forces any appends batched behind the group-fsync window down to
    /// the backend. A no-op when nothing is pending. This is the explicit
    /// durability point for writers configured with
    /// [`WalWriter::with_group_sync_every`] greater than one.
    pub fn flush(&self) -> StorageResult<()> {
        let _tail = self.tail.lock();
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(StorageError::sync_poisoned(
                StorageOp::Append,
                StreamId::WAL,
            ));
        }
        if self.pending_sync.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        if let Err(err) = self.store.sync_stream(StreamId::WAL) {
            self.poisoned.store(true, Ordering::Relaxed);
            return Err(err);
        }
        self.pending_sync.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// True once a WAL-tail fsync has failed: the writer rejects all
    /// further appends/flushes until the log is reopened via
    /// [`WalWriter::recover`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Highest LSN covered by a successful WAL-tail sync — the acked
    /// durability boundary under group commit. Records above it are
    /// accepted but may not survive a crash.
    pub fn durable_lsn(&self) -> Lsn {
        let tail = self.tail.lock();
        Lsn(tail.0 - self.pending_sync.load(Ordering::Relaxed))
    }

    /// Appends accepted since the last WAL-tail sync (0 means the log tail
    /// is durable up to [`WalWriter::last_lsn`]).
    pub fn pending_sync(&self) -> u64 {
        self.pending_sync.load(Ordering::Relaxed)
    }

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if none).
    pub fn last_lsn(&self) -> Lsn {
        *self.tail.lock()
    }

    /// Creates a reader that tails this log from the beginning.
    pub fn open_reader(&self) -> WalReader {
        WalReader::new(self.store.clone(), Arc::clone(&self.index))
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("last_lsn", &self.last_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn writer() -> WalWriter {
        WalWriter::new(StoreBuilder::from_config(StoreConfig::counting()).build())
    }

    #[test]
    fn lsns_are_dense_and_increasing() {
        let w = writer();
        for i in 1..=5u64 {
            let rec = w
                .append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
            assert_eq!(rec.lsn, Lsn(i));
        }
        assert_eq!(w.last_lsn(), Lsn(5));
    }

    #[test]
    fn records_are_durable_on_the_wal_stream() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let w = WalWriter::new(store.clone());
        w.append(
            3,
            9,
            WalPayload::Upsert {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        )
        .unwrap();
        let stats = store.stream_stats(StreamId::WAL).unwrap();
        assert_eq!(stats.valid_records, 1);
        assert!(
            stats.valid_bytes > 33,
            "header + payload bytes on the store"
        );
    }

    #[test]
    fn recover_rebuilds_index_and_continues_lsns() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let w = WalWriter::new(store.clone());
        for i in 1..=4u64 {
            w.append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
        }
        drop(w); // the node dies; only the shared store survives

        let (w2, records) = WalWriter::recover(store).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(w2.last_lsn(), Lsn(4));
        let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4]);
        // New appends continue the sequence, and a fresh reader sees the
        // full log (old records included) through the rebuilt index.
        let rec = w2
            .append(1, 9, WalPayload::Delete { key: vec![9] })
            .unwrap();
        assert_eq!(rec.lsn, Lsn(5));
        let mut reader = w2.open_reader();
        assert_eq!(reader.fetch_new().unwrap().len(), 5);
    }

    #[test]
    fn recover_of_empty_store_starts_fresh() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let (w, records) = WalWriter::recover(store).unwrap();
        assert!(records.is_empty());
        assert_eq!(w.last_lsn(), Lsn::ZERO);
        assert_eq!(
            w.append(
                1,
                1,
                WalPayload::CheckpointComplete {
                    upto: 0,
                    mapping_version: 0
                }
            )
            .unwrap()
            .lsn,
            Lsn(1)
        );
    }

    #[test]
    fn fenced_writer_rejects_appends_after_seal() {
        use bg3_storage::EpochFence;
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let fence = EpochFence::new();
        let w = WalWriter::new(store.clone()).with_fence(fence.clone(), 1);
        assert_eq!(w.epoch(), 1);
        let rec = w.append(1, 1, WalPayload::Delete { key: vec![1] }).unwrap();
        assert_eq!(rec.epoch, 1);

        fence.seal(2).unwrap();
        let err = w
            .append(1, 2, WalPayload::Delete { key: vec![2] })
            .unwrap_err();
        assert!(err.is_fenced());
        assert_eq!(w.last_lsn(), Lsn(1), "zombie append consumed no LSN");
        assert_eq!(store.stats().snapshot().fenced_appends, 1);

        // A successor writer on the sealed-in epoch continues the log.
        let w2 = WalWriter::new(store.clone()).with_fence(fence, 2);
        // (Fresh writer: it would restart LSNs; real promotions go through
        // `recover`. Here we only care that its epoch passes the fence.)
        assert!(w2.check_fence().is_ok());
    }

    #[test]
    fn recover_adopts_the_highest_epoch_in_the_log() {
        use bg3_storage::EpochFence;
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let fence = EpochFence::new();
        let w = WalWriter::new(store.clone()).with_fence(fence.clone(), 1);
        w.append(1, 1, WalPayload::Delete { key: vec![1] }).unwrap();
        fence.seal(3).unwrap();
        let w2 = WalWriter::new(store.clone()).with_fence(fence, 3);
        // Manually continue the log at the next LSN via recover-free append
        // is not possible on a fresh writer; recover instead.
        drop(w2);
        let (recovered, records) = WalWriter::recover(store).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(recovered.epoch(), 1, "highest epoch present in the log");
        let rec = recovered
            .append(1, 2, WalPayload::Delete { key: vec![2] })
            .unwrap();
        assert_eq!(rec.epoch, 1);
    }

    #[test]
    fn default_writer_syncs_every_append() {
        let w = writer();
        for i in 1..=3u64 {
            w.append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
            assert_eq!(w.pending_sync(), 0, "durable-on-return by default");
        }
    }

    #[test]
    fn group_sync_batches_and_flush_drains() {
        let w = writer().with_group_sync_every(4);
        for i in 1..=3u64 {
            w.append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
            assert_eq!(w.pending_sync(), i);
        }
        // The 4th append crosses the batch boundary and syncs.
        w.append(1, 4, WalPayload::Delete { key: vec![4] }).unwrap();
        assert_eq!(w.pending_sync(), 0);
        // Partial batch, then an explicit flush drains it.
        w.append(1, 5, WalPayload::Delete { key: vec![5] }).unwrap();
        assert_eq!(w.pending_sync(), 1);
        w.flush().unwrap();
        assert_eq!(w.pending_sync(), 0);
        w.flush().unwrap(); // idempotent when nothing is pending
    }

    #[test]
    fn failed_group_fsync_poisons_the_writer_and_acks_no_riders() {
        use bg3_storage::{
            ErrorKind, FaultBackend, FaultKind, FaultOp, FaultPlan, FaultRule, IoErrorClass,
            SimBackend,
        };
        let inner = Arc::new(SimBackend::new());
        // Exactly one sync failure: the first WAL-tail fsync dies.
        let plan = FaultPlan::seeded(7)
            .with_rule(FaultRule::new(FaultOp::Sync, FaultKind::SyncFail, 1.0).at_most(1));
        let faulty = Arc::new(FaultBackend::new(inner.clone(), plan));
        let store = StoreBuilder::counting().backend(faulty).build();
        let w = WalWriter::new(store.clone()).with_group_sync_every(2);

        // Rider 1 is accepted behind the group window; rider 2 crosses the
        // batch boundary and triggers the doomed fsync.
        w.append(1, 1, WalPayload::Delete { key: vec![1] }).unwrap();
        let err = w
            .append(1, 2, WalPayload::Delete { key: vec![2] })
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                ErrorKind::Io {
                    class: IoErrorClass::SyncFailed,
                    ..
                }
            ),
            "the failing rider sees the sync error itself: {err:?}"
        );
        assert!(!err.is_retryable(), "a failed fsync is never retried");
        assert!(w.is_poisoned());
        assert_eq!(w.last_lsn(), Lsn(1), "the failed rider was never acked");
        assert_eq!(w.durable_lsn(), Lsn::ZERO, "no fsync ever succeeded");

        // Every later append and flush fails closed with SyncPoisoned.
        for attempt in [
            w.append(1, 3, WalPayload::Delete { key: vec![3] })
                .unwrap_err(),
            w.flush().unwrap_err(),
        ] {
            assert!(
                matches!(attempt.kind, ErrorKind::SyncPoisoned { .. }),
                "poisoned tail fails closed: {attempt:?}"
            );
        }
        // Reads keep working: the published prefix is still servable.
        let mut reader = w.open_reader();
        assert_eq!(reader.fetch_new().unwrap().len(), 1);

        // Fresh open over the surviving media re-derives durability from
        // on-disk frames. The unacked rider 2 *was* written before the
        // fsync failed, so recovery may resurrect it — durable ⊆ recovered
        // ⊆ accepted is the contract.
        drop(w);
        drop(store);
        let reopened = StoreBuilder::counting().backend(inner).build();
        let (w2, records) = WalWriter::recover(reopened).unwrap();
        assert_eq!(records.len(), 2, "accepted frames survive on the media");
        assert!(!w2.is_poisoned(), "recovery is the fsyncgate exit");
        assert_eq!(
            w2.append(1, 9, WalPayload::Delete { key: vec![9] })
                .unwrap()
                .lsn,
            Lsn(3)
        );
    }

    #[test]
    fn crash_in_the_group_commit_window_loses_only_unacked_riders() {
        let backend = Arc::new(bg3_storage::SimBackend::new());
        let store = StoreBuilder::counting().backend(backend.clone()).build();
        let w = WalWriter::new(store.clone()).with_group_sync_every(3);
        for i in 1..=5u64 {
            w.append(1, i, WalPayload::Delete { key: vec![i as u8] })
                .unwrap();
        }
        assert_eq!(w.last_lsn(), Lsn(5), "all five accepted");
        assert_eq!(
            w.durable_lsn(),
            Lsn(3),
            "only the first batch crossed its fsync boundary"
        );

        // Crash in the ack hole: the unsynced tail after LSN 3 is torn at
        // the media level (the kernel never flushed those pages).
        let addr4 = store
            .scan_stream(StreamId::WAL)
            .unwrap()
            .into_iter()
            .find(|(_, tag, _)| *tag == 4)
            .unwrap()
            .0;
        store.corrupt_record_bit(addr4, 40).unwrap();
        drop(w);
        drop(store);

        // Recovery keeps exactly the durable prefix: LSNs above
        // `durable_lsn` were never acked as durable, so losing them is
        // within contract; losing anything at or below it would not be.
        let reopened = StoreBuilder::counting().backend(backend).build();
        let (w2, records) = WalWriter::recover(reopened).unwrap();
        let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, vec![1, 2, 3], "acked/unacked boundary is exact");
        assert_eq!(w2.last_lsn(), Lsn(3));
        assert_eq!(
            w2.append(1, 6, WalPayload::Delete { key: vec![6] })
                .unwrap()
                .lsn,
            Lsn(4),
            "the log continues from the durable prefix"
        );
    }

    #[test]
    fn concurrent_appends_keep_index_ordered() {
        let w = Arc::new(writer());
        let mut handles = Vec::new();
        for t in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    w.append(
                        t,
                        i,
                        WalPayload::CheckpointComplete {
                            upto: 0,
                            mapping_version: 0,
                        },
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.last_lsn(), Lsn(200));
        let mut reader = w.open_reader();
        let records = reader.fetch_new().unwrap();
        let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, (1..=200).collect::<Vec<u64>>());
    }
}
