//! # bg3-wal
//!
//! The write-ahead log BG3 uses for I/O-efficient leader-follower
//! synchronization (§3.4 of the paper).
//!
//! The RW node records every in-memory Bw-tree mutation — upserts, deletes,
//! consolidations, splits — as a WAL record and appends it to the shared
//! store *before* acknowledging the write (Fig. 7 step (2)). RO nodes tail
//! the log (step (3)), cache records in a page-indexed log area, and replay
//! them lazily when a page is actually brought into memory (steps (4)/(6)).
//! After the background flush publishes a new mapping-table version, the RW
//! node appends a [`WalPayload::CheckpointComplete`] record (step (8)) and
//! ROs discard replay entries at or below that LSN.
//!
//! Records use a compact hand-rolled binary codec ([`codec`]) — the log is
//! the hottest write path in the system and every byte appended is charged
//! by the storage latency model.

pub mod codec;
pub mod reader;
pub mod record;
pub mod writer;

pub use codec::{decode_record, encode_record, CodecError};
pub use reader::WalReader;
pub use record::{Lsn, WalPayload, WalRecord};
pub use writer::WalWriter;
