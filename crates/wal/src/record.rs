//! WAL record types.

use bg3_storage::SimInstant;
use std::fmt;

/// Log sequence number. Strictly increasing per [`crate::WalWriter`];
/// the paper's Fig. 7 example uses LSNs 30..=34.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN, smaller than every real record.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// The logical content of one WAL record.
///
/// Page-scoped payloads (`Upsert`, `Delete`, `PageImage`, `NewPage`, `Split`)
/// carry the tree and page they apply to in the enclosing [`WalRecord`];
/// RO nodes index their in-memory log area by that page id (§3.4,
/// "I/O Efficiency").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// A key/value written into the page's delta.
    Upsert { key: Vec<u8>, value: Vec<u8> },
    /// A key deleted from the page.
    Delete { key: Vec<u8> },
    /// The page was consolidated/rewritten; `image` is its full new content
    /// in the Bw-tree page codec.
    PageImage { image: Vec<u8> },
    /// A brand-new page (e.g. the right half of a split, or a new root).
    /// RO nodes create it directly in memory — the old mapping cannot
    /// contain it (Fig. 7 step (6), page Q).
    NewPage { image: Vec<u8> },
    /// The page split: keys `>= separator` moved to `right_page`.
    Split { right_page: u64, separator: Vec<u8> },
    /// Shared storage now reflects every modification up to (and including)
    /// LSN `upto`: the dirty pages were flushed and the mapping table
    /// published as `mapping_version`. ROs may discard lazy-replay records
    /// with LSN `<= upto`, and must adopt exactly `mapping_version` for
    /// cold reads — the live table may already run ahead of their replay.
    CheckpointComplete { upto: u64, mapping_version: u64 },
    /// The forest committed a split-out: the enclosing record's `tree` is
    /// now the dedicated tree for `group`. Logged *after* the copy and the
    /// INIT-tree deletes, so a crash mid-split-out leaves the INIT tree
    /// authoritative and the half-built tree an ignorable orphan.
    ForestSplitOut { group: Vec<u8> },
}

impl WalPayload {
    /// Numeric tag used by the codec.
    pub(crate) fn kind_tag(&self) -> u8 {
        match self {
            WalPayload::Upsert { .. } => 0,
            WalPayload::Delete { .. } => 1,
            WalPayload::PageImage { .. } => 2,
            WalPayload::NewPage { .. } => 3,
            WalPayload::Split { .. } => 4,
            WalPayload::CheckpointComplete { .. } => 5,
            WalPayload::ForestSplitOut { .. } => 6,
        }
    }

    /// Whether the payload mutates a specific page (and therefore belongs in
    /// an RO node's page-indexed log area).
    pub fn is_page_scoped(&self) -> bool {
        !matches!(
            self,
            WalPayload::CheckpointComplete { .. } | WalPayload::ForestSplitOut { .. }
        )
    }
}

/// One WAL record: an LSN, the tree/page it applies to, a timestamp from the
/// RW node's clock (used to measure leader-follower latency), and the
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number assigned by the writer.
    pub lsn: Lsn,
    /// Leadership epoch of the writer (fencing token). Monotonically
    /// non-decreasing along the log; a record with a *lower* epoch than one
    /// before it is a zombie artifact and must be ignored by replay.
    pub epoch: u64,
    /// Bw-tree the record belongs to (forest member id).
    pub tree: u64,
    /// Page the record applies to (0 for records that are not page-scoped).
    pub page: u64,
    /// RW-node clock time when the record was created.
    pub timestamp: SimInstant,
    /// Logical content.
    pub payload: WalPayload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(1).next(), Lsn(2));
        assert_eq!(Lsn::ZERO.next(), Lsn(1));
        assert_eq!(Lsn(7).to_string(), "lsn:7");
    }

    #[test]
    fn page_scoped_classification() {
        assert!(WalPayload::Upsert {
            key: vec![],
            value: vec![]
        }
        .is_page_scoped());
        assert!(WalPayload::Split {
            right_page: 1,
            separator: vec![]
        }
        .is_page_scoped());
        assert!(!WalPayload::CheckpointComplete {
            upto: 3,
            mapping_version: 0
        }
        .is_page_scoped());
        assert!(!WalPayload::ForestSplitOut { group: vec![7] }.is_page_scoped());
    }

    #[test]
    fn kind_tags_are_distinct() {
        let payloads = [
            WalPayload::Upsert {
                key: vec![1],
                value: vec![2],
            },
            WalPayload::Delete { key: vec![1] },
            WalPayload::PageImage { image: vec![] },
            WalPayload::NewPage { image: vec![] },
            WalPayload::Split {
                right_page: 9,
                separator: vec![3],
            },
            WalPayload::CheckpointComplete {
                upto: 1,
                mapping_version: 0,
            },
            WalPayload::ForestSplitOut { group: vec![4] },
        ];
        let mut tags: Vec<u8> = payloads.iter().map(|p| p.kind_tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), payloads.len());
    }
}
