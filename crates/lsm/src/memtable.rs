//! The in-memory write buffer.

use std::collections::BTreeMap;

/// A sorted write buffer. `None` values are tombstones, which must survive
/// until compaction has dropped every older version of the key.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers an upsert.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Buffers a delete (tombstone).
    pub fn delete(&mut self, key: &[u8]) {
        self.insert(key.to_vec(), None);
    }

    fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let added = key.len() + value.as_ref().map_or(0, |v| v.len()) + 32;
        if let Some(old) = self.entries.insert(key, value) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
        } else {
            self.approx_bytes += added;
            return;
        }
        self.approx_bytes += added;
    }

    /// Looks the key up. `Some(None)` means "deleted here" — the caller must
    /// not fall through to older data.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of buffered entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rough heap usage, the flush trigger.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drains the memtable into a sorted run for SSTable construction.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Iterates entries in `start..end` (end exclusive, `None` = unbounded).
    pub fn range<'a>(
        &'a self,
        start: Option<&'a [u8]>,
        end: Option<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a {
        use std::ops::Bound;
        let lo = start.map_or(Bound::Unbounded, Bound::Included);
        let hi = end.map_or(Bound::Unbounded, Bound::Excluded);
        self.entries
            .range::<[u8], _>((lo, hi))
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(b"k", b"v1");
        m.put(b"k", b"v2");
        assert_eq!(m.get(b"k"), Some(Some(&b"v2"[..])));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_shadow_values() {
        let mut m = Memtable::new();
        m.put(b"k", b"v");
        m.delete(b"k");
        assert_eq!(m.get(b"k"), Some(None), "deleted-here marker");
        assert_eq!(m.get(b"other"), None, "never seen");
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut m = Memtable::new();
        m.put(b"b", b"2");
        m.put(b"a", b"1");
        m.delete(b"c");
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn approx_bytes_tracks_growth() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key", &[0u8; 100]);
        let after_one = m.approx_bytes();
        assert!(after_one >= 103);
        m.put(b"key2", &[0u8; 100]);
        assert!(m.approx_bytes() > after_one);
    }

    #[test]
    fn range_respects_bounds() {
        let mut m = Memtable::new();
        for k in [b"a", b"b", b"c", b"d"] {
            m.put(k, b"v");
        }
        let hits: Vec<&[u8]> = m.range(Some(b"b"), Some(b"d")).map(|(k, _)| k).collect();
        assert_eq!(hits, vec![&b"b"[..], &b"c"[..]]);
        assert_eq!(m.range(None, None).count(), 4);
    }
}
