//! The leveled LSM engine.

use crate::memtable::Memtable;
use crate::sstable::SsTable;
use bg3_storage::{AppendOnlyStore, StorageResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// LSM tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable once it buffers this many bytes.
    pub memtable_flush_bytes: usize,
    /// Compact L0 into L1 once it accumulates this many runs.
    pub l0_compaction_threshold: usize,
    /// Target byte size of L1; each deeper level is `level_size_multiplier`
    /// times larger.
    pub level_base_bytes: usize,
    /// Size ratio between adjacent levels.
    pub level_size_multiplier: usize,
    /// Maximum number of levels (L0 included).
    pub max_levels: usize,
    /// Account a commit-log write for every flushed batch (a production
    /// LSM's WAL). Only affects I/O accounting, not recovery semantics —
    /// the simulated store never crashes.
    pub wal_enabled: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_flush_bytes: 64 * 1024,
            l0_compaction_threshold: 4,
            level_base_bytes: 256 * 1024,
            level_size_multiplier: 10,
            max_levels: 6,
            wal_enabled: true,
        }
    }
}

impl LsmConfig {
    /// Small limits so tests exercise flush/compaction quickly.
    pub fn tiny() -> Self {
        LsmConfig {
            memtable_flush_bytes: 1024,
            l0_compaction_threshold: 2,
            level_base_bytes: 4 * 1024,
            level_size_multiplier: 4,
            max_levels: 4,
            wal_enabled: true,
        }
    }
}

struct LsmInner {
    memtable: Memtable,
    /// `levels[0]` holds overlapping runs, newest first. Deeper levels hold
    /// non-overlapping runs sorted by key range.
    levels: Vec<Vec<SsTable>>,
}

/// Counters describing the engine's I/O behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStatsSnapshot {
    /// Memtable flushes (SSTable builds from the write path).
    pub flushes: u64,
    /// Compaction rounds executed.
    pub compactions: u64,
    /// Bytes read + rewritten by compaction — the LSM's write amplification.
    pub compaction_bytes: u64,
    /// Point lookups served.
    pub gets: u64,
    /// SSTables actually probed on storage (post bloom/fence filtering).
    /// `sst_probes / gets` is the engine's read amplification.
    pub sst_probes: u64,
}

/// A leveled LSM key-value store over the shared store's SST stream.
pub struct LsmKv {
    store: AppendOnlyStore,
    config: LsmConfig,
    inner: RwLock<LsmInner>,
    next_table: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    compaction_bytes: AtomicU64,
    gets: AtomicU64,
    sst_probes: AtomicU64,
}

impl LsmKv {
    /// Creates an empty engine.
    pub fn new(store: AppendOnlyStore, config: LsmConfig) -> Self {
        let levels = (0..config.max_levels).map(|_| Vec::new()).collect();
        LsmKv {
            store,
            config,
            inner: RwLock::new(LsmInner {
                memtable: Memtable::new(),
                levels,
            }),
            next_table: AtomicU64::new(1),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_bytes: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            sst_probes: AtomicU64::new(0),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let mut inner = self.inner.write();
        inner.memtable.put(key, value);
        self.maybe_flush(&mut inner)
    }

    /// Deletes a key.
    pub fn delete(&self, key: &[u8]) -> StorageResult<()> {
        let mut inner = self.inner.write();
        inner.memtable.delete(key);
        self.maybe_flush(&mut inner)
    }

    fn maybe_flush(&self, inner: &mut LsmInner) -> StorageResult<()> {
        if inner.memtable.approx_bytes() < self.config.memtable_flush_bytes {
            return Ok(());
        }
        self.flush_locked(inner)
    }

    /// Forces the memtable to disk (used by tests and shutdown paths).
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.write();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut LsmInner) -> StorageResult<()> {
        let run = inner.memtable.drain_sorted();
        if self.config.wal_enabled {
            // Commit-log accounting: every buffered byte was first made
            // durable in the WAL (like any production LSM's write path).
            let wal_bytes: usize = run
                .iter()
                .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()) + 12)
                .sum();
            if wal_bytes > 0 {
                let payload = vec![0u8; wal_bytes.min(self.store.extent_capacity())];
                self.store
                    .append(bg3_storage::StreamId::WAL, &payload, 0, None)?;
            }
        }
        // Chunk oversized runs so no table outgrows an extent.
        let max_chunk = (self.store.extent_capacity() / 2).max(1024);
        let mut chunk: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        let mut size = 0usize;
        let mut tables = Vec::new();
        for (k, v) in run {
            size += k.len() + v.as_ref().map_or(0, |v| v.len()) + 9;
            chunk.push((k, v));
            if size >= max_chunk {
                let id = self.next_table.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = SsTable::build(id, &self.store, &chunk)? {
                    tables.push(t);
                }
                chunk.clear();
                size = 0;
            }
        }
        if !chunk.is_empty() {
            let id = self.next_table.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = SsTable::build(id, &self.store, &chunk)? {
                tables.push(t);
            }
        }
        if !tables.is_empty() {
            // Newest first within L0; chunks of one flush don't overlap, so
            // relative order among them is irrelevant.
            for t in tables {
                inner.levels[0].insert(0, t);
            }
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        self.maybe_compact(inner)
    }

    /// Compacts L0 when it has too many runs, then cascades level-size
    /// triggers downward.
    fn maybe_compact(&self, inner: &mut LsmInner) -> StorageResult<()> {
        if inner.levels[0].len() >= self.config.l0_compaction_threshold {
            self.compact_into(inner, 0)?;
        }
        for level in 1..self.config.max_levels - 1 {
            let target = self.config.level_base_bytes
                * self.config.level_size_multiplier.pow(level as u32 - 1);
            let size: usize = inner.levels[level].iter().map(|t| t.data_bytes()).sum();
            if size > target {
                self.compact_into(inner, level)?;
            }
        }
        Ok(())
    }

    /// Merges every run of `level` with the overlapping runs of `level+1`
    /// into fresh non-overlapping runs placed in `level+1`.
    fn compact_into(&self, inner: &mut LsmInner, level: usize) -> StorageResult<()> {
        let upper: Vec<SsTable> = std::mem::take(&mut inner.levels[level]);
        if upper.is_empty() {
            return Ok(());
        }
        let min = upper.iter().map(|t| t.min_key().to_vec()).min().unwrap();
        let max = upper.iter().map(|t| t.max_key().to_vec()).max().unwrap();
        let (overlapping, disjoint): (Vec<SsTable>, Vec<SsTable>) =
            std::mem::take(&mut inner.levels[level + 1])
                .into_iter()
                .partition(|t| t.overlaps(&min, &max));

        // Oldest-to-newest apply order: deeper level first, then the upper
        // level's runs from oldest (back) to newest (front).
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut bytes = 0u64;
        for table in overlapping.iter().chain(upper.iter().rev()) {
            bytes += table.data_bytes() as u64;
            for (k, v) in table.load(&self.store)? {
                merged.insert(k, v);
            }
        }
        // Drop tombstones if nothing lives below the output level.
        let is_bottom = inner.levels[level + 2..].iter().all(|l| l.is_empty());
        let run: Vec<(Vec<u8>, Option<Vec<u8>>)> = merged
            .into_iter()
            .filter(|(_, v)| !(is_bottom && v.is_none()))
            .collect();

        // Chunk the output into bounded tables so no single SSTable
        // outgrows the target run size (or the store's extent capacity).
        let chunk_bytes = self
            .config
            .level_base_bytes
            .min(self.store.extent_capacity() / 2)
            .max(1024);
        let mut next = disjoint;
        let mut chunk: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        let mut chunk_size = 0usize;
        let mut flush_chunk =
            |chunk: &mut Vec<(Vec<u8>, Option<Vec<u8>>)>, bytes: &mut u64| -> StorageResult<()> {
                if chunk.is_empty() {
                    return Ok(());
                }
                let id = self.next_table.fetch_add(1, Ordering::Relaxed);
                if let Some(table) = SsTable::build(id, &self.store, chunk)? {
                    *bytes += table.data_bytes() as u64;
                    next.push(table);
                }
                chunk.clear();
                Ok(())
            };
        for (k, v) in run {
            chunk_size += k.len() + v.as_ref().map_or(0, |v| v.len()) + 9;
            chunk.push((k, v));
            if chunk_size >= chunk_bytes {
                flush_chunk(&mut chunk, &mut bytes)?;
                chunk_size = 0;
            }
        }
        flush_chunk(&mut chunk, &mut bytes)?;
        #[allow(clippy::drop_non_drop)]
        drop(flush_chunk); // release the borrow of `next`
        next.sort_by(|a, b| a.min_key().cmp(b.min_key()));
        inner.levels[level + 1] = next;
        for table in upper.iter().chain(overlapping.iter()) {
            table.retire(&self.store)?;
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Point lookup: memtable, then L0 newest-first, then one candidate per
    /// deeper level. Every SSTable probe costs a random storage read.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        if let Some(hit) = inner.memtable.get(key) {
            return Ok(hit.map(|v| v.to_vec()));
        }
        for (level, tables) in inner.levels.iter().enumerate() {
            let candidates: Vec<&SsTable> = if level == 0 {
                tables.iter().filter(|t| t.may_contain(key)).collect()
            } else {
                tables
                    .iter()
                    .find(|t| t.covers(key))
                    .filter(|t| t.may_contain(key))
                    .into_iter()
                    .collect()
            };
            for table in candidates {
                self.sst_probes.fetch_add(1, Ordering::Relaxed);
                if let Some(hit) = table.get(&self.store, key)? {
                    return Ok(hit);
                }
            }
        }
        Ok(None)
    }

    /// Range scan `[start, end)` (both optional), up to `limit` entries.
    /// Loads every overlapping run — the LSM result-merging cost §2.4
    /// describes.
    pub fn scan(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        limit: usize,
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.read();
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let in_range = |k: &[u8]| start.is_none_or(|s| k >= s) && end.is_none_or(|e| k < e);
        // Oldest to newest: deepest level first, L0 back-to-front, memtable
        // last, so newer versions overwrite older ones.
        for tables in inner.levels.iter().rev() {
            for table in tables.iter().rev() {
                let scan_min = start.unwrap_or(&[]);
                if let Some(e) = end {
                    if !table.overlaps(scan_min, e) {
                        continue;
                    }
                } else if table.max_key() < scan_min {
                    continue;
                }
                self.sst_probes.fetch_add(1, Ordering::Relaxed);
                for (k, v) in table.load(&self.store)? {
                    if in_range(&k) {
                        merged.insert(k, v);
                    }
                }
            }
        }
        for (k, v) in inner.memtable.range(start, end) {
            merged.insert(k.to_vec(), v.map(|v| v.to_vec()));
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .take(limit)
            .collect())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LsmStatsSnapshot {
        LsmStatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_bytes: self.compaction_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            sst_probes: self.sst_probes.load(Ordering::Relaxed),
        }
    }

    /// Number of live SSTables per level (diagnostics).
    pub fn level_table_counts(&self) -> Vec<usize> {
        self.inner.read().levels.iter().map(|l| l.len()).collect()
    }

    /// Estimated memory held by table handles and the memtable.
    pub fn memory_footprint(&self) -> usize {
        let inner = self.inner.read();
        inner.memtable.approx_bytes()
            + inner
                .levels
                .iter()
                .flatten()
                .map(|t| t.heap_bytes())
                .sum::<usize>()
    }
}

impl std::fmt::Debug for LsmKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmKv")
            .field("levels", &self.level_table_counts())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn engine() -> LsmKv {
        LsmKv::new(
            StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20))
                .build(),
            LsmConfig::tiny(),
        )
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:05}").into_bytes()
    }

    #[test]
    fn put_get_across_flushes() {
        let e = engine();
        for i in 0..500u32 {
            e.put(&key(i), format!("value{i}").as_bytes()).unwrap();
        }
        assert!(e.stats().flushes > 0, "memtable flushed");
        for i in (0..500).step_by(17) {
            assert_eq!(
                e.get(&key(i)).unwrap(),
                Some(format!("value{i}").into_bytes()),
                "key {i}"
            );
        }
        assert_eq!(e.get(b"missing").unwrap(), None);
    }

    #[test]
    fn latest_version_wins_across_levels() {
        let e = engine();
        for round in 0..5u32 {
            for i in 0..100u32 {
                e.put(&key(i), format!("round{round}").as_bytes()).unwrap();
            }
        }
        for i in (0..100).step_by(7) {
            assert_eq!(e.get(&key(i)).unwrap(), Some(b"round4".to_vec()));
        }
    }

    #[test]
    fn deletes_survive_compaction() {
        let e = engine();
        for i in 0..200u32 {
            e.put(&key(i), b"v").unwrap();
        }
        for i in (0..200).step_by(2) {
            e.delete(&key(i)).unwrap();
        }
        e.flush().unwrap();
        for i in 0..200u32 {
            let expect = if i % 2 == 0 {
                None
            } else {
                Some(b"v".to_vec())
            };
            assert_eq!(e.get(&key(i)).unwrap(), expect, "key {i}");
        }
    }

    #[test]
    fn compaction_triggers_and_reclaims_old_tables() {
        let e = engine();
        for i in 0..2000u32 {
            e.put(&key(i % 300), &[i as u8; 32]).unwrap();
        }
        let stats = e.stats();
        assert!(stats.compactions > 0, "compaction ran");
        assert!(stats.compaction_bytes > 0);
        // Old tables were retired: store should show invalidations.
        assert!(e.store().stats().snapshot().invalidations > 0);
    }

    #[test]
    fn read_amplification_exceeds_one_with_overlapping_runs() {
        let e = engine();
        // Build overlapping L0 runs over the same key range.
        for round in 0..3u32 {
            for i in 0..60u32 {
                e.put(&key(i), format!("r{round}").as_bytes()).unwrap();
            }
            e.flush().unwrap();
        }
        let before = e.stats();
        for i in 0..60u32 {
            e.get(&key(i)).unwrap();
        }
        let after = e.stats();
        let probes = after.sst_probes - before.sst_probes;
        let gets = after.gets - before.gets;
        assert!(
            probes >= gets,
            "multi-run probing: {probes} probes for {gets} gets"
        );
    }

    #[test]
    fn scan_merges_levels_and_filters_tombstones() {
        let e = engine();
        for i in 0..100u32 {
            e.put(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        e.delete(&key(50)).unwrap();
        e.flush().unwrap();
        let hits = e.scan(Some(&key(40)), Some(&key(60)), usize::MAX).unwrap();
        assert_eq!(hits.len(), 19, "20 keys minus 1 tombstone");
        assert!(hits.iter().all(|(k, _)| k != &key(50)));
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = e.scan(None, None, 7).unwrap();
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn scan_sees_unflushed_writes() {
        let e = engine();
        e.put(b"a", b"1").unwrap();
        let hits = e.scan(None, None, usize::MAX).unwrap();
        assert_eq!(hits, vec![(b"a".to_vec(), b"1".to_vec())]);
    }

    #[test]
    fn deeper_levels_are_non_overlapping() {
        let e = engine();
        for i in 0..3000u32 {
            e.put(&key(i), &[0u8; 16]).unwrap();
        }
        e.flush().unwrap();
        let inner = e.inner.read();
        for (level, tables) in inner.levels.iter().enumerate().skip(1) {
            for pair in tables.windows(2) {
                assert!(
                    pair[0].max_key() < pair[1].min_key(),
                    "L{level} runs overlap"
                );
            }
        }
    }
}
