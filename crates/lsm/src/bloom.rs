//! A compact bloom filter for SSTable probes.
//!
//! Uses the standard double-hashing scheme (`h1 + i*h2`) over an FNV-1a
//! base hash — no cryptographic strength required, just uniformity.

/// Bloom filter sized at construction for a target bits-per-key budget.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl BloomFilter {
    /// Builds a filter for `expected_keys` keys at `bits_per_key` bits each.
    /// 10 bits/key gives ~1% false positives with 7 hashes.
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_keys.max(1) * bits_per_key).max(64);
        // Optimal hash count: ln2 * bits/key, clamped to something sane.
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 8);
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            num_hashes,
        }
    }

    fn positions(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15) | 1;
        let num_bits = self.num_bits as u64;
        (0..self.num_hashes as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % num_bits) as usize)
    }

    /// Records `key` in the filter.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
    }

    /// True if `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.positions(key)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Heap bytes used by the bit array.
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_found() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_le_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        let false_positives = (10_000u32..20_000)
            .filter(|i| f.may_contain(&i.to_le_bytes()))
            .count();
        // Expect ~1%; allow generous slack for the simple hash.
        assert!(
            false_positives < 500,
            "false positive rate too high: {false_positives}/10000"
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(100, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn tiny_filters_are_still_valid() {
        let mut f = BloomFilter::new(0, 10);
        f.insert(b"x");
        assert!(f.may_contain(b"x"));
        assert!(f.heap_bytes() >= 8);
    }
}
