//! SSTables: immutable sorted runs on the shared store.
//!
//! The table's data lives on the store's SST stream (one record per table);
//! the handle kept in memory carries only the key range, entry count, and
//! bloom filter — so probing a table for a key always costs one random
//! storage read, as in a real LSM with a cold block cache.

use crate::bloom::BloomFilter;
use bg3_storage::{AppendOnlyStore, PageAddr, StorageResult, StreamId};

/// A sorted run of `(key, value-or-tombstone)` entries.
pub type Run = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// Entry codec: `u32 count | (u32 klen, k, u8 has_value, [u32 vlen, v])*`.
fn encode_run(entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        4 + entries
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()) + 9)
            .sum::<usize>(),
    );
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (k, v) in entries {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(k);
        match v {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }
    out
}

fn decode_run(buf: &[u8]) -> Option<Run> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        if buf.len() - *pos < n {
            return None;
        }
        let out = &buf[*pos..*pos + n];
        *pos += n;
        Some(out)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let klen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let k = take(&mut pos, klen)?.to_vec();
        let has_value = take(&mut pos, 1)?[0];
        let v = if has_value == 1 {
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            Some(take(&mut pos, vlen)?.to_vec())
        } else {
            None
        };
        entries.push((k, v));
    }
    (pos == buf.len()).then_some(entries)
}

/// Immutable sorted run. Tombstones are retained (value `None`).
#[derive(Debug, Clone)]
pub struct SsTable {
    /// Unique table id (for debugging / stats).
    pub id: u64,
    addr: PageAddr,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
    entry_count: usize,
    data_bytes: usize,
    bloom: BloomFilter,
}

impl SsTable {
    /// Builds a table from a sorted, key-unique run and persists it.
    /// Returns `None` for an empty run.
    pub fn build(
        id: u64,
        store: &AppendOnlyStore,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> StorageResult<Option<SsTable>> {
        if entries.is_empty() {
            return Ok(None);
        }
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut bloom = BloomFilter::new(entries.len(), 10);
        for (k, _) in entries {
            bloom.insert(k);
        }
        let image = encode_run(entries);
        let addr = store.append(StreamId::SST, &image, id, None)?;
        Ok(Some(SsTable {
            id,
            addr,
            min_key: entries.first().unwrap().0.clone(),
            max_key: entries.last().unwrap().0.clone(),
            entry_count: entries.len(),
            data_bytes: image.len(),
            bloom,
        }))
    }

    /// Key range check — free, uses the in-memory fence keys.
    pub fn covers(&self, key: &[u8]) -> bool {
        self.min_key.as_slice() <= key && key <= self.max_key.as_slice()
    }

    /// Bloom probe — free, in-memory.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.covers(key) && self.bloom.may_contain(key)
    }

    /// True if this table's key range intersects `[other_min, other_max]`.
    pub fn overlaps(&self, other_min: &[u8], other_max: &[u8]) -> bool {
        self.min_key.as_slice() <= other_max && other_min <= self.max_key.as_slice()
    }

    /// Smallest key in the table.
    pub fn min_key(&self) -> &[u8] {
        &self.min_key
    }

    /// Largest key in the table.
    pub fn max_key(&self) -> &[u8] {
        &self.max_key
    }

    /// Number of entries (including tombstones).
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Size of the persisted image in bytes.
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Looks the key up, reading the table's data from the store (one
    /// random read). `Ok(Some(None))` is a tombstone hit.
    #[allow(clippy::type_complexity)]
    pub fn get(
        &self,
        store: &AppendOnlyStore,
        key: &[u8],
    ) -> StorageResult<Option<Option<Vec<u8>>>> {
        let entries = self.load(store)?;
        Ok(entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| entries[i].1.clone()))
    }

    /// Reads and decodes the full run from the store.
    pub fn load(&self, store: &AppendOnlyStore) -> StorageResult<Run> {
        let bytes = store.read(self.addr)?;
        Ok(decode_run(&bytes).expect("store returned a valid SSTable image"))
    }

    /// Invalidates the table's storage record (after compaction replaced it).
    pub fn retire(&self, store: &AppendOnlyStore) -> StorageResult<()> {
        store.invalidate(self.addr)
    }

    /// In-memory footprint of the handle (fences + bloom).
    pub fn heap_bytes(&self) -> usize {
        self.min_key.len() + self.max_key.len() + self.bloom.heap_bytes() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn store() -> AppendOnlyStore {
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(1 << 20)).build()
    }

    fn run(n: u32) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let v = if i % 5 == 4 {
                    None // sprinkle tombstones
                } else {
                    Some(format!("value{i}").into_bytes())
                };
                (format!("key{i:04}").into_bytes(), v)
            })
            .collect()
    }

    #[test]
    fn build_get_round_trip() {
        let s = store();
        let entries = run(100);
        let t = SsTable::build(1, &s, &entries).unwrap().unwrap();
        assert_eq!(t.entry_count(), 100);
        assert_eq!(
            t.get(&s, b"key0000").unwrap(),
            Some(Some(b"value0".to_vec()))
        );
        assert_eq!(t.get(&s, b"key0004").unwrap(), Some(None), "tombstone");
        assert_eq!(t.get(&s, b"nope").unwrap(), None);
    }

    #[test]
    fn empty_run_builds_nothing() {
        assert!(SsTable::build(1, &store(), &[]).unwrap().is_none());
    }

    #[test]
    fn covers_and_overlaps_use_fences() {
        let s = store();
        let t = SsTable::build(1, &s, &run(10)).unwrap().unwrap();
        assert!(t.covers(b"key0005"));
        assert!(!t.covers(b"aaa"));
        assert!(!t.covers(b"zzz"));
        assert!(t.overlaps(b"key0008", b"zzz"));
        assert!(!t.overlaps(b"x", b"z"));
        assert!(t.overlaps(b"a", b"z"));
    }

    #[test]
    fn bloom_short_circuits_misses() {
        let s = store();
        let t = SsTable::build(1, &s, &run(1000)).unwrap().unwrap();
        let before = s.stats().snapshot();
        // In-range but absent keys: bloom should reject nearly all without
        // touching storage.
        let mut probed = 0;
        for i in 0..1000u32 {
            let key = format!("key{i:04}x").into_bytes();
            if t.may_contain(&key) {
                probed += 1;
            }
        }
        assert!(probed < 100, "bloom filtered most misses ({probed})");
        assert_eq!(
            s.stats().snapshot().random_reads,
            before.random_reads,
            "may_contain never reads storage"
        );
    }

    #[test]
    fn each_get_costs_one_read_request() {
        let s = store();
        let t = SsTable::build(1, &s, &run(50)).unwrap().unwrap();
        let before = s.stats().snapshot();
        t.get(&s, b"key0001").unwrap();
        t.get(&s, b"key0002").unwrap();
        let delta = s.stats().snapshot().delta_since(&before);
        // One read request per get; the page cache may serve repeats of
        // the same table block from memory, but never more than one
        // request is issued per lookup.
        assert_eq!(delta.random_reads + delta.cache_hits, 2);
        assert!(delta.random_reads >= 1, "the cold block came from storage");
    }

    #[test]
    fn retire_invalidates_storage() {
        let s = store();
        let t = SsTable::build(1, &s, &run(10)).unwrap().unwrap();
        t.retire(&s).unwrap();
        assert_eq!(s.stats().snapshot().invalidations, 1);
        assert!(t.retire(&s).is_err(), "double retire");
    }
}
