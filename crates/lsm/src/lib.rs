//! # bg3-lsm
//!
//! A leveled LSM-tree key-value engine, built as the persistence substrate
//! for the **ByteGraph baseline** (§2 of the BG3 paper). ByteGraph layers a
//! B-tree-like in-memory edge index over a distributed LSM KV store; BG3's
//! central claim is that replacing this layer with Bw-trees over shared
//! storage removes the LSM read path's multi-level probing and compaction
//! cost (§2.4).
//!
//! The engine is deliberately conventional:
//!
//! * a sorted **memtable** with tombstones, flushed when full,
//! * **SSTables** persisted to the shared store's SST stream, each with an
//!   in-memory index entry (key range, bloom filter) and its data on
//!   storage — so every probe of a table costs a random storage read,
//! * an overlapping **L0** plus sorted-run levels **L1..** with size-tiered
//!   leveled compaction,
//! * a **bloom filter** per table to short-circuit misses.
//!
//! The read path probes memtable → L0 (newest first) → deeper levels, which
//! is exactly the "massive I/O to scan through multiple layers" BG3
//! motivates against; the I/O counters of the underlying store quantify it.

pub mod bloom;
pub mod engine;
pub mod memtable;
pub mod sstable;

pub use bloom::BloomFilter;
pub use engine::{LsmConfig, LsmKv, LsmStatsSnapshot};
pub use memtable::Memtable;
pub use sstable::SsTable;
