//! Logical planning: turns a validated [`Query`] into an executable
//! [`Plan`] with a few classic rewrites.
//!
//! * **Dedup fusion** — consecutive `dedup()` steps collapse into one.
//! * **Limit pushdown** — `out(e).limit(n)` (with nothing order-sensitive
//!   between them) becomes a bounded expansion: the executor stops
//!   expanding once `n` traversers exist, instead of materializing the
//!   full fan-out of a super-vertex and discarding most of it. This is the
//!   practical difference between touching one Bw-tree page and scanning a
//!   celebrity's whole adjacency list.
//! * **Limit fusion** — consecutive limits keep the smallest.

use crate::ast::{Query, Step};
use bg3_graph::{EdgeType, VertexId};

/// Traversal direction of an expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Out-edges.
    Out,
    /// In-edges via the reverse index.
    In,
    /// Both directions.
    Both,
}

/// One executable step. Mirrors [`Step`] but expansions carry an inline
/// bound when a limit was pushed down, and `repeat` is unrolled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedStep {
    /// Source vertices.
    Source(Vec<VertexId>),
    /// Expansion along `etype` in direction `dir`; `bound` caps the number
    /// of surviving traversers (pushed-down limit).
    Expand {
        /// Edge type to follow.
        etype: EdgeType,
        /// Traversal direction.
        dir: Dir,
        /// Stop expanding once this many traversers exist.
        bound: Option<usize>,
    },
    /// Keep only traversers whose head exists in the vertex table.
    HasVertex,
    /// Head-vertex dedup.
    Dedup,
    /// Explicit limit (not pushed into an expansion).
    Limit(usize),
    /// Sort by head vertex id.
    Order,
    /// Terminal: count.
    Count,
    /// Terminal: head vertices + properties.
    Values,
    /// Terminal: full paths.
    Path,
}

/// An optimized, executable pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Steps in execution order.
    pub steps: Vec<PlannedStep>,
}

/// Optimizes a validated query.
pub fn optimize(query: &Query) -> Plan {
    // 1. Translate; `repeat` unrolls into consecutive expansions.
    fn expand_of(step: &Step) -> PlannedStep {
        match step {
            Step::Out(e) => PlannedStep::Expand {
                etype: *e,
                dir: Dir::Out,
                bound: None,
            },
            Step::In(e) => PlannedStep::Expand {
                etype: *e,
                dir: Dir::In,
                bound: None,
            },
            Step::Both(e) => PlannedStep::Expand {
                etype: *e,
                dir: Dir::Both,
                bound: None,
            },
            other => unreachable!("validated expansion step, got {other:?}"),
        }
    }
    let mut steps: Vec<PlannedStep> = Vec::with_capacity(query.steps.len());
    for s in &query.steps {
        match s {
            Step::V(ids) => steps.push(PlannedStep::Source(ids.clone())),
            Step::Out(_) | Step::In(_) | Step::Both(_) => steps.push(expand_of(s)),
            Step::Repeat { inner, times } => {
                for _ in 0..*times {
                    steps.push(expand_of(inner));
                }
            }
            Step::HasVertex => steps.push(PlannedStep::HasVertex),
            Step::Dedup => steps.push(PlannedStep::Dedup),
            Step::Limit(n) => steps.push(PlannedStep::Limit(*n)),
            Step::Order => steps.push(PlannedStep::Order),
            Step::Count => steps.push(PlannedStep::Count),
            Step::Values => steps.push(PlannedStep::Values),
            Step::Path => steps.push(PlannedStep::Path),
        }
    }

    // 2. Fuse consecutive dedups and consecutive limits.
    let mut fused: Vec<PlannedStep> = Vec::with_capacity(steps.len());
    for step in steps.drain(..) {
        match (&step, fused.last_mut()) {
            (PlannedStep::Dedup, Some(PlannedStep::Dedup)) => {}
            (PlannedStep::Limit(n), Some(PlannedStep::Limit(m))) => *m = (*m).min(*n),
            _ => fused.push(step),
        }
    }

    // 3. Push `Limit(n)` into a directly preceding expansion. Only safe
    //    when the limit immediately follows the expansion: any intervening
    //    dedup/order changes which traversers survive.
    let mut pushed: Vec<PlannedStep> = Vec::with_capacity(fused.len());
    for step in fused {
        match (&step, pushed.last_mut()) {
            (PlannedStep::Limit(n), Some(PlannedStep::Expand { bound, .. })) => {
                *bound = Some(bound.map_or(*n, |b| b.min(*n)));
            }
            _ => pushed.push(step),
        }
    }
    Plan { steps: pushed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_of(text: &str) -> Plan {
        optimize(&parse(text).unwrap())
    }

    #[test]
    fn limit_pushes_into_expansion() {
        let plan = plan_of("g.V(1).out(follow).limit(5)");
        assert_eq!(
            plan.steps,
            vec![
                PlannedStep::Source(vec![bg3_graph::VertexId(1)]),
                PlannedStep::Expand {
                    etype: EdgeType::FOLLOW,
                    dir: Dir::Out,
                    bound: Some(5),
                },
            ]
        );
    }

    #[test]
    fn limit_does_not_cross_dedup_or_order() {
        let plan = plan_of("g.V(1).out(follow).dedup().limit(5)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand { bound: None, .. }
        ));
        assert_eq!(plan.steps[3], PlannedStep::Limit(5));

        let plan = plan_of("g.V(1).out(follow).order().limit(5)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand { bound: None, .. }
        ));
    }

    #[test]
    fn consecutive_dedups_and_limits_fuse() {
        let plan = plan_of("g.V(1).dedup().dedup().limit(9).limit(4)");
        assert_eq!(
            plan.steps,
            vec![
                PlannedStep::Source(vec![bg3_graph::VertexId(1)]),
                PlannedStep::Dedup,
                PlannedStep::Limit(4),
            ]
        );
    }

    #[test]
    fn pushed_bounds_take_the_minimum() {
        let plan = plan_of("g.V(1).out(like).limit(9).limit(3)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand { bound: Some(3), .. }
        ));
    }

    #[test]
    fn in_becomes_reverse_expansion() {
        let plan = plan_of("g.V(1).in(like)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand {
                dir: Dir::In,
                etype: EdgeType::LIKE,
                ..
            }
        ));
    }

    #[test]
    fn repeat_unrolls_into_expansions() {
        let plan = plan_of("g.V(1).repeat(out(follow), 3).dedup()");
        assert_eq!(plan.steps.len(), 5, "source + 3 expands + dedup");
        for i in 1..=3 {
            assert!(matches!(
                plan.steps[i],
                PlannedStep::Expand {
                    dir: Dir::Out,
                    etype: EdgeType::FOLLOW,
                    bound: None,
                }
            ));
        }
    }

    #[test]
    fn limit_pushes_into_the_last_unrolled_hop() {
        let plan = plan_of("g.V(1).repeat(out(follow), 2).limit(4)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand { bound: None, .. }
        ));
        assert!(matches!(
            plan.steps[2],
            PlannedStep::Expand { bound: Some(4), .. }
        ));
    }

    #[test]
    fn both_becomes_bidirectional_expansion() {
        let plan = plan_of("g.V(1).both(follow)");
        assert!(matches!(
            plan.steps[1],
            PlannedStep::Expand { dir: Dir::Both, .. }
        ));
    }
}
