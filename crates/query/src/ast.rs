//! Query AST.

use bg3_graph::{EdgeType, VertexId};

/// One traversal step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Start traversers at the given vertices (must be the first step).
    V(Vec<VertexId>),
    /// Expand every traverser along out-edges of `etype`.
    Out(EdgeType),
    /// Expand along in-edges of `etype` (requires the engine to maintain
    /// the reverse index — see [`crate::reverse_etype`]).
    In(EdgeType),
    /// Expand along both directions of `etype` (out-edges plus the reverse
    /// index), deduplicating the per-traverser neighbor set.
    Both(EdgeType),
    /// Apply `inner` (an expansion step) `times` times — the paper's
    /// multi-hop queries, e.g. `repeat(out(follow), 3)` for 3-hop.
    Repeat {
        /// The expansion to apply each round (`Out`/`In`/`Both`).
        inner: Box<Step>,
        /// Number of rounds.
        times: usize,
    },
    /// Keep only traversers whose head vertex exists in the vertex table.
    HasVertex,
    /// Drop traversers whose head vertex was already seen.
    Dedup,
    /// Keep only the first `n` traversers.
    Limit(usize),
    /// Sort traversers by head vertex id, ascending.
    Order,
    /// Terminal: the number of traversers.
    Count,
    /// Terminal: head vertices with their vertex properties.
    Values,
    /// Terminal: the full path (start → … → head) of every traverser.
    Path,
}

impl Step {
    /// Terminal steps end the pipeline.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Step::Count | Step::Values | Step::Path)
    }
}

/// A parsed query: a `V(...)` source followed by steps, optionally ending
/// in a terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The pipeline, starting with [`Step::V`].
    pub steps: Vec<Step>,
}

impl Query {
    /// Validates the structural rules: starts with `V`, `V` appears only
    /// first, terminals only last.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.steps.first(), Some(Step::V(_))) {
            return Err("query must start with V(...)".into());
        }
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 && matches!(step, Step::V(_)) {
                return Err("V(...) may only appear first".into());
            }
            if step.is_terminal() && i + 1 != self.steps.len() {
                return Err(format!("{step:?} must be the final step"));
            }
            if let Step::Repeat { inner, .. } = step {
                if !matches!(**inner, Step::Out(_) | Step::In(_) | Step::Both(_)) {
                    return Err("repeat(...) only accepts an expansion step".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rules() {
        let ok = Query {
            steps: vec![
                Step::V(vec![VertexId(1)]),
                Step::Out(EdgeType::FOLLOW),
                Step::Dedup,
                Step::Count,
            ],
        };
        assert!(ok.validate().is_ok());

        let no_source = Query {
            steps: vec![Step::Out(EdgeType::FOLLOW)],
        };
        assert!(no_source.validate().is_err());

        let mid_v = Query {
            steps: vec![Step::V(vec![VertexId(1)]), Step::V(vec![VertexId(2)])],
        };
        assert!(mid_v.validate().is_err());

        let mid_terminal = Query {
            steps: vec![Step::V(vec![VertexId(1)]), Step::Count, Step::Limit(3)],
        };
        assert!(mid_terminal.validate().is_err());
    }

    #[test]
    fn terminal_classification() {
        assert!(Step::Count.is_terminal());
        assert!(Step::Values.is_terminal());
        assert!(Step::Path.is_terminal());
        assert!(!Step::Dedup.is_terminal());
        assert!(!Step::Out(EdgeType::LIKE).is_terminal());
    }
}
