//! Plan execution over any [`GraphStore`].
//!
//! Expansion runs in one of two modes:
//!
//! * **Batched (default)** — morsel-driven: each `Expand` step gathers the
//!   whole frontier's neighbor lists through one
//!   [`GraphStore::neighbors_batch`] sweep per direction, so engines with a
//!   sorted batched scan path (BG3's packed CSR segments) touch each
//!   sealed page once per hop instead of once per frontier vertex. Plans
//!   ending in `count()` (optionally through `dedup()`) additionally push
//!   the aggregation into the expansion and never materialize traversers.
//! * **Scalar** — the per-vertex baseline: one [`GraphStore::neighbors`]
//!   call per traverser per direction.
//!
//! Both modes produce identical results in identical order (the
//! `query_equivalence` proptest holds them to that).

use crate::ast::Query;
use crate::error::QueryError;
use crate::plan::{optimize, Dir, Plan, PlannedStep};
use crate::reverse_etype;
use bg3_graph::{EdgeType, GraphStore, NeighborSink, VertexId};
use bg3_obs::span::{CostDim, QueryProfile, SlowQueryLog, Span, TraceContext, VirtualClock};
use bg3_obs::{names, Counter, Histogram, MetricRegistry};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::Arc;

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Neighbors fetched per vertex per unbounded expansion — the fan-out
    /// guard the risk-control workload requires ("10 hops and 100 edges").
    pub default_fanout: usize,
    /// Hard cap on live traversers; exceeding it aborts the query rather
    /// than melting the node.
    pub max_traversers: usize,
    /// Batched (morsel-driven) expansion vs the scalar per-vertex path.
    /// Results are identical; batching trades per-call overhead for shared
    /// page scans and enables count/dedup pushdown.
    pub batch: bool,
    /// Registry receiving executor metrics (`query_frontier_len`,
    /// `query_pushdown_hits_total`, `query_hop_truncations_total`). Pass
    /// the store's registry to merge them with the engine's I/O counters.
    pub metrics: Option<MetricRegistry>,
    /// Degraded-mode emission ceiling per expansion step (per hop). When
    /// set, no single hop emits more than this many neighbors — the
    /// expansion is *truncated* (counted in
    /// `query_hop_truncations_total`), not aborted, trading recall for
    /// bounded per-hop cost under overload. `None` (the default) keeps
    /// exact semantics.
    pub hop_cost_ceiling: Option<usize>,
    /// Virtual-time source stamped onto PROFILE spans. Pass the engine's
    /// `SimClock` (wrapped) so span times line up with the I/O latency
    /// histograms; `None` pins span timestamps at 0 (structure and cost
    /// attribution still recorded).
    pub clock: Option<VirtualClock>,
    /// Slow-query log every PROFILE run is offered to (keep-K-worst by
    /// modelled cost). `None` disables the log.
    pub slow_log: Option<SlowQueryLog>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            default_fanout: 100,
            max_traversers: 100_000,
            batch: true,
            metrics: None,
            hop_cost_ceiling: None,
            clock: None,
            slow_log: None,
        }
    }
}

impl ExecutorConfig {
    /// Switches to the scalar per-vertex expansion path.
    pub fn scalar(mut self) -> Self {
        self.batch = false;
        self
    }

    /// Attaches a metrics registry.
    pub fn with_metrics(mut self, registry: MetricRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Caps every expansion step at `ceiling` emitted neighbors
    /// (degradation-ladder traversal mode).
    pub fn with_hop_cost_ceiling(mut self, ceiling: usize) -> Self {
        self.hop_cost_ceiling = Some(ceiling);
        self
    }

    /// Attaches a virtual-time source for PROFILE span timestamps.
    pub fn with_clock(mut self, clock: VirtualClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attaches a slow-query log; every PROFILE run is offered to it.
    pub fn with_slow_log(mut self, log: SlowQueryLog) -> Self {
        self.slow_log = Some(log);
        self
    }
}

/// The result of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Head vertices (non-terminal pipelines end here implicitly).
    Vertices(Vec<VertexId>),
    /// `count()`.
    Count(u64),
    /// `values()`: head vertices and their vertex-table properties.
    Values(Vec<(VertexId, Option<Vec<u8>>)>),
    /// `path()`: full traverser paths.
    Paths(Vec<Vec<VertexId>>),
}

/// One link in a traverser's provenance chain. Children share their
/// parent's chain through `Arc` instead of cloning the whole path per
/// emitted traverser; chains are built at all only when the plan
/// terminates in `path()`.
#[derive(Debug)]
struct PathNode {
    vertex: VertexId,
    prev: Option<Arc<PathNode>>,
}

/// One in-flight traverser: its head vertex, plus (only when the plan asks
/// for `path()`) a shared link chain back to its source.
#[derive(Debug, Clone)]
struct Traverser {
    head: VertexId,
    trail: Option<Arc<PathNode>>,
}

impl Traverser {
    fn source(id: VertexId, need_paths: bool) -> Self {
        Traverser {
            head: id,
            trail: need_paths.then(|| {
                Arc::new(PathNode {
                    vertex: id,
                    prev: None,
                })
            }),
        }
    }

    /// A child traverser at `dst`, sharing this traverser's trail.
    fn step_to(&self, dst: VertexId) -> Self {
        Traverser {
            head: dst,
            trail: self.trail.as_ref().map(|t| {
                Arc::new(PathNode {
                    vertex: dst,
                    prev: Some(Arc::clone(t)),
                })
            }),
        }
    }

    /// Source-to-head path, reconstructed from the trail chain.
    fn full_path(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut node = self.trail.as_deref();
        while let Some(n) = node {
            out.push(n.vertex);
            node = n.prev.as_deref();
        }
        if out.is_empty() {
            out.push(self.head);
        }
        out.reverse();
        out
    }
}

/// Collects batched expansion results per frontier slot (destination ids
/// only — expansion ignores edge properties).
struct Gather {
    lists: Vec<Vec<VertexId>>,
}

impl NeighborSink for Gather {
    fn visit(&mut self, src_idx: usize, dst: VertexId, _props: &[u8]) -> bool {
        self.lists[src_idx].push(dst);
        true
    }
}

fn gather(
    store: &dyn GraphStore,
    heads: &[VertexId],
    etype: EdgeType,
    fanout: usize,
) -> Result<Vec<Vec<VertexId>>, QueryError> {
    let mut sink = Gather {
        lists: vec![Vec::new(); heads.len()],
    };
    store.neighbors_batch(heads, etype, fanout, &mut sink)?;
    Ok(sink.lists)
}

/// Feeds `visit` one traverser's merged neighbor list in scalar order:
/// out-neighbors first, then in-neighbors not already emitted (`both`
/// semantics, deduplicated through a hash set). Stops when `visit`
/// returns `false`.
fn merged_neighbors(
    dir: Dir,
    out: &[VertexId],
    inn: &[VertexId],
    visit: &mut impl FnMut(VertexId) -> bool,
) {
    let mut seen: HashSet<VertexId> = match dir {
        Dir::Both => out.iter().copied().collect(),
        Dir::Out | Dir::In => HashSet::new(),
    };
    for &n in out {
        if !visit(n) {
            return;
        }
    }
    for &n in inn {
        if matches!(dir, Dir::Both) && !seen.insert(n) {
            continue;
        }
        if !visit(n) {
            return;
        }
    }
}

/// Resolved handles for the executor's own metrics.
struct QueryMetrics {
    frontier_len: Histogram,
    pushdown_hits: Counter,
    hop_truncations: Counter,
    profiles: Counter,
    profile_spans: Counter,
    profile_cost: Histogram,
}

/// Per-request PROFILE state threaded through `run_plan_inner`: the
/// request's [`TraceContext`], the root span to parent hop spans under,
/// and a hop counter for span naming.
struct ProfileCtx<'a> {
    ctx: &'a TraceContext,
    root: u64,
    hop: Cell<usize>,
}

impl ProfileCtx<'_> {
    /// Opens the next `hop{i}` span under the root, tagged with the
    /// frontier size feeding the expansion.
    fn start_hop(&self, frontier: usize) -> Span<'_> {
        let i = self.hop.get();
        self.hop.set(i + 1);
        let mut span = self.ctx.start_span(&format!("hop{i}"), Some(self.root));
        span.set_attr("frontier", frontier as u64);
        span
    }
}

/// Executes plans against a graph store.
pub struct Executor {
    config: ExecutorConfig,
    metrics: Option<QueryMetrics>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(ExecutorConfig::default())
    }
}

impl Executor {
    /// Creates an executor with explicit limits.
    pub fn new(config: ExecutorConfig) -> Self {
        let metrics = config.metrics.as_ref().map(|registry| QueryMetrics {
            frontier_len: registry.histogram(names::QUERY_FRONTIER_LEN),
            pushdown_hits: registry.counter(names::QUERY_PUSHDOWN_HITS_TOTAL),
            hop_truncations: registry.counter(names::QUERY_HOP_TRUNCATIONS_TOTAL),
            profiles: registry.counter(names::QUERY_PROFILES_TOTAL),
            profile_spans: registry.counter(names::QUERY_PROFILE_SPANS_TOTAL),
            profile_cost: registry.histogram(names::QUERY_PROFILE_COST_LATENCY_NS),
        });
        Executor { config, metrics }
    }

    /// Parses, optimizes, and runs a textual query.
    pub fn run_text(&self, store: &dyn GraphStore, text: &str) -> Result<QueryResult, QueryError> {
        let query = crate::parser::parse(text)?;
        self.run(store, &query)
    }

    /// Optimizes and runs a parsed query.
    pub fn run(&self, store: &dyn GraphStore, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate().map_err(QueryError::Invalid)?;
        self.run_plan(store, &optimize(query))
    }

    /// Parses, optimizes, and runs a textual query in PROFILE mode:
    /// alongside the result, returns a [`QueryProfile`] — the serializable
    /// span tree (root + one span per hop, with frontier sizes) and the
    /// request's full cost-attribution ledger.
    pub fn run_profiled_text(
        &self,
        store: &dyn GraphStore,
        text: &str,
    ) -> Result<(QueryResult, QueryProfile), QueryError> {
        let query = crate::parser::parse(text)?;
        query.validate().map_err(QueryError::Invalid)?;
        self.run_plan_profiled(store, &optimize(&query), text)
    }

    /// Runs an already-optimized plan in PROFILE mode; `label` becomes the
    /// profile's `query` field (and the slow-query log entry's name).
    pub fn run_plan_profiled(
        &self,
        store: &dyn GraphStore,
        plan: &Plan,
        label: &str,
    ) -> Result<(QueryResult, QueryProfile), QueryError> {
        let clock = self.config.clock.clone().unwrap_or_default();
        let ctx = TraceContext::new(clock);
        // Install the request ledger: every instrumented charge site the
        // plan touches (storage, cache, scans, WAL, admission, retries)
        // attributes to this request while the guard lives.
        let guard = ctx.ledger().install();
        let root = ctx.start_span("query", None);
        let pctx = ProfileCtx {
            ctx: &ctx,
            root: root.id(),
            hop: Cell::new(0),
        };
        let result = self.run_plan_inner(store, plan, Some(&pctx));
        root.finish();
        drop(guard);
        let result = result?;
        let cost = ctx.ledger().snapshot();
        let profile = QueryProfile {
            trace_id: ctx.trace_id(),
            query: label.to_string(),
            modelled_cost_ns: cost.modelled_cost_ns(),
            cost,
            spans: ctx.take_spans(),
        };
        if let Some(m) = &self.metrics {
            m.profiles.inc();
            m.profile_spans.add(profile.spans.len() as u64);
            m.profile_cost.record(profile.modelled_cost_ns);
        }
        if let Some(log) = &self.config.slow_log {
            log.offer(profile.clone());
        }
        Ok((result, profile))
    }

    /// Runs an already-optimized plan.
    pub fn run_plan(&self, store: &dyn GraphStore, plan: &Plan) -> Result<QueryResult, QueryError> {
        self.run_plan_inner(store, plan, None)
    }

    fn run_plan_inner(
        &self,
        store: &dyn GraphStore,
        plan: &Plan,
        profile: Option<&ProfileCtx<'_>>,
    ) -> Result<QueryResult, QueryError> {
        let need_paths = plan.steps.iter().any(|s| matches!(s, PlannedStep::Path));
        let mut traversers: Vec<Traverser> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                PlannedStep::Source(ids) => {
                    traversers = ids
                        .iter()
                        .map(|&id| Traverser::source(id, need_paths))
                        .collect();
                }
                PlannedStep::Expand { etype, dir, bound } => {
                    let span = profile.map(|p| p.start_hop(traversers.len()));
                    if self.config.batch {
                        // Count pushdown: a plan ending `…expand().count()`
                        // or `…expand().dedup().count()` aggregates inside
                        // the expansion and never materializes traversers.
                        let dedup = match &plan.steps[i + 1..] {
                            [PlannedStep::Count] => Some(false),
                            [PlannedStep::Dedup, PlannedStep::Count] => Some(true),
                            _ => None,
                        };
                        if let Some(dedup) = dedup {
                            let result =
                                self.expand_count(store, &traversers, *etype, *dir, *bound, dedup)?;
                            if let Some(mut span) = span {
                                span.set_attr("pushdown", 1);
                                if let QueryResult::Count(n) = &result {
                                    span.set_attr("emitted", *n);
                                }
                                span.finish();
                            }
                            return Ok(result);
                        }
                    }
                    traversers = self.expand(store, &traversers, *etype, *dir, *bound)?;
                    if let Some(mut span) = span {
                        span.set_attr("emitted", traversers.len() as u64);
                        span.finish();
                    }
                }
                PlannedStep::HasVertex => {
                    let mut kept = Vec::with_capacity(traversers.len());
                    for t in traversers {
                        if store.get_vertex(t.head)?.is_some() {
                            kept.push(t);
                        }
                    }
                    traversers = kept;
                }
                PlannedStep::Dedup => {
                    let mut seen: HashSet<VertexId> = HashSet::new();
                    traversers.retain(|t| seen.insert(t.head));
                }
                PlannedStep::Limit(n) => traversers.truncate(*n),
                PlannedStep::Order => traversers.sort_by_key(|t| t.head),
                PlannedStep::Count => return Ok(QueryResult::Count(traversers.len() as u64)),
                PlannedStep::Values => {
                    let mut out = Vec::with_capacity(traversers.len());
                    for t in &traversers {
                        out.push((t.head, store.get_vertex(t.head)?));
                    }
                    return Ok(QueryResult::Values(out));
                }
                PlannedStep::Path => {
                    return Ok(QueryResult::Paths(
                        traversers.iter().map(Traverser::full_path).collect(),
                    ))
                }
            }
        }
        Ok(QueryResult::Vertices(
            traversers.iter().map(|t| t.head).collect(),
        ))
    }

    /// Drives one expansion, feeding `(parent, neighbor)` pairs to `emit`
    /// in scalar order (traverser order; out-neighbors before
    /// in-neighbors). `emit` returns `false` to stop the whole expansion
    /// (pushed-down limit, budget abort). Fetches through one
    /// `neighbors_batch` sweep per direction in batched mode, or one
    /// `neighbors` call per traverser per direction in scalar mode.
    fn for_each_expansion(
        &self,
        store: &dyn GraphStore,
        traversers: &[Traverser],
        etype: EdgeType,
        dir: Dir,
        fanout: usize,
        emit: &mut dyn FnMut(&Traverser, VertexId) -> bool,
    ) -> Result<(), QueryError> {
        let wants_out = matches!(dir, Dir::Out | Dir::Both);
        let wants_in = matches!(dir, Dir::In | Dir::Both);
        let rev = reverse_etype(etype);
        let empty: Vec<VertexId> = Vec::new();
        if self.config.batch {
            let heads: Vec<VertexId> = traversers.iter().map(|t| t.head).collect();
            if let Some(m) = &self.metrics {
                m.frontier_len.record(heads.len() as u64);
            }
            let out_lists = if wants_out {
                gather(store, &heads, etype, fanout)?
            } else {
                Vec::new()
            };
            let in_lists = if wants_in {
                gather(store, &heads, rev, fanout)?
            } else {
                Vec::new()
            };
            for (i, t) in traversers.iter().enumerate() {
                let out = out_lists.get(i).unwrap_or(&empty);
                let inn = in_lists.get(i).unwrap_or(&empty);
                let mut go = true;
                merged_neighbors(dir, out, inn, &mut |n| {
                    go = emit(t, n);
                    go
                });
                if !go {
                    return Ok(());
                }
            }
        } else {
            for t in traversers {
                let out: Vec<VertexId> = if wants_out {
                    store
                        .neighbors(t.head, etype, fanout)?
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect()
                } else {
                    Vec::new()
                };
                let inn: Vec<VertexId> = if wants_in {
                    store
                        .neighbors(t.head, rev, fanout)?
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect()
                } else {
                    Vec::new()
                };
                let mut go = true;
                merged_neighbors(dir, &out, &inn, &mut |n| {
                    go = emit(t, n);
                    go
                });
                if !go {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn budget_error(&self) -> QueryError {
        QueryError::Invalid(format!(
            "traverser budget exceeded ({})",
            self.config.max_traversers
        ))
    }

    /// The effective per-hop emission cap: the plan's own bound tightened
    /// by the degraded-mode ceiling. Returns `(cap, ceiling_applies)`.
    fn hop_cap(&self, bound: Option<usize>) -> (usize, bool) {
        let cap = bound.unwrap_or(usize::MAX);
        match self.config.hop_cost_ceiling {
            Some(ceiling) if ceiling < cap => (ceiling, true),
            _ => (cap, false),
        }
    }

    /// Records one truncated expansion when the degraded-mode ceiling (not
    /// the plan's own bound) is what stopped it.
    fn note_truncation(&self, emitted: usize, cap: usize, ceiled: bool) {
        if ceiled && emitted >= cap {
            bg3_obs::span::charge(CostDim::HopsTruncated, 1);
            if let Some(m) = &self.metrics {
                m.hop_truncations.inc();
            }
        }
    }

    /// Materializing expansion: produces the next traverser generation.
    fn expand(
        &self,
        store: &dyn GraphStore,
        traversers: &[Traverser],
        etype: EdgeType,
        dir: Dir,
        bound: Option<usize>,
    ) -> Result<Vec<Traverser>, QueryError> {
        let (cap, ceiled) = self.hop_cap(bound);
        let fanout = self.config.default_fanout.min(cap);
        let mut next: Vec<Traverser> = Vec::new();
        let mut err: Option<QueryError> = None;
        self.for_each_expansion(store, traversers, etype, dir, fanout, &mut |t, n| {
            next.push(t.step_to(n));
            if next.len() >= cap {
                return false;
            }
            if next.len() > self.config.max_traversers {
                err = Some(self.budget_error());
                return false;
            }
            true
        })?;
        match err {
            Some(e) => Err(e),
            None => {
                self.note_truncation(next.len(), cap, ceiled);
                Ok(next)
            }
        }
    }

    /// Count pushdown: aggregates the expansion without materializing
    /// traversers. `dedup` counts distinct destination heads instead of
    /// emissions; cap and budget semantics match the materializing path
    /// exactly (both are pre-dedup).
    fn expand_count(
        &self,
        store: &dyn GraphStore,
        traversers: &[Traverser],
        etype: EdgeType,
        dir: Dir,
        bound: Option<usize>,
        dedup: bool,
    ) -> Result<QueryResult, QueryError> {
        if let Some(m) = &self.metrics {
            m.pushdown_hits.inc();
        }
        let (cap, ceiled) = self.hop_cap(bound);
        let fanout = self.config.default_fanout.min(cap);
        let mut emitted = 0usize;
        let mut distinct: HashSet<VertexId> = HashSet::new();
        let mut err: Option<QueryError> = None;
        self.for_each_expansion(store, traversers, etype, dir, fanout, &mut |_, n| {
            emitted += 1;
            if dedup {
                distinct.insert(n);
            }
            if emitted >= cap {
                return false;
            }
            if emitted > self.config.max_traversers {
                err = Some(self.budget_error());
                return false;
            }
            true
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        self.note_truncation(emitted, cap, ceiled);
        let count = if dedup { distinct.len() } else { emitted };
        Ok(QueryResult::Count(count as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::{Edge, EdgeType, MemGraph, Vertex};

    /// 1→{2,3}, 2→{4}, 3→{4,5}, plus reverse indexes, plus vertex props.
    fn graph() -> MemGraph {
        let g = MemGraph::new();
        for (s, d) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4), (3, 5)] {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
            g.insert_edge(&Edge::new(
                VertexId(d),
                reverse_etype(EdgeType::FOLLOW),
                VertexId(s),
            ))
            .unwrap();
        }
        for v in 1..=5u64 {
            g.insert_vertex(&Vertex {
                id: VertexId(v),
                props: format!("user{v}").into_bytes(),
            })
            .unwrap();
        }
        g
    }

    fn run(text: &str) -> QueryResult {
        Executor::default().run_text(&graph(), text).unwrap()
    }

    #[test]
    fn both_unions_directions() {
        assert_eq!(
            run("g.V(3).both(follow).order()"),
            QueryResult::Vertices(vec![VertexId(1), VertexId(4), VertexId(5)])
        );
    }

    #[test]
    fn repeat_matches_manual_unrolling() {
        assert_eq!(
            run("g.V(1).repeat(out(follow), 2).dedup().order()"),
            run("g.V(1).out(follow).out(follow).dedup().order()"),
        );
    }

    #[test]
    fn has_vertex_filters_unregistered_heads() {
        // The fixture registers vertices 1..=5; edges also reach nothing
        // else, so add an edge to an unregistered vertex.
        let g = graph();
        g.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(99)))
            .unwrap();
        let exec = Executor::default();
        let all = exec.run_text(&g, "g.V(1).out(follow).order()").unwrap();
        assert_eq!(
            all,
            QueryResult::Vertices(vec![VertexId(2), VertexId(3), VertexId(99)])
        );
        let registered = exec
            .run_text(&g, "g.V(1).out(follow).has_vertex().order()")
            .unwrap();
        assert_eq!(
            registered,
            QueryResult::Vertices(vec![VertexId(2), VertexId(3)])
        );
    }

    #[test]
    fn out_and_count() {
        assert_eq!(run("g.V(1).out(follow).count()"), QueryResult::Count(2));
        assert_eq!(
            run("g.V(1).out(follow).out(follow).count()"),
            QueryResult::Count(3), // 2→4, 3→4, 3→5
        );
    }

    #[test]
    fn dedup_and_order() {
        assert_eq!(
            run("g.V(1).out(follow).out(follow).dedup().order()"),
            QueryResult::Vertices(vec![VertexId(4), VertexId(5)])
        );
    }

    #[test]
    fn in_uses_reverse_index() {
        assert_eq!(
            run("g.V(4).in(follow).order()"),
            QueryResult::Vertices(vec![VertexId(2), VertexId(3)])
        );
    }

    #[test]
    fn values_fetches_vertex_props() {
        let QueryResult::Values(vals) = run("g.V(1).out(follow).order().values()") else {
            panic!("expected values");
        };
        assert_eq!(
            vals,
            vec![
                (VertexId(2), Some(b"user2".to_vec())),
                (VertexId(3), Some(b"user3".to_vec())),
            ]
        );
    }

    #[test]
    fn paths_are_complete() {
        let QueryResult::Paths(mut paths) = run("g.V(1).out(follow).out(follow).path()") else {
            panic!("expected paths");
        };
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec![VertexId(1), VertexId(2), VertexId(4)],
                vec![VertexId(1), VertexId(3), VertexId(4)],
                vec![VertexId(1), VertexId(3), VertexId(5)],
            ]
        );
    }

    #[test]
    fn pushed_down_limit_bounds_expansion_io() {
        // A super-vertex with 1000 out-edges; limit(3) must not fetch them
        // all. MemGraph can't count fetches directly, but the bound also
        // shows in the result size and in not exceeding max_traversers.
        let g = MemGraph::new();
        for d in 0..1000u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let exec = Executor::new(ExecutorConfig {
            default_fanout: 100,
            max_traversers: 10, // would abort an unbounded expansion
            ..ExecutorConfig::default()
        });
        let result = exec.run_text(&g, "g.V(1).out(like).limit(3)").unwrap();
        assert_eq!(
            result,
            QueryResult::Vertices(vec![VertexId(0), VertexId(1), VertexId(2)])
        );
        // Without the pushdown (dedup in between), the same budget aborts.
        let err = exec.run_text(&g, "g.V(1).out(like).dedup().limit(3)");
        assert!(err.is_err(), "unbounded expansion exceeds the budget");
    }

    #[test]
    fn empty_source_yields_empty_results() {
        assert_eq!(run("g.V().out(follow).count()"), QueryResult::Count(0));
        assert_eq!(run("g.V()"), QueryResult::Vertices(vec![]));
    }

    #[test]
    fn non_terminal_query_returns_heads() {
        assert_eq!(
            run("g.V(2).out(follow)"),
            QueryResult::Vertices(vec![VertexId(4)])
        );
    }

    #[test]
    fn fanout_guard_caps_unbounded_expansions() {
        let g = MemGraph::new();
        for d in 0..500u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let exec = Executor::new(ExecutorConfig {
            default_fanout: 50,
            ..ExecutorConfig::default()
        });
        let QueryResult::Count(n) = exec.run_text(&g, "g.V(1).out(like).count()").unwrap() else {
            panic!()
        };
        assert_eq!(n, 50, "default fanout guard applied");
    }

    #[test]
    fn scalar_and_batched_agree_on_fixture_queries() {
        let g = graph();
        let batched = Executor::default();
        let scalar = Executor::new(ExecutorConfig::default().scalar());
        for q in [
            "g.V(1).out(follow)",
            "g.V(1).out(follow).count()",
            "g.V(1).out(follow).out(follow).count()",
            "g.V(1).out(follow).out(follow).dedup().count()",
            "g.V(3).both(follow).order()",
            "g.V(3).both(follow).count()",
            "g.V(4).in(follow).order()",
            "g.V(1).repeat(out(follow), 2).path()",
            "g.V(1).out(follow).limit(1)",
            "g.V(1).out(follow).order().values()",
            "g.V().out(follow).count()",
        ] {
            assert_eq!(
                batched.run_text(&g, q).unwrap(),
                scalar.run_text(&g, q).unwrap(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn count_pushdown_skips_materialization_and_counts_hits() {
        let g = graph();
        let registry = MetricRegistry::new();
        let exec = Executor::new(ExecutorConfig::default().with_metrics(registry.clone()));
        assert_eq!(
            exec.run_text(&g, "g.V(1).out(follow).out(follow).count()")
                .unwrap(),
            QueryResult::Count(3)
        );
        assert_eq!(
            exec.run_text(&g, "g.V(1).out(follow).out(follow).dedup().count()")
                .unwrap(),
            QueryResult::Count(2)
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(names::QUERY_PUSHDOWN_HITS_TOTAL),
            Some(2),
            "each terminal count() aggregated inside the expansion"
        );
        // The frontier histogram saw every batched expansion (two per
        // query: hop 1 materializes, hop 2 is the pushdown).
        let hist = snap.histogram(names::QUERY_FRONTIER_LEN).unwrap();
        assert_eq!(hist.count, 4);

        // The scalar path records no pushdown hits.
        let scalar_registry = MetricRegistry::new();
        let scalar = Executor::new(
            ExecutorConfig::default()
                .scalar()
                .with_metrics(scalar_registry.clone()),
        );
        assert_eq!(
            scalar.run_text(&g, "g.V(1).out(follow).count()").unwrap(),
            QueryResult::Count(2)
        );
        assert_eq!(
            scalar_registry
                .snapshot()
                .counter(names::QUERY_PUSHDOWN_HITS_TOTAL),
            Some(0)
        );
    }

    #[test]
    fn count_pushdown_keeps_budget_semantics() {
        let g = MemGraph::new();
        for d in 0..1000u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let tight = ExecutorConfig {
            default_fanout: 1000,
            max_traversers: 10,
            ..ExecutorConfig::default()
        };
        let batched = Executor::new(tight.clone());
        let scalar = Executor::new(tight.scalar());
        let b = batched.run_text(&g, "g.V(1).out(like).count()");
        let s = scalar.run_text(&g, "g.V(1).out(like).count()");
        assert!(b.is_err() && s.is_err(), "both modes abort on budget");
        assert_eq!(format!("{:?}", b), format!("{:?}", s));
    }

    #[test]
    fn hop_cost_ceiling_truncates_instead_of_aborting() {
        let g = MemGraph::new();
        for d in 0..500u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let registry = MetricRegistry::new();
        let degraded = Executor::new(
            ExecutorConfig {
                default_fanout: 1000,
                ..ExecutorConfig::default()
            }
            .with_hop_cost_ceiling(25)
            .with_metrics(registry.clone()),
        );
        // Materializing path truncates at the ceiling.
        let QueryResult::Vertices(heads) = degraded.run_text(&g, "g.V(1).out(like)").unwrap()
        else {
            panic!("expected vertices");
        };
        assert_eq!(heads.len(), 25);
        // Count pushdown truncates identically.
        assert_eq!(
            degraded.run_text(&g, "g.V(1).out(like).count()").unwrap(),
            QueryResult::Count(25)
        );
        assert_eq!(
            registry
                .snapshot()
                .counter(names::QUERY_HOP_TRUNCATIONS_TOTAL),
            Some(2),
            "both truncated expansions counted"
        );
        // A plan bound tighter than the ceiling is the plan's own limit,
        // not a degradation truncation.
        let before = registry
            .snapshot()
            .counter(names::QUERY_HOP_TRUNCATIONS_TOTAL);
        let QueryResult::Vertices(few) =
            degraded.run_text(&g, "g.V(1).out(like).limit(3)").unwrap()
        else {
            panic!("expected vertices");
        };
        assert_eq!(few.len(), 3);
        assert_eq!(
            registry
                .snapshot()
                .counter(names::QUERY_HOP_TRUNCATIONS_TOTAL),
            before,
            "plan-bound stops are not truncations"
        );
        // Scalar mode honors the same ceiling.
        let scalar = Executor::new(
            ExecutorConfig {
                default_fanout: 1000,
                ..ExecutorConfig::default()
            }
            .scalar()
            .with_hop_cost_ceiling(25),
        );
        assert_eq!(
            scalar.run_text(&g, "g.V(1).out(like).count()").unwrap(),
            QueryResult::Count(25)
        );
    }

    fn assert_hop_tree(profile: &QueryProfile, hops: usize, first_frontier: u64) {
        let root = profile.root().expect("root span recorded");
        assert_eq!(root.name, "query");
        let hop_spans = profile.hop_spans();
        assert_eq!(hop_spans.len(), hops, "one span per hop");
        for (i, span) in hop_spans.iter().enumerate() {
            assert_eq!(span.name, format!("hop{i}"));
            assert_eq!(span.parent, Some(root.id));
            assert!(
                span.attrs.iter().any(|a| a.key == "frontier"),
                "hop spans carry frontier sizes"
            );
        }
        assert_eq!(
            hop_spans[0]
                .attrs
                .iter()
                .find(|a| a.key == "frontier")
                .unwrap()
                .value,
            first_frontier
        );
    }

    #[test]
    fn profile_records_per_hop_span_tree_in_both_modes() {
        let g = graph();
        for config in [
            ExecutorConfig::default(),
            ExecutorConfig::default().scalar(),
        ] {
            let registry = MetricRegistry::new();
            let exec = Executor::new(config.clone().with_metrics(registry.clone()));
            let (result, profile) = exec
                .run_profiled_text(&g, "g.V(1).out(follow).out(follow).dedup().order()")
                .unwrap();
            assert_eq!(
                result,
                QueryResult::Vertices(vec![VertexId(4), VertexId(5)]),
                "profiling must not change results (batch={})",
                config.batch
            );
            assert_hop_tree(&profile, 2, 1);
            let emitted: Vec<u64> = profile
                .hop_spans()
                .iter()
                .map(|s| s.attrs.iter().find(|a| a.key == "emitted").unwrap().value)
                .collect();
            assert_eq!(emitted, vec![2, 3], "1→{{2,3}}, then {{2,3}}→{{4,4,5}}");
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::QUERY_PROFILES_TOTAL), Some(1));
            assert_eq!(
                snap.counter(names::QUERY_PROFILE_SPANS_TOTAL),
                Some(3),
                "root + two hops"
            );
            assert_eq!(
                snap.histogram(names::QUERY_PROFILE_COST_LATENCY_NS)
                    .unwrap()
                    .count,
                1
            );
        }
    }

    #[test]
    fn profile_marks_pushdown_hops() {
        let g = graph();
        let (result, profile) = Executor::default()
            .run_profiled_text(&g, "g.V(1).out(follow).out(follow).count()")
            .unwrap();
        assert_eq!(result, QueryResult::Count(3));
        assert_hop_tree(&profile, 2, 1);
        let last = profile.hop_spans()[1].clone();
        assert!(last
            .attrs
            .iter()
            .any(|a| a.key == "pushdown" && a.value == 1));
        assert!(last
            .attrs
            .iter()
            .any(|a| a.key == "emitted" && a.value == 3));
    }

    #[test]
    fn profile_feeds_slow_query_log_worst_first() {
        let g = graph();
        let log = SlowQueryLog::new(2);
        let exec = Executor::new(ExecutorConfig::default().with_slow_log(log.clone()));
        for q in [
            "g.V(1).out(follow)",
            "g.V(1).out(follow).out(follow)",
            "g.V(2).out(follow)",
        ] {
            exec.run_profiled_text(&g, q).unwrap();
        }
        assert_eq!(log.recorded(), 3);
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "keep-K-worst");
        assert!(
            entries
                .windows(2)
                .all(|w| w[0].modelled_cost_ns >= w[1].modelled_cost_ns),
            "costliest first"
        );
        // Unprofiled runs are never offered.
        exec.run_text(&g, "g.V(1).out(follow)").unwrap();
        assert_eq!(log.recorded(), 3);
    }

    #[test]
    fn profile_span_times_use_injected_clock() {
        let g = graph();
        let tick = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let t = Arc::clone(&tick);
        let exec = Executor::new(ExecutorConfig::default().with_clock(VirtualClock::new(
            move || t.fetch_add(100, std::sync::atomic::Ordering::Relaxed),
        )));
        let (_, profile) = exec.run_profiled_text(&g, "g.V(1).out(follow)").unwrap();
        let root = profile.root().unwrap();
        assert!(root.end_nanos > root.start_nanos);
        for hop in profile.hop_spans() {
            assert!(hop.start_nanos >= root.start_nanos);
            assert!(hop.end_nanos <= root.end_nanos);
        }
    }

    #[test]
    fn paths_share_parent_trails() {
        // 1 → {2,3} → … fan-out: both hop-2 traversers through vertex 3
        // must share vertex 3's trail node rather than own path clones.
        let g = graph();
        let QueryResult::Paths(mut paths) = Executor::default()
            .run_text(&g, "g.V(1).out(follow).out(follow).path()")
            .unwrap()
        else {
            panic!("expected paths");
        };
        paths.sort();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p[0] == VertexId(1)));
    }
}
