//! Plan execution over any [`GraphStore`].

use crate::ast::Query;
use crate::error::QueryError;
use crate::plan::{optimize, Dir, Plan, PlannedStep};
use crate::reverse_etype;
use bg3_graph::{GraphStore, VertexId};
use std::collections::HashSet;

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Neighbors fetched per vertex per unbounded expansion — the fan-out
    /// guard the risk-control workload requires ("10 hops and 100 edges").
    pub default_fanout: usize,
    /// Hard cap on live traversers; exceeding it aborts the query rather
    /// than melting the node.
    pub max_traversers: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            default_fanout: 100,
            max_traversers: 100_000,
        }
    }
}

/// The result of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Head vertices (non-terminal pipelines end here implicitly).
    Vertices(Vec<VertexId>),
    /// `count()`.
    Count(u64),
    /// `values()`: head vertices and their vertex-table properties.
    Values(Vec<(VertexId, Option<Vec<u8>>)>),
    /// `path()`: full traverser paths.
    Paths(Vec<Vec<VertexId>>),
}

/// One in-flight traverser: its path from source to head.
#[derive(Debug, Clone)]
struct Traverser {
    path: Vec<VertexId>,
}

impl Traverser {
    fn head(&self) -> VertexId {
        *self.path.last().expect("traversers are never empty")
    }
}

/// Executes plans against a graph store.
#[derive(Default)]
pub struct Executor {
    config: ExecutorConfig,
}

impl Executor {
    /// Creates an executor with explicit limits.
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// Parses, optimizes, and runs a textual query.
    pub fn run_text(&self, store: &dyn GraphStore, text: &str) -> Result<QueryResult, QueryError> {
        let query = crate::parser::parse(text)?;
        self.run(store, &query)
    }

    /// Optimizes and runs a parsed query.
    pub fn run(&self, store: &dyn GraphStore, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate().map_err(QueryError::Invalid)?;
        self.run_plan(store, &optimize(query))
    }

    /// Runs an already-optimized plan.
    pub fn run_plan(&self, store: &dyn GraphStore, plan: &Plan) -> Result<QueryResult, QueryError> {
        let mut traversers: Vec<Traverser> = Vec::new();
        for step in &plan.steps {
            match step {
                PlannedStep::Source(ids) => {
                    traversers = ids.iter().map(|&id| Traverser { path: vec![id] }).collect();
                }
                PlannedStep::Expand { etype, dir, bound } => {
                    let cap = bound.unwrap_or(usize::MAX);
                    let fanout = self.config.default_fanout.min(cap);
                    let mut next = Vec::new();
                    'expand: for t in &traversers {
                        // Gather this traverser's neighbor set, per direction,
                        // deduplicated for `both`.
                        let mut nbrs: Vec<VertexId> = Vec::new();
                        if matches!(dir, Dir::Out | Dir::Both) {
                            nbrs.extend(
                                store
                                    .neighbors(t.head(), *etype, fanout)?
                                    .into_iter()
                                    .map(|(n, _)| n),
                            );
                        }
                        if matches!(dir, Dir::In | Dir::Both) {
                            for (n, _) in
                                store.neighbors(t.head(), reverse_etype(*etype), fanout)?
                            {
                                if !(matches!(dir, Dir::Both) && nbrs.contains(&n)) {
                                    nbrs.push(n);
                                }
                            }
                        }
                        for n in nbrs {
                            let mut path = t.path.clone();
                            path.push(n);
                            next.push(Traverser { path });
                            if next.len() >= cap {
                                break 'expand;
                            }
                            if next.len() > self.config.max_traversers {
                                return Err(QueryError::Invalid(format!(
                                    "traverser budget exceeded ({})",
                                    self.config.max_traversers
                                )));
                            }
                        }
                    }
                    traversers = next;
                }
                PlannedStep::HasVertex => {
                    let mut kept = Vec::with_capacity(traversers.len());
                    for t in traversers {
                        if store.get_vertex(t.head())?.is_some() {
                            kept.push(t);
                        }
                    }
                    traversers = kept;
                }
                PlannedStep::Dedup => {
                    let mut seen: HashSet<VertexId> = HashSet::new();
                    traversers.retain(|t| seen.insert(t.head()));
                }
                PlannedStep::Limit(n) => traversers.truncate(*n),
                PlannedStep::Order => traversers.sort_by_key(|t| t.head()),
                PlannedStep::Count => return Ok(QueryResult::Count(traversers.len() as u64)),
                PlannedStep::Values => {
                    let mut out = Vec::with_capacity(traversers.len());
                    for t in &traversers {
                        out.push((t.head(), store.get_vertex(t.head())?));
                    }
                    return Ok(QueryResult::Values(out));
                }
                PlannedStep::Path => {
                    return Ok(QueryResult::Paths(
                        traversers.iter().map(|t| t.path.clone()).collect(),
                    ))
                }
            }
        }
        Ok(QueryResult::Vertices(
            traversers.iter().map(Traverser::head).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_graph::{Edge, EdgeType, MemGraph, Vertex};

    /// 1→{2,3}, 2→{4}, 3→{4,5}, plus reverse indexes, plus vertex props.
    fn graph() -> MemGraph {
        let g = MemGraph::new();
        for (s, d) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4), (3, 5)] {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
            g.insert_edge(&Edge::new(
                VertexId(d),
                reverse_etype(EdgeType::FOLLOW),
                VertexId(s),
            ))
            .unwrap();
        }
        for v in 1..=5u64 {
            g.insert_vertex(&Vertex {
                id: VertexId(v),
                props: format!("user{v}").into_bytes(),
            })
            .unwrap();
        }
        g
    }

    fn run(text: &str) -> QueryResult {
        Executor::default().run_text(&graph(), text).unwrap()
    }

    #[test]
    fn both_unions_directions() {
        assert_eq!(
            run("g.V(3).both(follow).order()"),
            QueryResult::Vertices(vec![VertexId(1), VertexId(4), VertexId(5)])
        );
    }

    #[test]
    fn repeat_matches_manual_unrolling() {
        assert_eq!(
            run("g.V(1).repeat(out(follow), 2).dedup().order()"),
            run("g.V(1).out(follow).out(follow).dedup().order()"),
        );
    }

    #[test]
    fn has_vertex_filters_unregistered_heads() {
        // The fixture registers vertices 1..=5; edges also reach nothing
        // else, so add an edge to an unregistered vertex.
        let g = graph();
        g.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(99)))
            .unwrap();
        let exec = Executor::default();
        let all = exec.run_text(&g, "g.V(1).out(follow).order()").unwrap();
        assert_eq!(
            all,
            QueryResult::Vertices(vec![VertexId(2), VertexId(3), VertexId(99)])
        );
        let registered = exec
            .run_text(&g, "g.V(1).out(follow).has_vertex().order()")
            .unwrap();
        assert_eq!(
            registered,
            QueryResult::Vertices(vec![VertexId(2), VertexId(3)])
        );
    }

    #[test]
    fn out_and_count() {
        assert_eq!(run("g.V(1).out(follow).count()"), QueryResult::Count(2));
        assert_eq!(
            run("g.V(1).out(follow).out(follow).count()"),
            QueryResult::Count(3), // 2→4, 3→4, 3→5
        );
    }

    #[test]
    fn dedup_and_order() {
        assert_eq!(
            run("g.V(1).out(follow).out(follow).dedup().order()"),
            QueryResult::Vertices(vec![VertexId(4), VertexId(5)])
        );
    }

    #[test]
    fn in_uses_reverse_index() {
        assert_eq!(
            run("g.V(4).in(follow).order()"),
            QueryResult::Vertices(vec![VertexId(2), VertexId(3)])
        );
    }

    #[test]
    fn values_fetches_vertex_props() {
        let QueryResult::Values(vals) = run("g.V(1).out(follow).order().values()") else {
            panic!("expected values");
        };
        assert_eq!(
            vals,
            vec![
                (VertexId(2), Some(b"user2".to_vec())),
                (VertexId(3), Some(b"user3".to_vec())),
            ]
        );
    }

    #[test]
    fn paths_are_complete() {
        let QueryResult::Paths(mut paths) = run("g.V(1).out(follow).out(follow).path()") else {
            panic!("expected paths");
        };
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec![VertexId(1), VertexId(2), VertexId(4)],
                vec![VertexId(1), VertexId(3), VertexId(4)],
                vec![VertexId(1), VertexId(3), VertexId(5)],
            ]
        );
    }

    #[test]
    fn pushed_down_limit_bounds_expansion_io() {
        // A super-vertex with 1000 out-edges; limit(3) must not fetch them
        // all. MemGraph can't count fetches directly, but the bound also
        // shows in the result size and in not exceeding max_traversers.
        let g = MemGraph::new();
        for d in 0..1000u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let exec = Executor::new(ExecutorConfig {
            default_fanout: 100,
            max_traversers: 10, // would abort an unbounded expansion
        });
        let result = exec.run_text(&g, "g.V(1).out(like).limit(3)").unwrap();
        assert_eq!(
            result,
            QueryResult::Vertices(vec![VertexId(0), VertexId(1), VertexId(2)])
        );
        // Without the pushdown (dedup in between), the same budget aborts.
        let err = exec.run_text(&g, "g.V(1).out(like).dedup().limit(3)");
        assert!(err.is_err(), "unbounded expansion exceeds the budget");
    }

    #[test]
    fn empty_source_yields_empty_results() {
        assert_eq!(run("g.V().out(follow).count()"), QueryResult::Count(0));
        assert_eq!(run("g.V()"), QueryResult::Vertices(vec![]));
    }

    #[test]
    fn non_terminal_query_returns_heads() {
        assert_eq!(
            run("g.V(2).out(follow)"),
            QueryResult::Vertices(vec![VertexId(4)])
        );
    }

    #[test]
    fn fanout_guard_caps_unbounded_expansions() {
        let g = MemGraph::new();
        for d in 0..500u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::LIKE, VertexId(d)))
                .unwrap();
        }
        let exec = Executor::new(ExecutorConfig {
            default_fanout: 50,
            max_traversers: 100_000,
        });
        let QueryResult::Count(n) = exec.run_text(&g, "g.V(1).out(like).count()").unwrap() else {
            panic!()
        };
        assert_eq!(n, 50, "default fanout guard applied");
    }
}
