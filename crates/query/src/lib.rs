//! # bg3-query
//!
//! The execution layer of the BG3 architecture (the paper's Fig. 1/2 "BGE":
//! it "converts query language into specific execution plans and handles
//! computation-intensive operations such as sorting and aggregation").
//! ByteGraph's wire language is Gremlin; this crate implements a
//! Gremlin-flavored subset:
//!
//! ```text
//! g.V(1, 2).out(follow).dedup().order().limit(10)
//! g.V(42).out(like).in(like).dedup().count()
//! g.V(7).out(transfer).out(transfer).path().limit(5)
//! g.V(3).out(follow).values()
//! ```
//!
//! Pipeline: [`parse`] (text → [`Query`]) → [`optimize`] ([`Query`] →
//! [`Plan`], with limit pushdown and dedup fusion) → [`Executor::run`]
//! (plan → [`QueryResult`] against any [`bg3_graph::GraphStore`]).
//!
//! Reverse traversal (`in(...)`) uses the reverse-adjacency convention of
//! [`bg3_graph`]-based engines: an edge type's reverse index is stored
//! under [`reverse_etype`]; engines that maintain it (see
//! `bg3_core::Bg3Config`) serve `in()` at the same cost as `out()`.

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;

pub use ast::{Query, Step};
pub use error::{ParseError, QueryError};
pub use exec::{Executor, ExecutorConfig, QueryResult};
pub use parser::parse;
pub use plan::{optimize, Plan, PlannedStep};

use bg3_graph::EdgeType;

/// The edge type under which the reverse index of `etype` is stored
/// (delegates to [`EdgeType::reversed`]).
pub fn reverse_etype(etype: EdgeType) -> EdgeType {
    etype.reversed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution_free_marker() {
        assert_eq!(reverse_etype(EdgeType(1)), EdgeType(0x8001));
        assert_eq!(reverse_etype(EdgeType(0x7FFF)), EdgeType(0xFFFF));
        // Marking twice is idempotent.
        assert_eq!(
            reverse_etype(reverse_etype(EdgeType(5))),
            reverse_etype(EdgeType(5))
        );
    }
}
