//! Recursive-descent parser for the Gremlin-flavored text form.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := "g" "." step ("." step)*
//! step   := name "(" args? ")"
//! name   := "V" | "out" | "in" | "both" | "repeat" | "has_vertex"
//!         | "dedup" | "limit" | "order" | "count" | "values" | "path"
//! args   := arg ("," arg)*
//! arg    := integer | edge-type-name | step (inside repeat)
//! ```
//!
//! Edge types accept the well-known names (`follow`, `like`, `transfer`) or
//! a bare integer.

use crate::ast::{Query, Step};
use crate::error::ParseError;
use bg3_graph::{EdgeType, VertexId};

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .text
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.text.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected integer");
        }
        std::str::from_utf8(&self.text[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or_else(|| self.err("integer out of range"), Ok)
    }

    fn int_args(&mut self) -> Result<Vec<u64>, ParseError> {
        self.expect(b'(')?;
        let mut args = Vec::new();
        if self.peek() != Some(b')') {
            loop {
                args.push(self.integer()?);
                if self.peek() == Some(b',') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(b')')?;
        Ok(args)
    }

    fn etype_arg(&mut self) -> Result<EdgeType, ParseError> {
        self.expect(b'(')?;
        let etype = match self.peek() {
            Some(b) if b.is_ascii_digit() => {
                EdgeType(u16::try_from(self.integer()?).map_err(|_| ParseError {
                    position: self.pos,
                    message: "edge type out of range".into(),
                })?)
            }
            _ => {
                let name = self.ident()?;
                match name.as_str() {
                    "follow" => EdgeType::FOLLOW,
                    "like" => EdgeType::LIKE,
                    "transfer" => EdgeType::TRANSFER,
                    other => return self.err(format!("unknown edge type '{other}'")),
                }
            }
        };
        self.expect(b')')?;
        Ok(etype)
    }

    fn no_args(&mut self) -> Result<(), ParseError> {
        self.expect(b'(')?;
        self.expect(b')')
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "V" => Ok(Step::V(
                self.int_args()?.into_iter().map(VertexId).collect(),
            )),
            "out" => Ok(Step::Out(self.etype_arg()?)),
            "in" => Ok(Step::In(self.etype_arg()?)),
            "both" => Ok(Step::Both(self.etype_arg()?)),
            "has_vertex" => {
                self.no_args()?;
                Ok(Step::HasVertex)
            }
            "repeat" => {
                // repeat(<expansion>, <times>)
                self.expect(b'(')?;
                let inner = self.step()?;
                self.expect(b',')?;
                let times = self.integer()? as usize;
                self.expect(b')')?;
                Ok(Step::Repeat {
                    inner: Box::new(inner),
                    times,
                })
            }
            "dedup" => {
                self.no_args()?;
                Ok(Step::Dedup)
            }
            "limit" => {
                let args = self.int_args()?;
                if args.len() != 1 {
                    return self.err("limit takes exactly one argument");
                }
                Ok(Step::Limit(args[0] as usize))
            }
            "order" => {
                self.no_args()?;
                Ok(Step::Order)
            }
            "count" => {
                self.no_args()?;
                Ok(Step::Count)
            }
            "values" => {
                self.no_args()?;
                Ok(Step::Values)
            }
            "path" => {
                self.no_args()?;
                Ok(Step::Path)
            }
            other => self.err(format!("unknown step '{other}'")),
        }
    }
}

/// Parses the text form into a validated [`Query`].
pub fn parse(text: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    let g = p.ident()?;
    if g != "g" {
        return Err(ParseError {
            position: 0,
            message: "queries start with 'g.'".into(),
        });
    }
    let mut steps = Vec::new();
    while p.peek() == Some(b'.') {
        p.pos += 1;
        steps.push(p.step()?);
    }
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(ParseError {
            position: p.pos,
            message: "trailing input".into(),
        });
    }
    let query = Query { steps };
    query.validate().map_err(|message| ParseError {
        position: text.len(),
        message,
    })?;
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_pipeline() {
        let q = parse("g.V(1, 2).out(follow).dedup().order().limit(10).count()").unwrap();
        assert_eq!(
            q.steps,
            vec![
                Step::V(vec![VertexId(1), VertexId(2)]),
                Step::Out(EdgeType::FOLLOW),
                Step::Dedup,
                Step::Order,
                Step::Limit(10),
                Step::Count,
            ]
        );
    }

    #[test]
    fn parses_numeric_edge_types_and_in() {
        let q = parse("g.V(7).in(2).out(9)").unwrap();
        assert_eq!(
            q.steps,
            vec![
                Step::V(vec![VertexId(7)]),
                Step::In(EdgeType::LIKE),
                Step::Out(EdgeType(9)),
            ]
        );
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse("g.V(1).out(like).count()").unwrap();
        let b = parse("  g . V ( 1 ) . out ( like ) . count ( )  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "V(1)",                        // missing g.
            "g.out(follow)",               // no source
            "g.V(1).count().limit(2)",     // terminal not last
            "g.V(1).V(2)",                 // V not first
            "g.V(1).out(unknown_type)",    // bad edge type
            "g.V(1).limit()",              // missing arg
            "g.V(1).limit(1,2)",           // too many args
            "g.V(1).frobnicate()",         // unknown step
            "g.V(1).out(follow) trailing", // trailing junk
            "g.V(1).out(99999)",           // etype out of u16 range
        ] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn parses_repeat_both_and_has_vertex() {
        let q = parse("g.V(1).repeat(out(follow), 3).both(like).has_vertex()").unwrap();
        assert_eq!(
            q.steps,
            vec![
                Step::V(vec![VertexId(1)]),
                Step::Repeat {
                    inner: Box::new(Step::Out(EdgeType::FOLLOW)),
                    times: 3,
                },
                Step::Both(EdgeType::LIKE),
                Step::HasVertex,
            ]
        );
        // repeat's inner step must be an expansion.
        assert!(parse("g.V(1).repeat(dedup(), 2)").is_err());
        assert!(
            parse("g.V(1).repeat(out(follow))").is_err(),
            "missing count"
        );
    }

    #[test]
    fn empty_v_is_allowed() {
        let q = parse("g.V().count()").unwrap();
        assert_eq!(q.steps[0], Step::V(vec![]));
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err = parse("g.V(1).bogus()").unwrap_err();
        assert!(err.position >= 7, "position {} in text", err.position);
        assert!(err.message.contains("bogus"));
    }
}
