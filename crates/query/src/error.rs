//! Query-layer errors.

use std::fmt;

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the query text.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Any error the query layer can produce.
#[derive(Debug)]
pub enum QueryError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query parsed but violates structural rules.
    Invalid(String),
    /// The storage engine failed mid-execution.
    Storage(bg3_storage::StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<bg3_storage::StorageError> for QueryError {
    fn from(e: bg3_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let p = ParseError {
            position: 7,
            message: "expected '('".into(),
        };
        assert_eq!(p.to_string(), "parse error at byte 7: expected '('");
        assert!(QueryError::from(p).to_string().contains("byte 7"));
        assert!(QueryError::Invalid("no source".into())
            .to_string()
            .contains("no source"));
    }
}
