//! Property test: the batched (morsel-driven) executor and the scalar
//! per-vertex executor are observationally identical — same results, same
//! errors — on random graphs and random query plans. This is the contract
//! that lets the batched mode be the default: batching is an execution
//! strategy, never a semantics change.

use bg3_core::prelude::*;
use bg3_graph::MemGraph;
use bg3_query::{reverse_etype, Executor, ExecutorConfig};
use proptest::prelude::*;

/// Random traversal text over the FOLLOW edge type: a start vertex, one
/// to three expansion hops, and a terminal that exercises every result
/// shape (vertices, counts, values, paths) plus the pushdown-eligible
/// `count()` / `dedup().count()` suffixes.
fn query_strategy(population: u64) -> impl Strategy<Value = String> {
    let hop = prop_oneof![
        Just(".out(follow)"),
        Just(".in(follow)"),
        Just(".both(follow)"),
    ];
    let suffix = prop_oneof![
        Just(""),
        Just(".dedup()"),
        Just(".count()"),
        Just(".dedup().count()"),
        Just(".order()"),
        Just(".limit(3)"),
        Just(".order().limit(5)"),
        Just(".path()"),
        Just(".values()"),
    ];
    (
        1..=population,
        proptest::collection::vec(hop, 1..=3),
        suffix,
    )
        .prop_map(|(src, hops, suffix)| format!("g.V({src}){}{suffix}", hops.join("")))
}

fn edges_strategy(population: u64) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1..=population, 1..=population), 0..=60)
}

/// Runs `text` under both executors and asserts the outcomes (including
/// errors — traverser-budget aborts must trip identically) match.
fn assert_equivalent(store: &dyn GraphStore, text: &str) {
    let config = ExecutorConfig {
        default_fanout: 8,
        max_traversers: 4_096,
        ..ExecutorConfig::default()
    };
    let batched = Executor::new(config.clone());
    let scalar = Executor::new(config.scalar());
    let b = batched.run_text(store, text);
    let s = scalar.run_text(store, text);
    assert_eq!(
        format!("{b:?}"),
        format!("{s:?}"),
        "batched and scalar executors diverged on {text}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In-memory graphs: cheap enough to sweep many random cases.
    #[test]
    fn batched_equals_scalar_on_memgraph(
        edges in edges_strategy(20),
        text in query_strategy(20),
    ) {
        let g = MemGraph::new();
        for &(s, d) in &edges {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d))).unwrap();
            g.insert_edge(&Edge::new(
                VertexId(d),
                reverse_etype(EdgeType::FOLLOW),
                VertexId(s),
            )).unwrap();
        }
        assert_equivalent(&g, &text);
    }

    /// The real engine, sealed: the checkpoint flushes base pages so the
    /// batched sweep reads CSR-packed segments while the scalar path
    /// takes per-vertex scans — the exact divergence surface the
    /// vectorized read path introduces.
    #[test]
    fn batched_equals_scalar_on_sealed_bg3(
        edges in edges_strategy(16),
        text in query_strategy(16),
    ) {
        let mut config = Bg3Config {
            maintain_reverse_edges: true,
            ..Bg3Config::default()
        }
        .with_durability();
        config.forest = config.forest.clone().with_split_out_threshold(4);
        let db = Bg3Db::open(config);
        for &(s, d) in &edges {
            db.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d))).unwrap();
        }
        db.checkpoint().unwrap();
        assert_equivalent(&db, &text);
    }
}
