//! # bg3-storage
//!
//! A faithful, in-process stand-in for the append-only shared cloud storage
//! that BG3 (SIGMOD-Companion '24) is deployed on at ByteDance (an internal
//! Pangu/Tectonic-style service with millisecond-level latency).
//!
//! The store is *append-only*: data is written out-of-place to the tail of a
//! stream and old versions are invalidated rather than overwritten (§2.5 of
//! the paper). Each stream is partitioned into fixed-size **extents**, the
//! unit of space reclamation. The store keeps, per extent, the usage metadata
//! that BG3's workload-aware garbage collector consumes (§3.3):
//!
//! * latest update time,
//! * valid/invalid record counts (fragmentation rate),
//! * a history of invalidation events (update gradient),
//! * an optional TTL deadline (batch expiry).
//!
//! Two measurement facilities make the paper's experiments reproducible on a
//! laptop:
//!
//! * [`SimClock`] — a virtual clock; every storage operation charges a
//!   configurable latency so experiments that report *milliseconds*
//!   (e.g. leader-follower sync latency, Fig. 13/14) are deterministic.
//! * [`IoStats`] — atomic counters for appends, random reads, and bytes in
//!   both directions, the quantities behind Fig. 9 (read amplification),
//!   Fig. 10 (write bandwidth) and Table 2 (background move bandwidth).
//!
//! The crate also provides [`SharedMappingTable`], the multi-versioned
//! page-id → storage-address directory that lives *on* the shared store and
//! lets read-only nodes observe a consistent old version until the read-write
//! node publishes (§3.4, Fig. 7 step (8)).

pub mod addr;
pub mod backend;
pub mod builder;
pub mod clock;
pub mod epoch;
pub mod error;
pub mod extent;
pub mod fault;
pub mod fault_backend;
pub mod file_backend;
pub mod frame;
pub mod health;
pub mod latency;
pub mod mapping;
pub mod stats;
pub mod store;
pub mod stream;

pub use addr::{ExtentId, PageAddr, RecordId, StreamId};
pub use backend::{BackendKind, BackendStats, ExtentBackend, PersistedExtent, SimBackend};
pub use bg3_cache::{CacheConfig, CacheStatsSnapshot, PageCache};
pub use builder::StoreBuilder;
// The whole observability crate rides along (`bg3_storage::obs::names`,
// `::export`, `::json`) so downstream crates reach the stable metric
// names and renderers without a direct bg3-obs dependency.
pub use bg3_obs as obs;
pub use bg3_obs::{
    HistogramSnapshot, MetricRegistry, MetricsSnapshot, TraceBuffer, TraceEvent, TraceKind,
};
pub use clock::{SimClock, SimInstant};
pub use epoch::{EpochFence, EpochFenceSnapshot, INITIAL_EPOCH};
pub use error::{ErrorKind, IoErrorClass, StorageError, StorageOp, StorageResult};
pub use extent::{ExtentInfo, ExtentState, UsageSample};
pub use fault::{
    CrashPoint, CrashSwitch, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, RetryPolicy,
};
pub use fault_backend::FaultBackend;
pub use file_backend::FileBackend;
pub use frame::{
    crc32c, decode_header, encode_frame, encode_header, verify_frame, FrameHeader, FrameKind,
    FrameViolation, FRAME_HEADER_LEN, FRAME_MAGIC,
};
pub use health::{DiskHealth, DiskHealthTracker};
pub use latency::LatencyModel;
pub use mapping::{MappingSnapshot, SharedMappingTable};
pub use stats::{IoStats, IoStatsSnapshot};
pub use store::{
    AppendOnlyStore, ReadOpts, RepairReport, RepairSupply, ScrubCheck, SlotKey, StoreConfig,
};
pub use stream::StreamStats;
