//! File-backed extent storage: one file per extent, real fsync discipline.
//!
//! Layout under the backend root:
//!
//! ```text
//! <root>/<stream>/ext-<id:016x>.dat      extent bytes
//! <root>/<stream>/ext-<id:016x>.sealed   empty durable-seal marker
//! ```
//!
//! where `<stream>` is `base`/`delta`/`wal`/`sst` for the well-known
//! streams and `stream-<N>` otherwise. The format inside each `.dat` file
//! is exactly the store's frame codec ([`crate::frame`]): a sequence of
//! 28-byte checksummed headers each followed by its payload, which makes
//! every extent file self-describing — recovery rebuilds the full record
//! index (including WAL LSNs, persisted in the frame tag) by walking
//! frames, with no separate metadata journal.
//!
//! Durability rules (rule 3 of the [`crate::backend`] contract):
//!
//! - `allocate` creates the file with `O_EXCL` and fsyncs the stream
//!   directory, so a crash cannot lose the directory entry of an extent
//!   that later acks writes.
//! - `sync` is `fdatasync` on the extent file. The WAL writer batches
//!   these (group commit); everyone else syncs at seal time.
//! - `seal` is `fdatasync` + create-and-fsync the `.sealed` marker +
//!   fsync the directory — fsync-before-seal, so a sealed extent's bytes
//!   are always durable before the seal itself becomes visible.
//! - `delete` removes both files and fsyncs the directory.
//!
//! Every `io::Error` is mapped through [`StorageError::io`] — the backend
//! fails closed, never panics, and never serves short reads (rule 2/4).

use crate::addr::{ExtentId, StreamId};
use crate::backend::{BackendStats, ExtentBackend, PersistedExtent, StatsSlot};
use crate::error::{StorageError, StorageOp, StorageResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Directory name for a stream under the backend root.
fn stream_dir_name(stream: StreamId) -> String {
    match stream {
        StreamId::BASE => "base".to_string(),
        StreamId::DELTA => "delta".to_string(),
        StreamId::WAL => "wal".to_string(),
        StreamId::SST => "sst".to_string(),
        StreamId(n) => format!("stream-{n}"),
    }
}

/// Inverse of [`stream_dir_name`]; `None` for unrelated directories.
fn parse_stream_dir(name: &str) -> Option<StreamId> {
    match name {
        "base" => Some(StreamId::BASE),
        "delta" => Some(StreamId::DELTA),
        "wal" => Some(StreamId::WAL),
        "sst" => Some(StreamId::SST),
        other => other
            .strip_prefix("stream-")
            .and_then(|n| n.parse::<u8>().ok())
            .map(StreamId),
    }
}

fn extent_file_name(extent: ExtentId) -> String {
    format!("ext-{:016x}.dat", extent.0)
}

fn seal_marker_name(extent: ExtentId) -> String {
    format!("ext-{:016x}.sealed", extent.0)
}

/// Inverse of [`extent_file_name`]; `None` for unrelated files.
fn parse_extent_file(name: &str) -> Option<ExtentId> {
    let hex = name.strip_prefix("ext-")?.strip_suffix(".dat")?;
    u64::from_str_radix(hex, 16).ok().map(ExtentId)
}

/// Opens `dir` and fsyncs it so freshly created/removed entries are
/// durable. Directory fsync is how POSIX persists the *name*, not just
/// the inode.
fn fsync_dir(dir: &Path, op: StorageOp) -> StorageResult<()> {
    let d = File::open(dir).map_err(|e| StorageError::io(op, &e))?;
    // A failed directory fsync is a failed durability barrier: the kernel
    // may have dropped the dirty entry, so report it as `SyncFailed`
    // (never retryable) rather than classifying the raw errno.
    d.sync_all().map_err(|e| StorageError::io_sync(op, &e))
}

/// The file-per-extent backend. Open file handles are cached (extents are
/// long-lived and bounded in number); all handle-table access is behind
/// one mutex, while the positioned reads/writes themselves run lock-free
/// on the shared `File` via `pread`/`pwrite`.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    handles: Mutex<HashMap<(StreamId, ExtentId), Arc<File>>>,
    stats: StatsSlot,
}

impl FileBackend {
    /// Opens (creating if needed) a backend rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StorageResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StorageError::io(StorageOp::Recovery, &e))?;
        Ok(FileBackend {
            root,
            handles: Mutex::new(HashMap::new()),
            stats: StatsSlot::default(),
        })
    }

    /// The backend's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn stream_dir(&self, stream: StreamId) -> PathBuf {
        self.root.join(stream_dir_name(stream))
    }

    fn extent_path(&self, stream: StreamId, extent: ExtentId) -> PathBuf {
        self.stream_dir(stream).join(extent_file_name(extent))
    }

    fn marker_path(&self, stream: StreamId, extent: ExtentId) -> PathBuf {
        self.stream_dir(stream).join(seal_marker_name(extent))
    }

    /// Returns the cached handle, opening the existing file on a miss
    /// (reattach after recovery).
    fn handle(
        &self,
        stream: StreamId,
        extent: ExtentId,
        op: StorageOp,
    ) -> StorageResult<Arc<File>> {
        let mut guard = self.handles.lock();
        if let Some(f) = guard.get(&(stream, extent)) {
            return Ok(Arc::clone(f));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.extent_path(stream, extent))
            .map_err(|e| StorageError::io(op, &e))?;
        let file = Arc::new(file);
        guard.insert((stream, extent), Arc::clone(&file));
        Ok(file)
    }
}

impl ExtentBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn attach_stats(&self, stats: BackendStats) {
        self.stats.attach(stats);
    }

    fn allocate(&self, stream: StreamId, extent: ExtentId, _capacity: usize) -> StorageResult<()> {
        let dir = self.stream_dir(stream);
        fs::create_dir_all(&dir).map_err(|e| StorageError::io(StorageOp::Append, &e))?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true) // extent ids are never reused; a collision is a bug
            .open(self.extent_path(stream, extent))
            .map_err(|e| StorageError::io(StorageOp::Append, &e))?;
        // The directory entry must survive a crash before any write to the
        // extent is acknowledged.
        fsync_dir(&dir, StorageOp::Append)?;
        self.handles.lock().insert((stream, extent), Arc::new(file));
        Ok(())
    }

    fn write_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        bytes: &[u8],
    ) -> StorageResult<()> {
        let file = self.handle(stream, extent, StorageOp::Append)?;
        file.write_all_at(bytes, at)
            .map_err(|e| StorageError::io(StorageOp::Append, &e))?;
        self.stats.with(|s| s.record_write(bytes.len()));
        Ok(())
    }

    fn read_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        len: usize,
    ) -> StorageResult<Vec<u8>> {
        let file = self.handle(stream, extent, StorageOp::Read)?;
        let mut buf = vec![0u8; len];
        file.read_exact_at(&mut buf, at)
            .map_err(|e| StorageError::io(StorageOp::Read, &e))?;
        self.stats.with(|s| s.record_read(len));
        Ok(buf)
    }

    fn extent_len(&self, stream: StreamId, extent: ExtentId) -> StorageResult<u64> {
        let file = self.handle(stream, extent, StorageOp::Read)?;
        let meta = file
            .metadata()
            .map_err(|e| StorageError::io(StorageOp::Read, &e))?;
        Ok(meta.len())
    }

    fn sync(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        let file = self.handle(stream, extent, StorageOp::Append)?;
        // Fsyncgate: after a failed fdatasync the kernel may already have
        // dropped the dirty pages, so the error is `SyncFailed` — callers
        // must poison the tail, never retry the sync.
        file.sync_data()
            .map_err(|e| StorageError::io_sync(StorageOp::Append, &e))?;
        self.stats.with(|s| s.record_sync());
        Ok(())
    }

    fn seal(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        // Fsync-before-seal: bytes first, then the marker, then the
        // directory entry of the marker. A crash can leave an unsealed
        // durable extent, never a sealed extent with undurable bytes.
        let file = self.handle(stream, extent, StorageOp::Append)?;
        file.sync_data()
            .map_err(|e| StorageError::io_sync(StorageOp::Append, &e))?;
        self.stats.with(|s| s.record_sync());
        let marker = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true) // idempotent re-seal
            .open(self.marker_path(stream, extent))
            .map_err(|e| StorageError::io(StorageOp::Append, &e))?;
        marker
            .sync_all()
            .map_err(|e| StorageError::io_sync(StorageOp::Append, &e))?;
        fsync_dir(&self.stream_dir(stream), StorageOp::Append)?;
        self.stats.with(|s| s.record_seal());
        Ok(())
    }

    fn delete(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        self.handles.lock().remove(&(stream, extent));
        fs::remove_file(self.extent_path(stream, extent))
            .map_err(|e| StorageError::io(StorageOp::Expire, &e))?;
        match fs::remove_file(self.marker_path(stream, extent)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {} // never sealed
            Err(e) => return Err(StorageError::io(StorageOp::Expire, &e)),
        }
        fsync_dir(&self.stream_dir(stream), StorageOp::Expire)?;
        self.stats.with(|s| s.record_delete());
        Ok(())
    }

    fn corrupt_bit(&self, stream: StreamId, extent: ExtentId, bit: u64) -> StorageResult<()> {
        let file = self.handle(stream, extent, StorageOp::Read)?;
        let mut byte = [0u8; 1];
        file.read_exact_at(&mut byte, bit / 8)
            .map_err(|e| StorageError::io(StorageOp::Read, &e))?;
        byte[0] ^= 1 << (bit % 8);
        file.write_all_at(&byte, bit / 8)
            .map_err(|e| StorageError::io(StorageOp::Read, &e))?;
        Ok(())
    }

    fn list_extents(&self) -> StorageResult<Vec<PersistedExtent>> {
        let op = StorageOp::Recovery;
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| StorageError::io(op, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(op, &e))?;
            let Some(stream) = entry.file_name().to_str().and_then(parse_stream_dir) else {
                continue;
            };
            let dir = entry.path();
            let files = fs::read_dir(&dir).map_err(|e| StorageError::io(op, &e))?;
            for file in files {
                let file = file.map_err(|e| StorageError::io(op, &e))?;
                let name = file.file_name();
                let Some(extent) = name.to_str().and_then(parse_extent_file) else {
                    continue;
                };
                let meta = file.metadata().map_err(|e| StorageError::io(op, &e))?;
                let sealed = self.marker_path(stream, extent).exists();
                out.push(PersistedExtent {
                    stream,
                    extent,
                    len: meta.len(),
                    sealed,
                });
            }
        }
        out.sort_by_key(|p| (p.stream.0, p.extent.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorKind, IoErrorClass};

    /// Minimal self-cleaning tempdir (no external crates available).
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let unique = format!(
                "bg3-filebackend-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            )
            .replace(['(', ')'], "");
            let path = std::env::temp_dir().join(unique);
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn file_backend_round_trips_on_disk() {
        let tmp = TempDir::new("roundtrip");
        let b = FileBackend::open(&tmp.0).unwrap();
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, b"hello")
            .unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 5, b" world")
            .unwrap();
        assert_eq!(b.extent_len(StreamId::BASE, ExtentId(1)).unwrap(), 11);
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 6, 5).unwrap(),
            b"world"
        );
        assert!(tmp.0.join("base").join("ext-0000000000000001.dat").exists());
    }

    #[test]
    fn file_backend_survives_handle_cache_loss() {
        let tmp = TempDir::new("reattach");
        {
            let b = FileBackend::open(&tmp.0).unwrap();
            b.allocate(StreamId::WAL, ExtentId(7), 64).unwrap();
            b.write_at(StreamId::WAL, ExtentId(7), 0, b"durable")
                .unwrap();
            b.seal(StreamId::WAL, ExtentId(7)).unwrap();
        } // drop: all handles closed, like a process restart
        let b = FileBackend::open(&tmp.0).unwrap();
        let listed = b.list_extents().unwrap();
        assert_eq!(
            listed,
            vec![PersistedExtent {
                stream: StreamId::WAL,
                extent: ExtentId(7),
                len: 7,
                sealed: true,
            }]
        );
        assert_eq!(
            b.read_at(StreamId::WAL, ExtentId(7), 0, 7).unwrap(),
            b"durable"
        );
    }

    #[test]
    fn file_backend_fails_closed_on_missing_extents() {
        let tmp = TempDir::new("missing");
        let b = FileBackend::open(&tmp.0).unwrap();
        let err = b.read_at(StreamId::BASE, ExtentId(42), 0, 4).unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::Io {
                class: IoErrorClass::NotFound,
                ..
            }
        ));
        assert!(!err.is_retryable(), "a vanished file will not reappear");
    }

    #[test]
    fn file_backend_short_reads_are_eof_errors() {
        let tmp = TempDir::new("shortread");
        let b = FileBackend::open(&tmp.0).unwrap();
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, b"abc").unwrap();
        let err = b.read_at(StreamId::BASE, ExtentId(1), 2, 4).unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::Io {
                class: IoErrorClass::UnexpectedEof,
                ..
            }
        ));
    }

    #[test]
    fn file_backend_rejects_extent_id_reuse() {
        let tmp = TempDir::new("reuse");
        let b = FileBackend::open(&tmp.0).unwrap();
        b.allocate(StreamId::SST, ExtentId(1), 64).unwrap();
        assert!(b.allocate(StreamId::SST, ExtentId(1), 64).is_err());
    }

    #[test]
    fn file_backend_delete_removes_both_files() {
        let tmp = TempDir::new("delete");
        let b = FileBackend::open(&tmp.0).unwrap();
        b.allocate(StreamId::DELTA, ExtentId(2), 64).unwrap();
        b.write_at(StreamId::DELTA, ExtentId(2), 0, b"bytes")
            .unwrap();
        b.seal(StreamId::DELTA, ExtentId(2)).unwrap();
        b.delete(StreamId::DELTA, ExtentId(2)).unwrap();
        assert!(b.list_extents().unwrap().is_empty());
        assert!(matches!(
            b.delete(StreamId::DELTA, ExtentId(2)).unwrap_err().kind,
            ErrorKind::Io {
                class: IoErrorClass::NotFound,
                ..
            }
        ));
    }

    #[test]
    fn corrupt_bit_persists_on_disk() {
        let tmp = TempDir::new("rot");
        let b = FileBackend::open(&tmp.0).unwrap();
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, &[0u8; 4])
            .unwrap();
        b.corrupt_bit(StreamId::BASE, ExtentId(1), 17).unwrap();
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 0, 4).unwrap(),
            vec![0, 0, 2, 0]
        );
    }

    #[test]
    fn stream_dir_names_round_trip() {
        for stream in [
            StreamId::BASE,
            StreamId::DELTA,
            StreamId::WAL,
            StreamId::SST,
            StreamId(9),
        ] {
            assert_eq!(parse_stream_dir(&stream_dir_name(stream)), Some(stream));
        }
        assert_eq!(parse_stream_dir("lost+found"), None);
        assert_eq!(parse_extent_file("ext-zz.dat"), None);
        assert_eq!(
            parse_extent_file("ext-00000000000000ff.dat"),
            Some(ExtentId(255))
        );
    }
}
