//! The shared, versioned mapping table.
//!
//! BG3 keeps the Bw-tree mapping table (page id → storage address) *on* the
//! shared store, and updates it only after dirty pages have been flushed
//! (§3.4, Fig. 7 step (8)). Until that publish, read-only nodes that miss in
//! cache resolve pages through the **old** mapping version and patch them
//! forward by replaying WAL records — this is what makes the design
//! consistent without blocking the leader.
//!
//! We model this with a copy-on-publish table: readers always see the last
//! published version; the RW node stages a batch of updates and publishes
//! them atomically, bumping the version number.

use crate::clock::SimClock;
use crate::epoch::EpochFence;
use crate::error::{StorageOp, StorageResult};
use crate::fault::{FaultInjector, FaultKind, FaultOp};
use crate::latency::LatencyModel;
use crate::stats::IoStats;
use crate::PageAddr;
use bg3_obs::{TraceBuffer, TraceKind};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// An immutable snapshot of the mapping table at some published version.
#[derive(Debug, Clone)]
pub struct MappingSnapshot {
    version: u64,
    entries: Arc<HashMap<u64, PageAddr>>,
    /// Order-independent XOR-fold of every entry's digest, maintained
    /// incrementally across publishes. Mapping publishes are in-memory
    /// snapshot swaps (no extent append to frame), so this is their
    /// integrity check: [`MappingSnapshot::verify_integrity`] recomputes
    /// the fold from scratch and compares.
    fingerprint: u64,
}

/// Digest of one `(page_id, addr)` mapping entry, XOR-folded into the
/// snapshot fingerprint. splitmix64-chained so every field of the address
/// participates.
fn entry_digest(page_id: u64, addr: &PageAddr) -> u64 {
    use crate::fault::splitmix64;
    let mut h = splitmix64(page_id ^ 0xA5A5_5A5A_C3C3_3C3C);
    h = splitmix64(h ^ (addr.stream.0 as u64) ^ addr.extent.0.rotate_left(8));
    h = splitmix64(h ^ ((addr.offset as u64) << 32) ^ (addr.len as u64));
    splitmix64(h ^ addr.record.0)
}

impl MappingSnapshot {
    /// The published version this snapshot reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The incrementally-maintained integrity fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the fingerprint from every entry and compares it to the
    /// maintained one. Adoption sites (checkpoint handling, promotion) call
    /// this to catch a mapping plane that drifted from its own accounting.
    pub fn verify_integrity(&self) -> bool {
        let recomputed = self.entries.iter().fold(0u64, |acc, (&page_id, addr)| {
            acc ^ entry_digest(page_id, addr)
        });
        recomputed == self.fingerprint
    }

    /// Resolves `page_id` to its storage address at this version.
    pub fn get(&self, page_id: u64) -> Option<PageAddr> {
        self.entries.get(&page_id).copied()
    }

    /// Iterates every `(page_id, addr)` entry, in no particular order —
    /// audit/scrub passes use this to cross-check the mapping against the
    /// store's extent population.
    pub fn entries(&self) -> impl Iterator<Item = (u64, PageAddr)> + '_ {
        self.entries.iter().map(|(&page_id, &addr)| (page_id, addr))
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How many published versions stay resolvable via
/// [`SharedMappingTable::snapshot_at`]. Snapshots are `Arc`-backed, so the
/// cost is one map clone per publish (already paid) plus a pointer here.
const RETAINED_VERSIONS: usize = 1024;

struct MappingInner {
    current: RwLock<MappingSnapshot>,
    /// Recent published versions, oldest first. Lets followers adopt the
    /// *exact* version a `CheckpointComplete` names (§3.3 multi-version
    /// metadata) instead of the live table, which may run ahead of their
    /// WAL replay. Bounded to [`RETAINED_VERSIONS`].
    history: Mutex<VecDeque<MappingSnapshot>>,
}

/// Thread-safe handle to the shared mapping table. Clones observe the same
/// table (they model different nodes resolving through the same service).
#[derive(Clone)]
pub struct SharedMappingTable {
    inner: Arc<MappingInner>,
    clock: SimClock,
    latency: LatencyModel,
    stats: Arc<IoStats>,
    faults: FaultInjector,
    /// Trace ring for metadata-plane events (seals, fence rejections).
    /// [`SharedMappingTable::for_store`] shares the store's ring so data-
    /// and metadata-plane events interleave into one ordered stream.
    trace: TraceBuffer,
    /// The storage-service-side fencing token: sealed on failover, checked
    /// by [`SharedMappingTable::publish_fenced`]. Shared with the WAL writer
    /// so one seal fences both the metadata and the log plane.
    fence: EpochFence,
}

impl SharedMappingTable {
    /// Creates an empty table at version 0, with fault injection disabled.
    pub fn new(clock: SimClock, latency: LatencyModel) -> Self {
        Self::with_faults(clock, latency, FaultInjector::disabled())
    }

    /// Creates an empty table whose publishes draw faults from `faults`.
    pub fn with_faults(clock: SimClock, latency: LatencyModel, faults: FaultInjector) -> Self {
        SharedMappingTable {
            inner: Arc::new(MappingInner {
                current: RwLock::new(MappingSnapshot {
                    version: 0,
                    entries: Arc::new(HashMap::new()),
                    fingerprint: 0,
                }),
                history: Mutex::new(VecDeque::new()),
            }),
            clock,
            latency,
            stats: Arc::new(IoStats::new()),
            faults,
            trace: TraceBuffer::default(),
            fence: EpochFence::new(),
        }
    }

    /// Replaces the trace ring (builder-style). Used by
    /// [`SharedMappingTable::for_store`] to join the store's event stream.
    pub fn with_trace(mut self, trace: TraceBuffer) -> Self {
        self.trace = trace;
        self
    }

    /// Convenience constructor tied to a store's clock, latency model,
    /// fault injector, and trace ring (so one [`crate::FaultPlan`] covers
    /// data and metadata, and one event stream orders both planes).
    pub fn for_store(store: &crate::AppendOnlyStore) -> Self {
        // The mapping service shares the store's clock; it keeps its own
        // publish counters (the store's stats track data-plane I/O only).
        Self::with_faults(
            store.clock().clone(),
            LatencyModel::default(),
            store.fault_injector().clone(),
        )
        .with_trace(store.trace().clone())
    }

    /// Latest published snapshot. Cheap: clones two `Arc`s.
    pub fn snapshot(&self) -> MappingSnapshot {
        self.inner.current.read().clone()
    }

    /// Resolves one page through the latest published version.
    pub fn get(&self, page_id: u64) -> Option<PageAddr> {
        self.inner.current.read().get(page_id)
    }

    /// The snapshot published as exactly `version`, if it is still retained
    /// (the last [`RETAINED_VERSIONS`] publishes plus the live one). A
    /// follower processing a `CheckpointComplete` adopts this rather than
    /// the live table so its cold reads never run ahead of its WAL replay.
    pub fn snapshot_at(&self, version: u64) -> Option<MappingSnapshot> {
        let current = self.inner.current.read().clone();
        if current.version == version {
            return Some(current);
        }
        let history = self.inner.history.lock();
        // History is version-ordered and dense: index arithmetic from the
        // back avoids a scan.
        let newest = history.back()?.version;
        if version > newest {
            return None;
        }
        let offset = (newest - version) as usize;
        if offset >= history.len() {
            return None;
        }
        let snap = history[history.len() - 1 - offset].clone();
        debug_assert_eq!(snap.version, version);
        Some(snap)
    }

    /// Atomically applies a batch of `(page_id, new_addr)` updates and
    /// removals, charging one publish latency. Returns the new version.
    ///
    /// `None` as an address removes the page (page was merged away).
    ///
    /// Under an armed [`FaultKind::PublishDrop`] the batch is silently
    /// discarded (the metadata RPC was lost): latency is still charged, the
    /// version does not advance, and the *current* version is returned —
    /// callers detecting a stale version can re-publish.
    pub fn publish(&self, updates: impl IntoIterator<Item = (u64, Option<PageAddr>)>) -> u64 {
        match self.faults.decide(FaultOp::MappingPublish, None) {
            Some(FaultKind::PublishDrop) => {
                self.clock.advance_nanos(self.latency.mapping_cost_nanos());
                return self.inner.current.read().version;
            }
            Some(FaultKind::Delay { nanos }) => {
                self.clock.advance_nanos(nanos);
            }
            _ => {}
        }
        let guard = self.inner.current.write();
        self.apply_locked(guard, updates)
    }

    /// [`SharedMappingTable::publish`] with an epoch check performed
    /// *atomically* with the version bump: the fence is consulted under the
    /// same write lock that serializes publishes and seals, so a zombie
    /// leader racing a promotion can never slip a batch in between the seal
    /// and its first check. A rejected batch leaves the table untouched.
    pub fn publish_fenced(
        &self,
        epoch: u64,
        updates: impl IntoIterator<Item = (u64, Option<PageAddr>)>,
    ) -> StorageResult<u64> {
        match self.faults.decide(FaultOp::MappingPublish, None) {
            Some(FaultKind::PublishDrop) => {
                self.clock.advance_nanos(self.latency.mapping_cost_nanos());
                return Ok(self.inner.current.read().version);
            }
            Some(FaultKind::Delay { nanos }) => {
                self.clock.advance_nanos(nanos);
            }
            _ => {}
        }
        let guard = self.inner.current.write();
        if let Err(e) = self.fence.check(epoch, StorageOp::MappingPublish) {
            self.stats.record_fenced_publish();
            self.trace.emit(
                self.clock.now().0,
                TraceKind::FenceRejectedPublish,
                epoch,
                self.fence.current(),
            );
            return Err(e);
        }
        Ok(self.apply_locked(guard, updates))
    }

    fn apply_locked(
        &self,
        mut guard: std::sync::RwLockWriteGuard<'_, MappingSnapshot>,
        updates: impl IntoIterator<Item = (u64, Option<PageAddr>)>,
    ) -> u64 {
        let mut next: HashMap<u64, PageAddr> = (*guard.entries).clone();
        let mut fingerprint = guard.fingerprint;
        for (page_id, addr) in updates {
            match addr {
                Some(a) => {
                    if let Some(old) = next.insert(page_id, a) {
                        fingerprint ^= entry_digest(page_id, &old);
                    }
                    fingerprint ^= entry_digest(page_id, &a);
                }
                None => {
                    if let Some(old) = next.remove(&page_id) {
                        fingerprint ^= entry_digest(page_id, &old);
                    }
                }
            }
        }
        let version = guard.version + 1;
        let snapshot = MappingSnapshot {
            version,
            entries: Arc::new(next),
            fingerprint,
        };
        {
            // Retain the superseded version while the publish lock is still
            // held, so `snapshot_at` never observes a gap.
            let mut history = self.inner.history.lock();
            history.push_back(guard.clone());
            if history.len() > RETAINED_VERSIONS {
                history.pop_front();
            }
        }
        *guard = snapshot;
        drop(guard);
        let cost = self.latency.mapping_cost_nanos();
        self.clock.advance_nanos(cost);
        self.stats.record_mapping_publish();
        self.stats.record_publish_latency(cost);
        version
    }

    /// The fencing token guarding this table (share it with WAL writers).
    pub fn fence(&self) -> &EpochFence {
        &self.fence
    }

    /// The epoch currently accepted by the store.
    pub fn epoch(&self) -> u64 {
        self.fence.current()
    }

    /// Checks that a writer on `epoch` is still fenced in, without
    /// publishing anything. Rejections count as fenced publishes — the
    /// caller was about to publish and the store turned it away.
    pub fn check_epoch(&self, epoch: u64) -> StorageResult<()> {
        if let Err(e) = self.fence.check(epoch, StorageOp::MappingPublish) {
            self.stats.record_fenced_publish();
            self.trace.emit(
                self.clock.now().0,
                TraceKind::FenceRejectedPublish,
                epoch,
                self.fence.current(),
            );
            return Err(e);
        }
        Ok(())
    }

    /// Seals every epoch below `epoch` (failover promotion, §3.4 extended):
    /// serialized with in-flight publishes via the table's write lock, so
    /// after this returns no batch from an older epoch can land. Returns
    /// the sealed-in epoch; fails if a newer epoch already holds the fence.
    pub fn seal_epoch(&self, epoch: u64) -> StorageResult<u64> {
        let _guard = self.inner.current.write();
        let sealed = self.fence.seal(epoch)?;
        self.stats.record_epoch_seal();
        self.trace
            .emit(self.clock.now().0, TraceKind::EpochSeal, sealed, 0);
        Ok(sealed)
    }

    /// The trace ring this table emits metadata-plane events into.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Number of publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.stats.snapshot().mapping_publishes
    }

    /// Metadata-plane I/O counters (publishes, fenced rejections, seals).
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }
}

impl std::fmt::Debug for SharedMappingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SharedMappingTable")
            .field("version", &snap.version())
            .field("pages", &snap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ExtentId, RecordId, StreamId};

    fn addr(n: u32) -> PageAddr {
        PageAddr {
            stream: StreamId::BASE,
            extent: ExtentId(1),
            offset: n,
            len: 8,
            record: RecordId(n as u64),
        }
    }

    fn table() -> SharedMappingTable {
        SharedMappingTable::new(SimClock::new(), LatencyModel::zero())
    }

    #[test]
    fn publish_is_atomic_and_versioned() {
        let t = table();
        assert_eq!(t.snapshot().version(), 0);
        let v1 = t.publish([(1, Some(addr(0))), (2, Some(addr(16)))]);
        assert_eq!(v1, 1);
        assert_eq!(t.get(1), Some(addr(0)));
        assert_eq!(t.get(2), Some(addr(16)));
        let v2 = t.publish([(1, Some(addr(32))), (2, None)]);
        assert_eq!(v2, 2);
        assert_eq!(t.get(1), Some(addr(32)));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn old_snapshots_keep_old_versions() {
        // This is the §3.4 consistency mechanism: an RO node resolving
        // through an older snapshot still sees the pre-split addresses.
        let t = table();
        t.publish([(7, Some(addr(0)))]);
        let old = t.snapshot();
        t.publish([(7, Some(addr(64)))]);
        assert_eq!(old.get(7), Some(addr(0)), "old version immutable");
        assert_eq!(t.get(7), Some(addr(64)), "new readers see the publish");
        assert_eq!(old.version() + 1, t.snapshot().version());
    }

    #[test]
    fn snapshot_at_resolves_retained_versions_exactly() {
        let t = table();
        t.publish([(1, Some(addr(0)))]); // v1
        t.publish([(1, Some(addr(16)))]); // v2
        t.publish([(1, Some(addr(32))), (2, Some(addr(8)))]); // v3
        assert_eq!(t.snapshot_at(0).unwrap().get(1), None);
        assert_eq!(t.snapshot_at(1).unwrap().get(1), Some(addr(0)));
        assert_eq!(t.snapshot_at(2).unwrap().get(1), Some(addr(16)));
        let v3 = t.snapshot_at(3).unwrap();
        assert_eq!(v3.get(1), Some(addr(32)));
        assert_eq!(v3.get(2), Some(addr(8)));
        assert!(t.snapshot_at(4).is_none(), "future versions do not exist");
    }

    #[test]
    fn publish_charges_latency() {
        let clock = SimClock::new();
        let t = SharedMappingTable::new(
            clock.clone(),
            LatencyModel {
                mapping_publish_us: 250,
                network_rtt_us: 0,
                append_us: 0,
                random_read_us: 0,
                per_kib_us: 0,
            },
        );
        t.publish([(1, Some(addr(0)))]);
        assert_eq!(clock.now().as_micros(), 250);
        assert_eq!(t.publish_count(), 1);
    }

    #[test]
    fn clones_share_the_table() {
        let t = table();
        let peer = t.clone();
        t.publish([(3, Some(addr(8)))]);
        assert_eq!(peer.get(3), Some(addr(8)));
    }

    #[test]
    fn publish_drop_keeps_the_old_version_visible() {
        use crate::fault::{FaultPlan, FaultRule};
        let plan = FaultPlan::seeded(3).with_rule(
            FaultRule::new(FaultOp::MappingPublish, FaultKind::PublishDrop, 1.0).at_most(1),
        );
        let t = SharedMappingTable::with_faults(
            SimClock::new(),
            LatencyModel::zero(),
            FaultInjector::new(plan),
        );
        // First publish is dropped: version stays 0, entry invisible.
        let v = t.publish([(1, Some(addr(0)))]);
        assert_eq!(v, 0);
        assert_eq!(t.get(1), None);
        // The budget is spent; a retry goes through.
        let v = t.publish([(1, Some(addr(0)))]);
        assert_eq!(v, 1);
        assert_eq!(t.get(1), Some(addr(0)));
    }

    #[test]
    fn sealed_epoch_rejects_zombie_publishes_atomically() {
        use crate::epoch::INITIAL_EPOCH;
        let t = table();
        // The original leader publishes on the initial epoch.
        assert_eq!(
            t.publish_fenced(INITIAL_EPOCH, [(1, Some(addr(0)))])
                .unwrap(),
            1
        );
        // Failover: epoch 2 is sealed in.
        assert_eq!(t.seal_epoch(2).unwrap(), 2);
        assert_eq!(t.epoch(), 2);
        // The zombie's batch is rejected and leaves the table untouched.
        let err = t
            .publish_fenced(INITIAL_EPOCH, [(1, Some(addr(64))), (9, Some(addr(8)))])
            .unwrap_err();
        assert!(err.is_fenced());
        assert_eq!(t.get(1), Some(addr(0)), "zombie write not applied");
        assert_eq!(t.get(9), None);
        assert_eq!(t.snapshot().version(), 1, "version did not advance");
        // The new leader publishes on epoch 2.
        assert_eq!(t.publish_fenced(2, [(1, Some(addr(32)))]).unwrap(), 2);
        let stats = t.stats().snapshot();
        assert_eq!(stats.epoch_seals, 1);
        assert_eq!(stats.fenced_publishes, 1);
        assert_eq!(t.fence().snapshot().rejected_publishes, 1);
    }

    #[test]
    fn check_epoch_counts_rejections_without_publishing() {
        let t = table();
        t.seal_epoch(3).unwrap();
        t.check_epoch(3).unwrap();
        assert!(t.check_epoch(1).unwrap_err().is_fenced());
        assert_eq!(t.stats().snapshot().fenced_publishes, 1);
        assert_eq!(t.snapshot().version(), 0);
    }

    #[test]
    fn stale_seal_loses() {
        let t = table();
        t.seal_epoch(5).unwrap();
        assert!(t.seal_epoch(4).unwrap_err().is_fenced());
        assert_eq!(t.epoch(), 5);
    }

    #[test]
    fn fingerprint_tracks_publishes_incrementally() {
        let t = table();
        assert!(t.snapshot().verify_integrity(), "empty table verifies");
        t.publish([(1, Some(addr(0))), (2, Some(addr(16)))]);
        t.publish([(1, Some(addr(32))), (3, Some(addr(8)))]); // overwrite + insert
        t.publish([(2, None)]); // remove
        let snap = t.snapshot();
        assert!(snap.verify_integrity());
        assert_ne!(snap.fingerprint(), 0);
        // Publishing back to an equivalent state yields an equal fold no
        // matter the path taken (XOR is order-independent).
        let u = table();
        u.publish([(3, Some(addr(8)))]);
        u.publish([(1, Some(addr(32)))]);
        assert_eq!(u.snapshot().fingerprint(), snap.fingerprint());
    }

    #[test]
    fn tampered_snapshot_fails_verification() {
        let t = table();
        t.publish([(1, Some(addr(0)))]);
        let mut snap = t.snapshot();
        let mut entries = (*snap.entries).clone();
        entries.insert(1, addr(64)); // silent in-memory corruption
        snap.entries = Arc::new(entries);
        assert!(!snap.verify_integrity());
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let t = table();
        assert!(t.snapshot().is_empty());
        t.publish([(1, Some(addr(0)))]);
        assert!(!t.snapshot().is_empty());
        assert_eq!(t.snapshot().len(), 1);
    }
}
