//! Structured errors for the storage layer.
//!
//! Every failure carries three orthogonal pieces of context: *what went
//! wrong* ([`ErrorKind`]), *which operation was in flight* ([`StorageOp`]),
//! and *which address it concerned* (when one exists). Injected faults and
//! crash-point kills flow through the same type, so retry policies and
//! recovery code can classify failures without string matching.

use crate::addr::{ExtentId, PageAddr, StreamId};
use crate::fault::{CrashPoint, FaultKind};
use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// The operation that was executing when the error arose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageOp {
    /// Appending a record to a stream tail.
    Append,
    /// Random read of a record.
    Read,
    /// Invalidating a superseded record.
    Invalidate,
    /// Relocating an extent's valid records during space reclamation.
    Relocate,
    /// Expiring a TTL extent wholesale.
    Expire,
    /// Publishing a mapping-table version.
    MappingPublish,
    /// Replaying or decoding WAL records.
    WalReplay,
    /// Crash-recovery orchestration.
    Recovery,
    /// Admission control deciding whether to accept the operation at all.
    Admission,
}

impl fmt::Display for StorageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StorageOp::Append => "append",
            StorageOp::Read => "read",
            StorageOp::Invalidate => "invalidate",
            StorageOp::Relocate => "relocate",
            StorageOp::Expire => "expire",
            StorageOp::MappingPublish => "mapping-publish",
            StorageOp::WalReplay => "wal-replay",
            StorageOp::Recovery => "recovery",
            StorageOp::Admission => "admission",
        };
        f.write_str(name)
    }
}

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The addressed record was never written, was relocated, or its extent
    /// has been reclaimed.
    AddrNotFound,
    /// The record bytes at the address do not span the requested range
    /// (offset/len mismatch — indicates a stale or corrupted address).
    AddrOutOfBounds,
    /// The stream has not been opened on this store.
    UnknownStream(StreamId),
    /// The extent is not (or no longer) present.
    UnknownExtent(ExtentId),
    /// A record larger than the extent capacity was appended.
    RecordTooLarge { len: usize, capacity: usize },
    /// The record was already invalidated (double free of log space).
    AlreadyInvalid,
    /// An extent that still holds valid records was asked to be freed
    /// without relocation.
    ExtentStillLive { extent: ExtentId, valid: usize },
    /// The bytes at the address do not decode as the expected record shape.
    CorruptRecord,
    /// The record frame at the address failed integrity verification (bad
    /// magic, CRC32C mismatch, wrong length, or wrong record identity).
    /// Distinct from [`ErrorKind::CorruptRecord`]: the *store* detected the
    /// damage before any caller tried to decode the payload.
    ChecksumMismatch,
    /// The extent has been quarantined by the scrubber: at least one of its
    /// frames failed verification and reads fail fast until it is repaired.
    ExtentQuarantined(ExtentId),
    /// The write carried a sealed (stale) epoch: a newer leader has been
    /// promoted and the store rejects the zombie writer.
    EpochFenced {
        /// Epoch the rejected writer presented.
        attempted: u64,
        /// Epoch currently accepted by the store.
        current: u64,
    },
    /// A deadline elapsed (on the virtual clock) before the operation could
    /// complete — e.g. a follower waiting on a session token from a dead
    /// leader.
    Timeout {
        /// How long the caller waited, in simulated nanoseconds.
        waited_nanos: u64,
    },
    /// No leader is available to serve the request (failover in progress).
    NoLeader,
    /// Admission control shed the operation: the op class's bounded queue is
    /// full (or its cost budget is exhausted past the queue bound). The
    /// caller should back off for at least `retry_after_nanos` of virtual
    /// time before resubmitting — retrying immediately is guaranteed to be
    /// shed again.
    Overloaded {
        /// Virtual nanoseconds until the class's queue is expected to have
        /// drained enough to accept this operation.
        retry_after_nanos: u64,
    },
    /// Admission control shed the operation because its estimated queue
    /// wait exceeds the class deadline: the op would have been admitted,
    /// executed after the caller stopped caring, and wasted the budget.
    DeadlineExceeded {
        /// Estimated queue wait at submission, in virtual nanoseconds.
        estimated_wait_nanos: u64,
        /// The class deadline it exceeded, in virtual nanoseconds.
        deadline_nanos: u64,
    },
    /// The stream's tail is poisoned by an earlier failed durability
    /// barrier (the "fsyncgate" rule): after a `sync`/`seal` fails, the
    /// kernel may have silently dropped the dirty pages, so the in-memory
    /// picture of the tail can no longer be trusted. The store and the WAL
    /// writer fail every subsequent append closed with this kind instead of
    /// retrying the fsync; only a fresh open (which re-derives durability
    /// from the frames actually on disk) clears the state.
    SyncPoisoned {
        /// The stream whose tail is poisoned.
        stream: StreamId,
    },
    /// A fault injected by the chaos layer (see [`crate::fault`]).
    Injected(FaultKind),
    /// A crash-point kill fired by the chaos harness.
    Crash(CrashPoint),
    /// An operating-system I/O failure surfaced by a real storage backend
    /// (the file backend; the simulated backend never produces these). The
    /// class drives retry policy; the detail preserves the OS message for
    /// logs without forcing callers to string-match.
    Io {
        /// Coarse classification of the underlying `std::io::ErrorKind`.
        class: IoErrorClass,
        /// The OS error rendered as text (errno message).
        detail: String,
    },
}

/// Coarse classification of `std::io::ErrorKind` used by [`ErrorKind::Io`].
/// Each class maps a family of errnos; [`StorageError::is_retryable`]
/// treats [`IoErrorClass::Interrupted`], [`IoErrorClass::TimedOut`], and
/// [`IoErrorClass::WouldBlock`] as retryable — everything else fails
/// closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorClass {
    /// ENOENT: the extent file or directory vanished underneath us.
    NotFound,
    /// EACCES/EPERM: the backend root is not writable.
    PermissionDenied,
    /// ENOSPC/EDQUOT: the filesystem is out of space or quota. Not
    /// syscall-retryable — retrying the write cannot free space; the only
    /// recovery path is the admission layer's `Overloaded{retry_after}`
    /// shed while GC reclaims extents.
    NoSpace,
    /// A durability barrier (fsync/fdatasync) failed. Never retryable: the
    /// kernel may have dropped the dirty pages on the first failure, so a
    /// later "successful" fsync proves nothing about the lost writes.
    SyncFailed,
    /// EINTR: the syscall was interrupted; retrying is safe.
    Interrupted,
    /// ETIMEDOUT: the device or network filesystem timed out.
    TimedOut,
    /// EAGAIN/EWOULDBLOCK: transient back-pressure; retrying is safe.
    WouldBlock,
    /// A positioned read ended before the requested range (truncated file).
    UnexpectedEof,
    /// A write returned zero bytes of progress.
    WriteZero,
    /// EINVAL: a malformed path or offset reached the OS.
    InvalidInput,
    /// The operation is not supported by this filesystem.
    Unsupported,
    /// Any other `std::io::ErrorKind`.
    Other,
}

impl IoErrorClass {
    /// Classifies a raw `std::io::Error` by its kind.
    pub fn classify(err: &std::io::Error) -> IoErrorClass {
        use std::io::ErrorKind as K;
        match err.kind() {
            K::NotFound => IoErrorClass::NotFound,
            K::PermissionDenied => IoErrorClass::PermissionDenied,
            K::StorageFull | K::QuotaExceeded => IoErrorClass::NoSpace,
            K::Interrupted => IoErrorClass::Interrupted,
            K::TimedOut => IoErrorClass::TimedOut,
            K::WouldBlock => IoErrorClass::WouldBlock,
            K::UnexpectedEof => IoErrorClass::UnexpectedEof,
            K::WriteZero => IoErrorClass::WriteZero,
            K::InvalidInput => IoErrorClass::InvalidInput,
            K::Unsupported => IoErrorClass::Unsupported,
            _ => IoErrorClass::Other,
        }
    }

    /// True when retrying the same syscall can succeed without any other
    /// intervention (interrupted, timed out, or back-pressured).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            IoErrorClass::Interrupted | IoErrorClass::TimedOut | IoErrorClass::WouldBlock
        )
    }
}

impl fmt::Display for IoErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IoErrorClass::NotFound => "not-found",
            IoErrorClass::PermissionDenied => "permission-denied",
            IoErrorClass::NoSpace => "no-space",
            IoErrorClass::SyncFailed => "sync-failed",
            IoErrorClass::Interrupted => "interrupted",
            IoErrorClass::TimedOut => "timed-out",
            IoErrorClass::WouldBlock => "would-block",
            IoErrorClass::UnexpectedEof => "unexpected-eof",
            IoErrorClass::WriteZero => "write-zero",
            IoErrorClass::InvalidInput => "invalid-input",
            IoErrorClass::Unsupported => "unsupported",
            IoErrorClass::Other => "other",
        };
        f.write_str(name)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::AddrNotFound => write!(f, "address not found"),
            ErrorKind::AddrOutOfBounds => write!(f, "address out of bounds"),
            ErrorKind::UnknownStream(s) => write!(f, "unknown stream {s}"),
            ErrorKind::UnknownExtent(e) => write!(f, "unknown extent {e}"),
            ErrorKind::RecordTooLarge { len, capacity } => {
                write!(
                    f,
                    "record of {len} bytes exceeds extent capacity {capacity}"
                )
            }
            ErrorKind::AlreadyInvalid => write!(f, "record already invalidated"),
            ErrorKind::ExtentStillLive { extent, valid } => {
                write!(f, "{extent} still holds {valid} valid records")
            }
            ErrorKind::CorruptRecord => write!(f, "record bytes failed to decode"),
            ErrorKind::ChecksumMismatch => write!(f, "record frame failed checksum verification"),
            ErrorKind::ExtentQuarantined(e) => {
                write!(f, "{e} is quarantined pending repair")
            }
            ErrorKind::EpochFenced { attempted, current } => {
                write!(f, "epoch {attempted} is fenced (store is at {current})")
            }
            ErrorKind::Timeout { waited_nanos } => {
                write!(f, "timed out after {waited_nanos}ns of virtual time")
            }
            ErrorKind::NoLeader => write!(f, "no leader available"),
            ErrorKind::Overloaded { retry_after_nanos } => {
                write!(f, "overloaded; retry after {retry_after_nanos}ns")
            }
            ErrorKind::DeadlineExceeded {
                estimated_wait_nanos,
                deadline_nanos,
            } => write!(
                f,
                "estimated queue wait {estimated_wait_nanos}ns exceeds the \
                 {deadline_nanos}ns deadline"
            ),
            ErrorKind::SyncPoisoned { stream } => {
                write!(
                    f,
                    "{stream} tail is poisoned by an earlier failed fsync; \
                     reopen to recover from on-disk frames"
                )
            }
            ErrorKind::Injected(fault) => write!(f, "injected fault: {fault}"),
            ErrorKind::Crash(point) => write!(f, "crashed at {point}"),
            ErrorKind::Io { class, detail } => write!(f, "os i/o error ({class}): {detail}"),
        }
    }
}

/// A storage failure with full context: kind, operation, and (when one
/// exists) the address involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// The operation that was executing.
    pub op: StorageOp,
    /// The record address involved, when the failure concerns one.
    pub addr: Option<PageAddr>,
}

impl StorageError {
    /// Creates an error with no address context.
    pub fn new(kind: ErrorKind, op: StorageOp) -> Self {
        StorageError {
            kind,
            op,
            addr: None,
        }
    }

    /// Attaches the address the failure concerns.
    pub fn with_addr(mut self, addr: PageAddr) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Missing record during `op` at `addr`.
    pub fn addr_not_found(op: StorageOp, addr: PageAddr) -> Self {
        Self::new(ErrorKind::AddrNotFound, op).with_addr(addr)
    }

    /// Range mismatch during `op` at `addr`.
    pub fn addr_out_of_bounds(op: StorageOp, addr: PageAddr) -> Self {
        Self::new(ErrorKind::AddrOutOfBounds, op).with_addr(addr)
    }

    /// Unopened stream touched during `op`.
    pub fn unknown_stream(op: StorageOp, stream: StreamId) -> Self {
        Self::new(ErrorKind::UnknownStream(stream), op)
    }

    /// Missing extent touched during `op`.
    pub fn unknown_extent(op: StorageOp, extent: ExtentId) -> Self {
        Self::new(ErrorKind::UnknownExtent(extent), op)
    }

    /// Oversized append.
    pub fn record_too_large(len: usize, capacity: usize) -> Self {
        Self::new(
            ErrorKind::RecordTooLarge { len, capacity },
            StorageOp::Append,
        )
    }

    /// Double invalidation at `addr`.
    pub fn already_invalid(addr: PageAddr) -> Self {
        Self::new(ErrorKind::AlreadyInvalid, StorageOp::Invalidate).with_addr(addr)
    }

    /// Premature expiry of a live extent.
    pub fn extent_still_live(extent: ExtentId, valid: usize) -> Self {
        Self::new(
            ErrorKind::ExtentStillLive { extent, valid },
            StorageOp::Expire,
        )
    }

    /// Undecodable record bytes during `op` at `addr`.
    pub fn corrupt_record(op: StorageOp, addr: PageAddr) -> Self {
        Self::new(ErrorKind::CorruptRecord, op).with_addr(addr)
    }

    /// Frame verification failure during `op` at `addr`.
    pub fn checksum_mismatch(op: StorageOp, addr: PageAddr) -> Self {
        Self::new(ErrorKind::ChecksumMismatch, op).with_addr(addr)
    }

    /// Read or relocation refused because `extent` is quarantined.
    pub fn extent_quarantined(op: StorageOp, extent: ExtentId) -> Self {
        Self::new(ErrorKind::ExtentQuarantined(extent), op)
    }

    /// A write from sealed epoch `attempted` rejected during `op` while the
    /// store accepts `current`.
    pub fn epoch_fenced(op: StorageOp, attempted: u64, current: u64) -> Self {
        Self::new(ErrorKind::EpochFenced { attempted, current }, op)
    }

    /// A virtual-time deadline elapsed during `op` after `waited_nanos`.
    pub fn timeout(op: StorageOp, waited_nanos: u64) -> Self {
        Self::new(ErrorKind::Timeout { waited_nanos }, op)
    }

    /// No leader was available to serve `op`.
    pub fn no_leader(op: StorageOp) -> Self {
        Self::new(ErrorKind::NoLeader, op)
    }

    /// Admission control shed the operation; the caller should back off
    /// for at least `retry_after_nanos` of virtual time.
    pub fn overloaded(retry_after_nanos: u64) -> Self {
        Self::new(
            ErrorKind::Overloaded { retry_after_nanos },
            StorageOp::Admission,
        )
    }

    /// Admission control shed the operation because its estimated queue
    /// wait exceeds the class deadline.
    pub fn deadline_exceeded(estimated_wait_nanos: u64, deadline_nanos: u64) -> Self {
        Self::new(
            ErrorKind::DeadlineExceeded {
                estimated_wait_nanos,
                deadline_nanos,
            },
            StorageOp::Admission,
        )
    }

    /// An append or sync rejected because `stream`'s tail was poisoned by
    /// an earlier failed durability barrier (fsyncgate rule).
    pub fn sync_poisoned(op: StorageOp, stream: StreamId) -> Self {
        Self::new(ErrorKind::SyncPoisoned { stream }, op)
    }

    /// A fault injected by the chaos layer during `op`.
    pub fn injected(op: StorageOp, fault: FaultKind) -> Self {
        Self::new(ErrorKind::Injected(fault), op)
    }

    /// A crash-point kill at `point`.
    pub fn crash(point: CrashPoint) -> Self {
        Self::new(ErrorKind::Crash(point), point.op())
    }

    /// An OS I/O failure surfaced by a real backend during `op`. The error
    /// is classified by [`IoErrorClass::classify`] so retry policies never
    /// string-match, and the OS message is preserved for logs.
    pub fn io(op: StorageOp, err: &std::io::Error) -> Self {
        Self::new(
            ErrorKind::Io {
                class: IoErrorClass::classify(err),
                detail: err.to_string(),
            },
            op,
        )
    }

    /// An OS I/O failure with a caller-forced class — used where the
    /// syscall context, not the errno, decides the class (fault-injecting
    /// backends, and fsync paths that must report [`IoErrorClass::SyncFailed`]).
    pub fn io_class(op: StorageOp, class: IoErrorClass, detail: impl Into<String>) -> Self {
        Self::new(
            ErrorKind::Io {
                class,
                detail: detail.into(),
            },
            op,
        )
    }

    /// A failed durability barrier surfaced by a real backend during `op`.
    /// Always classed [`IoErrorClass::SyncFailed`] regardless of errno:
    /// whatever the kernel reported, the dirty pages may already be gone,
    /// so the failure must not be retried (fsyncgate rule).
    pub fn io_sync(op: StorageOp, err: &std::io::Error) -> Self {
        Self::io_class(op, IoErrorClass::SyncFailed, err.to_string())
    }

    /// True when this error was injected by the chaos layer (fault or
    /// crash), as opposed to arising organically.
    pub fn is_injected(&self) -> bool {
        matches!(self.kind, ErrorKind::Injected(_) | ErrorKind::Crash(_))
    }

    /// True when this error is a crash-point kill. Crash errors must
    /// propagate to the harness — retrying them would defeat the kill.
    pub fn is_crash(&self) -> bool {
        matches!(self.kind, ErrorKind::Crash(_))
    }

    /// True when the stream tail is poisoned by an earlier failed fsync.
    /// Never retryable: only a fresh open clears the state.
    pub fn is_sync_poisoned(&self) -> bool {
        matches!(self.kind, ErrorKind::SyncPoisoned { .. })
    }

    /// True when the error is an epoch-fencing rejection. A fenced writer
    /// must never retry — it is a zombie; the error is its signal to step
    /// down.
    pub fn is_fenced(&self) -> bool {
        matches!(self.kind, ErrorKind::EpochFenced { .. })
    }

    /// True when a virtual-time deadline elapsed.
    pub fn is_timeout(&self) -> bool {
        matches!(self.kind, ErrorKind::Timeout { .. })
    }

    /// True when admission control shed the operation — either outright
    /// ([`ErrorKind::Overloaded`]) or because its estimated queue wait
    /// exceeded the class deadline ([`ErrorKind::DeadlineExceeded`]). Shed
    /// ops were never executed, so retrying after backing off is always
    /// safe.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::Overloaded { .. } | ErrorKind::DeadlineExceeded { .. }
        )
    }

    /// The virtual-time backoff hint carried by an [`ErrorKind::Overloaded`]
    /// shed, when present. Deadline sheds carry no hint: the class queue is
    /// not over its bound, so any backoff that outlasts the current burst
    /// will do.
    pub fn retry_after_nanos(&self) -> Option<u64> {
        match self.kind {
            ErrorKind::Overloaded { retry_after_nanos } => Some(retry_after_nanos),
            _ => None,
        }
    }

    /// True when the failure is transient and retrying the same operation
    /// can succeed: injected append/read failures and torn appends. Crashes
    /// and organic errors (bad address, oversized record, ...) are
    /// permanent for a given call.
    pub fn is_transient(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::Injected(
                FaultKind::AppendFail | FaultKind::AppendTorn | FaultKind::ReadFail
            )
        )
    }

    /// True when retrying the operation has a chance of succeeding. This is
    /// a superset of [`Self::is_transient`]: a checksum mismatch on a *read*
    /// is retryable (the store may serve a clean replica, or a short/stale
    /// read may not recur), whereas a quarantined extent is not — the
    /// scrubber must repair it first. Crashes and fencing are never retried.
    pub fn is_retryable(&self) -> bool {
        if self.is_transient() {
            return true;
        }
        if self.is_overloaded() {
            // Shed operations were never executed; once the caller backs
            // off (see [`Self::retry_after_nanos`]) resubmission is safe
            // and expected to succeed when pressure drains.
            return true;
        }
        if let ErrorKind::Io { class, .. } = &self.kind {
            return class.is_retryable();
        }
        matches!(
            (&self.kind, self.op),
            (ErrorKind::ChecksumMismatch, StorageOp::Read)
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(addr) => write!(f, "{} failed at {addr}: {}", self.op, self.kind),
            None => write!(f, "{} failed: {}", self.op, self.kind),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RecordId;

    fn addr() -> PageAddr {
        PageAddr {
            stream: StreamId::BASE,
            extent: ExtentId(2),
            offset: 4,
            len: 8,
            record: RecordId(11),
        }
    }

    #[test]
    fn errors_render_kind_op_and_addr() {
        assert_eq!(
            StorageError::addr_not_found(StorageOp::Read, addr()).to_string(),
            "read failed at base/ext#2@4+8: address not found"
        );
        assert_eq!(
            StorageError::record_too_large(10, 4).to_string(),
            "append failed: record of 10 bytes exceeds extent capacity 4"
        );
        assert_eq!(
            StorageError::extent_still_live(ExtentId(1), 3).to_string(),
            "expire failed: ext#1 still holds 3 valid records"
        );
    }

    #[test]
    fn classification_flags() {
        let organic = StorageError::addr_not_found(StorageOp::Read, addr());
        assert!(!organic.is_injected());
        assert!(!organic.is_transient());
        assert!(!organic.is_crash());

        let fault = StorageError::injected(StorageOp::Append, FaultKind::AppendFail);
        assert!(fault.is_injected());
        assert!(fault.is_transient());
        assert!(!fault.is_crash());

        let crash = StorageError::crash(CrashPoint::MidFlush);
        assert!(crash.is_injected());
        assert!(!crash.is_transient(), "crashes must not be retried");
        assert!(crash.is_crash());
    }

    #[test]
    fn fencing_and_timeout_classification() {
        let fenced = StorageError::epoch_fenced(StorageOp::MappingPublish, 3, 5);
        assert!(fenced.is_fenced());
        assert!(!fenced.is_transient(), "zombies must not retry");
        assert!(!fenced.is_crash());
        assert_eq!(
            fenced.to_string(),
            "mapping-publish failed: epoch 3 is fenced (store is at 5)"
        );

        let timeout = StorageError::timeout(StorageOp::WalReplay, 1_000);
        assert!(timeout.is_timeout());
        assert!(!timeout.is_transient());
        assert_eq!(
            timeout.to_string(),
            "wal-replay failed: timed out after 1000ns of virtual time"
        );

        let no_leader = StorageError::no_leader(StorageOp::Append);
        assert!(!no_leader.is_transient());
        assert_eq!(no_leader.to_string(), "append failed: no leader available");
    }

    #[test]
    fn retryable_covers_read_checksum_but_not_quarantine() {
        let mismatch = StorageError::checksum_mismatch(StorageOp::Read, addr());
        assert!(!mismatch.is_transient());
        assert!(mismatch.is_retryable(), "store may serve a clean replica");
        assert_eq!(
            mismatch.to_string(),
            "read failed at base/ext#2@4+8: record frame failed checksum verification"
        );

        // A mismatch found while relocating is not retryable: the damage is
        // in our own extent, not in a flaky read path.
        let relocating = StorageError::checksum_mismatch(StorageOp::Relocate, addr());
        assert!(!relocating.is_retryable());

        let quarantined = StorageError::extent_quarantined(StorageOp::Read, ExtentId(7));
        assert!(!quarantined.is_retryable(), "repair must happen first");
        assert_eq!(
            quarantined.to_string(),
            "read failed: ext#7 is quarantined pending repair"
        );

        // Transient injected faults remain retryable.
        assert!(StorageError::injected(StorageOp::Read, FaultKind::ReadFail).is_retryable());
        assert!(!StorageError::crash(CrashPoint::MidFlush).is_retryable());
    }

    #[test]
    fn overload_sheds_are_retryable_with_backoff_hints() {
        let shed = StorageError::overloaded(2_500);
        assert!(shed.is_overloaded());
        assert!(shed.is_retryable(), "shed ops were never executed");
        assert!(!shed.is_transient(), "sheds are not chaos injections");
        assert_eq!(shed.retry_after_nanos(), Some(2_500));
        assert_eq!(
            shed.to_string(),
            "admission failed: overloaded; retry after 2500ns"
        );

        let late = StorageError::deadline_exceeded(9_000, 5_000);
        assert!(late.is_overloaded());
        assert!(late.is_retryable());
        assert!(!late.is_timeout(), "distinct from an elapsed-wait Timeout");
        assert_eq!(
            late.retry_after_nanos(),
            None,
            "deadline sheds carry no hint"
        );
        assert_eq!(
            late.to_string(),
            "admission failed: estimated queue wait 9000ns exceeds the 5000ns deadline"
        );
    }

    #[test]
    fn delay_and_publish_drop_are_not_surfaced_as_transient() {
        // Delay and PublishDrop never surface as errors at all; if one is
        // wrapped manually it is not retryable.
        let e = StorageError::injected(StorageOp::Read, FaultKind::Delay { nanos: 5 });
        assert!(!e.is_transient());
    }

    #[test]
    fn implements_std_error_end_to_end() {
        let e: Box<dyn std::error::Error> = Box::new(StorageError::already_invalid(addr()));
        assert!(e.to_string().contains("already invalidated"));
    }

    /// One assertion per mapped errno class: the `std::io::ErrorKind` →
    /// [`IoErrorClass`] mapping and the fail-closed retry policy for each.
    #[test]
    fn io_error_classes_map_and_classify_per_errno() {
        use std::io::{Error as IoError, ErrorKind as K};
        let cases: &[(K, IoErrorClass, bool)] = &[
            (K::NotFound, IoErrorClass::NotFound, false),
            (K::PermissionDenied, IoErrorClass::PermissionDenied, false),
            (K::StorageFull, IoErrorClass::NoSpace, false),
            (K::QuotaExceeded, IoErrorClass::NoSpace, false),
            (K::Interrupted, IoErrorClass::Interrupted, true),
            (K::TimedOut, IoErrorClass::TimedOut, true),
            (K::WouldBlock, IoErrorClass::WouldBlock, true),
            (K::UnexpectedEof, IoErrorClass::UnexpectedEof, false),
            (K::WriteZero, IoErrorClass::WriteZero, false),
            (K::InvalidInput, IoErrorClass::InvalidInput, false),
            (K::Unsupported, IoErrorClass::Unsupported, false),
            (K::BrokenPipe, IoErrorClass::Other, false),
        ];
        for &(kind, class, retryable) in cases {
            let os = IoError::new(kind, format!("synthetic {kind:?}"));
            let err = StorageError::io(StorageOp::Append, &os);
            match &err.kind {
                ErrorKind::Io { class: got, detail } => {
                    assert_eq!(*got, class, "errno kind {kind:?} misclassified");
                    assert!(detail.contains("synthetic"), "OS message dropped");
                }
                other => panic!("expected Io kind, got {other:?}"),
            }
            assert_eq!(
                err.is_retryable(),
                retryable,
                "retry policy wrong for {kind:?}"
            );
            assert!(!err.is_transient(), "OS errors are never chaos-injected");
            assert!(!err.is_injected());
        }
    }

    #[test]
    fn io_errors_render_class_and_detail() {
        let os = std::io::Error::new(std::io::ErrorKind::StorageFull, "no space left on device");
        let err = StorageError::io(StorageOp::Append, &os);
        assert_eq!(
            err.to_string(),
            "append failed: os i/o error (no-space): no space left on device"
        );
    }

    /// `NoSpace` is not syscall-retryable — the only recovery path is the
    /// admission layer's `Overloaded{retry_after}` shed while GC reclaims.
    #[test]
    fn no_space_retries_only_through_the_admission_path() {
        let os = std::io::Error::new(std::io::ErrorKind::StorageFull, "ENOSPC");
        let enospc = StorageError::io(StorageOp::Append, &os);
        assert!(!enospc.is_retryable(), "retrying a full disk is futile");
        assert!(!enospc.is_transient());

        // The degradation ladder converts the condition into an admission
        // shed, and *that* carries the retry contract.
        let shed = StorageError::overloaded(7_000);
        assert!(shed.is_retryable());
        assert_eq!(shed.retry_after_nanos(), Some(7_000));
    }

    /// The fsyncgate rule end to end at the error layer: a failed barrier
    /// is always classed `SyncFailed` (whatever errno the kernel chose),
    /// and a poisoned tail is never retryable.
    #[test]
    fn sync_failures_and_poisoned_tails_are_never_retryable() {
        // Any errno on the fsync path maps to SyncFailed, even ones that
        // would be retryable on a read/write path.
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::StorageFull,
            std::io::ErrorKind::Other,
        ] {
            let os = std::io::Error::new(kind, format!("fsync {kind:?}"));
            let err = StorageError::io_sync(StorageOp::Append, &os);
            match &err.kind {
                ErrorKind::Io { class, detail } => {
                    assert_eq!(*class, IoErrorClass::SyncFailed);
                    assert!(detail.contains("fsync"));
                }
                other => panic!("expected Io kind, got {other:?}"),
            }
            assert!(!err.is_retryable(), "fsync must never be retried");
        }
        assert!(!IoErrorClass::SyncFailed.is_retryable());
        assert!(!IoErrorClass::NoSpace.is_retryable());

        let poisoned = StorageError::sync_poisoned(StorageOp::Append, StreamId::WAL);
        assert!(poisoned.is_sync_poisoned());
        assert!(!poisoned.is_retryable(), "poison clears only on reopen");
        assert!(!poisoned.is_transient());
        assert!(!poisoned.is_overloaded());
        assert_eq!(
            poisoned.to_string(),
            "append failed: wal tail is poisoned by an earlier failed fsync; \
             reopen to recover from on-disk frames"
        );
    }
}
