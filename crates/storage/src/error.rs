//! Error types shared by the storage layer.

use crate::addr::{ExtentId, PageAddr, StreamId};
use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors produced by the append-only store and mapping table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The addressed record was never written, was relocated, or its extent
    /// has been reclaimed.
    AddrNotFound(PageAddr),
    /// The record bytes at the address do not span the requested range
    /// (offset/len mismatch — indicates a stale or corrupted address).
    AddrOutOfBounds(PageAddr),
    /// The stream has not been opened on this store.
    UnknownStream(StreamId),
    /// The extent is not (or no longer) present.
    UnknownExtent(ExtentId),
    /// A record larger than the extent capacity was appended.
    RecordTooLarge { len: usize, capacity: usize },
    /// The record was already invalidated (double free of log space).
    AlreadyInvalid(PageAddr),
    /// An extent that still holds valid records was asked to be freed
    /// without relocation.
    ExtentStillLive { extent: ExtentId, valid: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::AddrNotFound(addr) => write!(f, "address not found: {addr}"),
            StorageError::AddrOutOfBounds(addr) => write!(f, "address out of bounds: {addr}"),
            StorageError::UnknownStream(s) => write!(f, "unknown stream: {s}"),
            StorageError::UnknownExtent(e) => write!(f, "unknown extent: {e}"),
            StorageError::RecordTooLarge { len, capacity } => {
                write!(f, "record of {len} bytes exceeds extent capacity {capacity}")
            }
            StorageError::AlreadyInvalid(addr) => {
                write!(f, "record already invalidated: {addr}")
            }
            StorageError::ExtentStillLive { extent, valid } => {
                write!(f, "{extent} still holds {valid} valid records")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RecordId;

    #[test]
    fn errors_render_human_readable() {
        let addr = PageAddr {
            stream: StreamId::BASE,
            extent: ExtentId(2),
            offset: 4,
            len: 8,
            record: RecordId(11),
        };
        assert_eq!(
            StorageError::AddrNotFound(addr).to_string(),
            "address not found: base/ext#2@4+8"
        );
        assert_eq!(
            StorageError::RecordTooLarge { len: 10, capacity: 4 }.to_string(),
            "record of 10 bytes exceeds extent capacity 4"
        );
        assert_eq!(
            StorageError::ExtentStillLive { extent: ExtentId(1), valid: 3 }.to_string(),
            "ext#1 still holds 3 valid records"
        );
    }
}
