//! Errno-level fault injection below the store.
//!
//! [`FaultBackend`] decorates any [`ExtentBackend`] — the in-memory
//! [`crate::SimBackend`] or the real [`crate::FileBackend`] — and injects
//! seeded, deterministic *OS-level* failures: fsync EIO, ENOSPC, torn
//! media writes, read EIO, and a sticky disk-full regime. The store-level
//! injector ([`crate::FaultInjector`] inside `AppendOnlyStore`) models
//! service-level faults (lost RPCs, stale replicas); this layer models the
//! disk itself misbehaving, so the fail-closed fsync poisoning and ENOSPC
//! degradation paths are exercised identically on both backends from one
//! [`FaultPlan`].
//!
//! Fault draws use the same pure `(seed, rule, op-index)` schedule as the
//! store-level injector, under the dedicated op classes
//! [`FaultOp::Sync`], [`FaultOp::BackendWrite`], and
//! [`FaultOp::BackendRead`]. With an empty plan every method is a pure
//! passthrough plus one branch — the decorator-transparency contract the
//! backend conformance suite checks.

use crate::addr::{ExtentId, StreamId};
use crate::backend::{BackendStats, ExtentBackend, PersistedExtent};
use crate::error::{IoErrorClass, StorageError, StorageOp, StorageResult};
use crate::fault::{FaultInjector, FaultKind, FaultOp, FaultPlan};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An [`ExtentBackend`] decorator injecting errno-level faults.
#[derive(Debug)]
pub struct FaultBackend {
    inner: Arc<dyn ExtentBackend>,
    injector: FaultInjector,
    /// The sticky disk-full regime: armed by [`FaultKind::DiskFull`],
    /// cleared when a delete (space reclaim) reaches the inner backend.
    disk_full: AtomicBool,
}

impl FaultBackend {
    /// Decorates `inner` with the faults of `plan`.
    pub fn new(inner: Arc<dyn ExtentBackend>, plan: FaultPlan) -> Self {
        FaultBackend {
            inner,
            injector: FaultInjector::new(plan),
            disk_full: AtomicBool::new(false),
        }
    }

    /// The injector driving this decorator's fault draws.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// True while the sticky disk-full regime is active.
    pub fn is_disk_full(&self) -> bool {
        self.disk_full.load(Ordering::Relaxed)
    }

    /// Arms or clears the sticky disk-full regime directly (tests and
    /// experiments that want the window without a write-indexed rule).
    pub fn set_disk_full(&self, full: bool) {
        self.disk_full.store(full, Ordering::Relaxed);
    }

    fn enospc(op: StorageOp) -> StorageError {
        StorageError::io_class(op, IoErrorClass::NoSpace, "injected ENOSPC: no space left")
    }
}

impl ExtentBackend for FaultBackend {
    fn name(&self) -> &'static str {
        // Transparent: callers observe the physical backend's identity.
        self.inner.name()
    }

    fn attach_stats(&self, stats: BackendStats) {
        self.inner.attach_stats(stats);
    }

    fn allocate(&self, stream: StreamId, extent: ExtentId, capacity: usize) -> StorageResult<()> {
        // Allocation consumes space, so the sticky regime blocks it, but it
        // draws no per-write faults: rule windows (`after`, `at_most`)
        // count `write_at` calls 1:1.
        if self.is_disk_full() {
            return Err(Self::enospc(StorageOp::Append));
        }
        self.inner.allocate(stream, extent, capacity)
    }

    fn write_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        bytes: &[u8],
    ) -> StorageResult<()> {
        if self.is_disk_full() {
            return Err(Self::enospc(StorageOp::Append));
        }
        match self.injector.decide(FaultOp::BackendWrite, Some(stream)) {
            None => self.inner.write_at(stream, extent, at, bytes),
            Some(FaultKind::WriteNoSpace) => Err(Self::enospc(StorageOp::Append)),
            Some(FaultKind::DiskFull) => {
                self.disk_full.store(true, Ordering::Relaxed);
                Err(Self::enospc(StorageOp::Append))
            }
            Some(FaultKind::WriteShortTorn) => {
                // A prefix of the bytes reaches the media before the error:
                // the torn tail is *on disk* for recovery to walk over.
                let torn = &bytes[..bytes.len() / 2];
                if !torn.is_empty() {
                    self.inner.write_at(stream, extent, at, torn)?;
                }
                Err(StorageError::io_class(
                    StorageOp::Append,
                    IoErrorClass::WriteZero,
                    "injected torn write: short write then EIO",
                ))
            }
            Some(other) => Err(StorageError::injected(StorageOp::Append, other)),
        }
    }

    fn read_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        len: usize,
    ) -> StorageResult<Vec<u8>> {
        match self.injector.decide(FaultOp::BackendRead, Some(stream)) {
            None => self.inner.read_at(stream, extent, at, len),
            Some(FaultKind::ReadEio) => Err(StorageError::io_class(
                StorageOp::Read,
                IoErrorClass::Other,
                "injected EIO: input/output error",
            )),
            Some(other) => Err(StorageError::injected(StorageOp::Read, other)),
        }
    }

    fn extent_len(&self, stream: StreamId, extent: ExtentId) -> StorageResult<u64> {
        self.inner.extent_len(stream, extent)
    }

    fn sync(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        match self.injector.decide(FaultOp::Sync, Some(stream)) {
            None => self.inner.sync(stream, extent),
            Some(_) => Err(StorageError::io_class(
                StorageOp::Append,
                IoErrorClass::SyncFailed,
                "injected EIO on fsync",
            )),
        }
    }

    fn seal(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        match self.injector.decide(FaultOp::Sync, Some(stream)) {
            None => self.inner.seal(stream, extent),
            Some(_) => Err(StorageError::io_class(
                StorageOp::Append,
                IoErrorClass::SyncFailed,
                "injected EIO on seal fsync",
            )),
        }
    }

    fn delete(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        self.inner.delete(stream, extent)?;
        // Reclaim freed real space: the sticky full regime ends.
        self.disk_full.store(false, Ordering::Relaxed);
        Ok(())
    }

    fn corrupt_bit(&self, stream: StreamId, extent: ExtentId, bit: u64) -> StorageResult<()> {
        self.inner.corrupt_bit(stream, extent, bit)
    }

    fn list_extents(&self) -> StorageResult<Vec<PersistedExtent>> {
        self.inner.list_extents()
    }
}

impl fmt::Display for FaultBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::error::ErrorKind;

    fn sim() -> Arc<dyn ExtentBackend> {
        Arc::new(SimBackend::new())
    }

    fn io_class(err: &StorageError) -> IoErrorClass {
        match &err.kind {
            ErrorKind::Io { class, .. } => *class,
            other => panic!("expected Io kind, got {other:?}"),
        }
    }

    #[test]
    fn zero_fault_plan_is_a_pure_passthrough() {
        let backend = FaultBackend::new(sim(), FaultPlan::none());
        backend.allocate(StreamId::BASE, ExtentId(1), 1024).unwrap();
        backend
            .write_at(StreamId::BASE, ExtentId(1), 0, b"hello")
            .unwrap();
        assert_eq!(
            backend.read_at(StreamId::BASE, ExtentId(1), 0, 5).unwrap(),
            b"hello"
        );
        backend.sync(StreamId::BASE, ExtentId(1)).unwrap();
        backend.seal(StreamId::BASE, ExtentId(1)).unwrap();
        assert_eq!(backend.extent_len(StreamId::BASE, ExtentId(1)).unwrap(), 5);
        assert_eq!(backend.name(), "sim", "identity is the inner backend's");
        assert_eq!(backend.injector().total_fired(), 0);
    }

    #[test]
    fn sync_faults_fail_closed_with_the_sync_failed_class() {
        let backend = FaultBackend::new(sim(), FaultPlan::seeded(3).fail_syncs(1.0));
        backend.allocate(StreamId::WAL, ExtentId(1), 1024).unwrap();
        backend
            .write_at(StreamId::WAL, ExtentId(1), 0, b"rec")
            .unwrap();
        let err = backend.sync(StreamId::WAL, ExtentId(1)).unwrap_err();
        assert_eq!(io_class(&err), IoErrorClass::SyncFailed);
        assert!(!err.is_retryable(), "fsync failures must never be retried");
        let err = backend.seal(StreamId::WAL, ExtentId(1)).unwrap_err();
        assert_eq!(io_class(&err), IoErrorClass::SyncFailed);
        // The write itself was untouched: data still readable.
        assert_eq!(
            backend.read_at(StreamId::WAL, ExtentId(1), 0, 3).unwrap(),
            b"rec"
        );
    }

    #[test]
    fn sticky_disk_full_blocks_writes_until_reclaim_deletes() {
        let backend = FaultBackend::new(sim(), FaultPlan::seeded(5).disk_full_after(2));
        backend.allocate(StreamId::BASE, ExtentId(1), 1024).unwrap();
        backend
            .write_at(StreamId::BASE, ExtentId(1), 0, b"aa")
            .unwrap();
        backend
            .write_at(StreamId::BASE, ExtentId(1), 2, b"bb")
            .unwrap();
        // Third write arms the sticky regime.
        let err = backend
            .write_at(StreamId::BASE, ExtentId(1), 4, b"cc")
            .unwrap_err();
        assert_eq!(io_class(&err), IoErrorClass::NoSpace);
        assert!(backend.is_disk_full());
        // Everything consuming space now fails; reads keep working.
        assert!(backend
            .write_at(StreamId::BASE, ExtentId(1), 4, b"cc")
            .is_err());
        assert!(backend.allocate(StreamId::BASE, ExtentId(2), 64).is_err());
        assert_eq!(
            backend.read_at(StreamId::BASE, ExtentId(1), 0, 4).unwrap(),
            b"aabb"
        );
        // Reclaim deletes an extent — space is free again.
        backend.allocate(StreamId::DELTA, ExtentId(3), 64).ok();
        backend.delete(StreamId::BASE, ExtentId(1)).unwrap();
        assert!(!backend.is_disk_full());
        backend.allocate(StreamId::BASE, ExtentId(4), 64).unwrap();
        backend
            .write_at(StreamId::BASE, ExtentId(4), 0, b"dd")
            .unwrap();
    }

    #[test]
    fn torn_backend_write_lands_a_prefix_then_errors() {
        let backend = FaultBackend::new(sim(), FaultPlan::seeded(9).torn_backend_writes(1.0));
        let inner = Arc::clone(&backend.inner);
        // Allocate below the decorator so the torn write is the only draw.
        inner.allocate(StreamId::BASE, ExtentId(1), 1024).unwrap();
        let err = backend
            .write_at(StreamId::BASE, ExtentId(1), 0, b"abcdef")
            .unwrap_err();
        assert_eq!(io_class(&err), IoErrorClass::WriteZero);
        // Half the bytes reached the media.
        assert_eq!(inner.extent_len(StreamId::BASE, ExtentId(1)).unwrap(), 3);
        assert_eq!(
            inner.read_at(StreamId::BASE, ExtentId(1), 0, 3).unwrap(),
            b"abc"
        );
    }

    #[test]
    fn eio_reads_fire_on_schedule_and_leave_data_intact() {
        let backend = FaultBackend::new(sim(), FaultPlan::seeded(11).eio_reads(0.5));
        backend.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        backend
            .write_at(StreamId::BASE, ExtentId(1), 0, b"xy")
            .unwrap();
        let outcomes: Vec<bool> = (0..32)
            .map(|_| backend.read_at(StreamId::BASE, ExtentId(1), 0, 2).is_ok())
            .collect();
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !*ok));
        // The schedule is replayable: a fresh decorator over the same data
        // with the same plan sees identical outcomes.
        let replay = FaultBackend::new(
            Arc::clone(&backend.inner),
            FaultPlan::seeded(11).eio_reads(0.5),
        );
        let again: Vec<bool> = (0..32)
            .map(|_| replay.read_at(StreamId::BASE, ExtentId(1), 0, 2).is_ok())
            .collect();
        assert_eq!(outcomes, again);
    }
}
