//! A virtual clock for deterministic latency experiments.
//!
//! The paper's synchronization experiments (Fig. 13/14) report wall-clock
//! latencies that are dominated by the shared store's millisecond-level
//! append/read latency. Re-running those on a laptop against real sleeps
//! would be slow and noisy, so every storage operation instead *charges*
//! its modelled latency to a shared [`SimClock`]. Throughput-oriented
//! experiments (Fig. 8/9/10/11) use real wall time and only read the byte/op
//! counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point on the simulated timeline, in nanoseconds since clock creation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Nanoseconds elapsed from `earlier` to `self`, saturating at zero.
    pub fn duration_since(&self, earlier: SimInstant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This instant expressed in microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in milliseconds.
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant `nanos` nanoseconds later.
    pub fn plus_nanos(&self, nanos: u64) -> SimInstant {
        SimInstant(self.0 + nanos)
    }
}

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning is cheap; all clones observe the same timeline.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock positioned at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `nanos` nanoseconds and returns the new time.
    pub fn advance_nanos(&self, nanos: u64) -> SimInstant {
        SimInstant(self.nanos.fetch_add(nanos, Ordering::AcqRel) + nanos)
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance_micros(&self, micros: u64) -> SimInstant {
        self.advance_nanos(micros * 1_000)
    }

    /// Advances the clock by `millis` milliseconds and returns the new time.
    pub fn advance_millis(&self, millis: u64) -> SimInstant {
        self.advance_nanos(millis * 1_000_000)
    }

    /// Moves the clock forward to at least `instant` (no-op if already past).
    ///
    /// Used when merging timelines, e.g. an RO node observing a WAL record
    /// stamped by the RW node's clock.
    pub fn advance_to(&self, instant: SimInstant) {
        self.nanos.fetch_max(instant.0, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant(0));
        let t = clock.advance_micros(5);
        assert_eq!(t, SimInstant(5_000));
        assert_eq!(clock.now().as_micros(), 5);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = SimClock::new();
        let peer = clock.clone();
        clock.advance_millis(3);
        assert_eq!(peer.now().as_millis(), 3);
    }

    #[test]
    fn advance_to_is_monotone() {
        let clock = SimClock::new();
        clock.advance_nanos(100);
        clock.advance_to(SimInstant(50)); // behind: no-op
        assert_eq!(clock.now(), SimInstant(100));
        clock.advance_to(SimInstant(250));
        assert_eq!(clock.now(), SimInstant(250));
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimInstant(10);
        let b = SimInstant(30);
        assert_eq!(b.duration_since(a), 20);
        assert_eq!(a.duration_since(b), 0);
    }
}
