//! The append-only shared store.
//!
//! [`AppendOnlyStore`] is the single shared-storage device in a BG3
//! deployment: RW nodes append page and WAL data to it, RO nodes read from
//! it, and the space reclaimer relocates or expires whole extents. It is
//! cheap to clone (`Arc` internals); clones model different nodes attached
//! to the same storage service.

use crate::addr::{ExtentId, PageAddr, RecordId, StreamId};
use crate::backend::{BackendKind, BackendStats, ExtentBackend};
use crate::clock::{SimClock, SimInstant};
use crate::error::{ErrorKind, IoErrorClass, StorageError, StorageOp, StorageResult};
use crate::extent::{Extent, ExtentInfo, ExtentState};
use crate::fault::{splitmix64, FaultInjector, FaultKind, FaultOp, FaultPlan};
use crate::frame::{self, FrameKind, FRAME_HEADER_LEN};
use crate::health::{DiskHealth, DiskHealthTracker};
use crate::latency::LatencyModel;
use crate::stats::IoStats;
use crate::stream::{StreamInner, StreamStats};
use bg3_cache::{CacheConfig, CacheStatsSnapshot, PageCache};
use bg3_obs::{MetricsSnapshot, TraceBuffer, TraceKind};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction parameters for [`AppendOnlyStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Extent capacity in bytes. ArkDB-style uniform sizing (§3.3).
    pub extent_capacity: usize,
    /// Latency charged to the simulated clock per operation.
    pub latency: LatencyModel,
    /// Deterministic fault schedule ([`FaultPlan::none`] = never inject).
    pub faults: FaultPlan,
    /// Page-cache front for random reads. Enabled by default; set
    /// `capacity_bytes` to 0 (or use [`StoreConfig::without_cache`]) for
    /// the raw pre-cache behavior.
    pub cache: CacheConfig,
    /// Which physical byte backend holds extent data
    /// ([`BackendKind::Sim`] by default; every subsystem runs unchanged
    /// against either).
    pub backend: BackendKind,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            extent_capacity: 256 * 1024,
            latency: LatencyModel::cloud(),
            faults: FaultPlan::none(),
            cache: CacheConfig::default(),
            backend: BackendKind::Sim,
        }
    }
}

impl StoreConfig {
    /// Zero-latency config for counting-only experiments.
    pub fn counting() -> Self {
        StoreConfig {
            extent_capacity: 256 * 1024,
            latency: LatencyModel::zero(),
            faults: FaultPlan::none(),
            cache: CacheConfig::default(),
            backend: BackendKind::Sim,
        }
    }

    /// Overrides the extent capacity.
    pub fn with_extent_capacity(mut self, capacity: usize) -> Self {
        self.extent_capacity = capacity;
        self
    }

    /// Installs a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Installs a page-cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Disables the page cache (raw storage reads on every lookup).
    pub fn without_cache(mut self) -> Self {
        self.cache = CacheConfig::disabled();
        self
    }

    /// Selects the physical byte backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Per-read options for [`AppendOnlyStore::read_with`]. The parameter
/// object replaces the old `read_uncached` method so new read knobs do not
/// multiply the method surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOpts {
    /// Bypass (and never populate) the page cache. Relocation and
    /// sequential rescans set this so one-shot traffic neither pollutes
    /// the cache nor skews hit-rate measurements.
    pub bypass_cache: bool,
}

/// Physical identity of a cached record: `(stream, extent, offset)`.
///
/// Deliberately *not* the full [`PageAddr`]: relocation reads carry a
/// placeholder record id, and `len` is derivable from the slot, so the
/// physical triple is the one spelling every reader of a slot agrees on.
pub type SlotKey = (StreamId, ExtentId, u32);

struct StoreInner {
    config: StoreConfig,
    clock: SimClock,
    stats: IoStats,
    faults: FaultInjector,
    cache: PageCache<SlotKey>,
    trace: TraceBuffer,
    streams: HashMap<StreamId, Mutex<StreamInner>>,
    backend: Arc<dyn ExtentBackend>,
    health: DiskHealthTracker,
    next_extent: AtomicU64,
    next_record: AtomicU64,
}

/// Shared, thread-safe handle to the storage service.
#[derive(Clone)]
pub struct AppendOnlyStore {
    inner: Arc<StoreInner>,
}

impl AppendOnlyStore {
    /// Opens a store with the four well-known streams (BASE/DELTA/WAL/SST)
    /// and a fresh clock.
    #[deprecated(note = "use `StoreBuilder::from_config(config).build()`")]
    pub fn new(config: StoreConfig) -> Self {
        crate::builder::StoreBuilder::from_config(config).build()
    }

    /// Opens a store that shares an existing simulated clock.
    #[deprecated(note = "use `StoreBuilder::from_config(config).clock(clock).build()`")]
    pub fn with_clock(config: StoreConfig, clock: SimClock) -> Self {
        crate::builder::StoreBuilder::from_config(config)
            .clock(clock)
            .build()
    }

    /// Opens a store against `backend`, rebuilding the metadata plane from
    /// whatever the backend already holds (crash recovery for file-backed
    /// stores, reattach for shared sim backends). Called by
    /// [`crate::StoreBuilder::open`] — the only construction path.
    pub(crate) fn open_internal(
        config: StoreConfig,
        clock: SimClock,
        backend: Arc<dyn ExtentBackend>,
    ) -> StorageResult<Self> {
        let stats = IoStats::new();
        backend.attach_stats(BackendStats::register(stats.registry()));
        // A fresh open always starts at Ok: durability below this point is
        // exactly the valid frame prefixes recovered from the backend, so
        // any pre-crash poison is moot.
        let health = DiskHealthTracker::new(stats.registry());
        let mut streams: HashMap<StreamId, Mutex<StreamInner>> = HashMap::new();
        for id in [
            StreamId::BASE,
            StreamId::DELTA,
            StreamId::WAL,
            StreamId::SST,
        ] {
            streams.insert(id, Mutex::new(StreamInner::new(id)));
        }
        let mut next_extent = 1u64;
        let mut next_record = 1u64;
        let now = clock.now();
        for persisted in backend.list_extents()? {
            let bytes = if persisted.len == 0 {
                Vec::new()
            } else {
                backend.read_at(
                    persisted.stream,
                    persisted.extent,
                    0,
                    persisted.len as usize,
                )?
            };
            // Walk the extent's valid frame prefix. The first hole — bad
            // magic, a frame extending past the physical length, or a
            // failed CRC — is a torn tail from an interrupted append;
            // everything after it is unreachable garbage.
            let mut recovered: Vec<(RecordId, u32, u64)> = Vec::new();
            let mut payload_used = 0u64;
            let mut pos = 0usize;
            while pos + FRAME_HEADER_LEN <= bytes.len() {
                let Ok(header) = frame::decode_header(&bytes[pos..]) else {
                    break;
                };
                let end = pos + FRAME_HEADER_LEN + header.len as usize;
                if end > bytes.len()
                    || frame::verify_frame(&bytes[pos..end], header.len, header.record).is_err()
                {
                    break;
                }
                recovered.push((header.record, header.len, header.tag));
                payload_used += header.len as u64;
                next_record = next_record.max(header.record.0 + 1);
                pos = end;
            }
            // An oversized persisted extent (written under a larger
            // configured capacity) keeps its actual size.
            let capacity = config.extent_capacity.max(payload_used as usize);
            let mut ext = Extent::new(capacity, now);
            for (record, len, tag) in recovered {
                ext.push_slot(record, len, tag, now, None, false);
            }
            // Recovered extents never take further appends: fresh ids start
            // past them, and sealing keeps any torn suffix from being
            // overwritten while it is still evidence.
            ext.state = ExtentState::Sealed;
            next_extent = next_extent.max(persisted.extent.0 + 1);
            streams
                .entry(persisted.stream)
                .or_insert_with(|| Mutex::new(StreamInner::new(persisted.stream)))
                .get_mut()
                .extents
                .insert(persisted.extent, ext);
        }
        let faults = FaultInjector::new(config.faults.clone());
        let cache = PageCache::new(config.cache.clone());
        let trace = TraceBuffer::default();
        // Ring-wrap drops must surface in exports, not just `dropped()`.
        trace.set_drop_counter(
            stats
                .registry()
                .counter(bg3_obs::names::TRACE_DROPPED_EVENTS_TOTAL),
        );
        Ok(AppendOnlyStore {
            inner: Arc::new(StoreInner {
                config,
                clock,
                stats,
                faults,
                cache,
                trace,
                streams,
                backend,
                health,
                next_extent: AtomicU64::new(next_extent),
                next_record: AtomicU64::new(next_record),
            }),
        })
    }

    /// The store's simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The store's I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// The store's structured trace ring. Shared by every clone (and, via
    /// [`crate::SharedMappingTable::for_store`], by the metadata plane), so
    /// all subsystems of one node interleave into a single ordered stream.
    pub fn trace(&self) -> &TraceBuffer {
        &self.inner.trace
    }

    /// Full registry snapshot: counters plus latency histograms. This is
    /// the data-plane view only; merge the mapping table's
    /// [`IoStats::metrics`] for a whole-node picture.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.stats.metrics()
    }

    /// The store's fault injector (shared with the mapping table so publish
    /// faults draw from the same plan).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.inner.faults
    }

    /// The page cache fronting random reads (shared by all clones).
    pub fn page_cache(&self) -> &PageCache<SlotKey> {
        &self.inner.cache
    }

    /// Point-in-time cache counters (hits, misses, admissions, evictions,
    /// residency). Storage-level mirrors of hits/misses/evictions also
    /// appear in [`IoStats::snapshot`].
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.inner.cache.stats()
    }

    /// Extent capacity configured for this store.
    pub fn extent_capacity(&self) -> usize {
        self.inner.config.extent_capacity
    }

    /// The physical byte backend this store writes through.
    pub fn backend(&self) -> &Arc<dyn ExtentBackend> {
        &self.inner.backend
    }

    /// Durability barrier on `stream`'s active tail extent — the WAL
    /// writer's group-fsync target. Sealed extents were already synced at
    /// seal time, so a stream with no open extent has nothing to flush.
    ///
    /// Fail closed (the fsyncgate rule): a failed barrier *poisons* the
    /// stream. The kernel may have dropped the dirty tail pages on the
    /// first failure, so retrying the fsync — or appending past it — would
    /// ack writes whose durability is unknowable. Every later append or
    /// sync on the stream returns [`crate::ErrorKind::SyncPoisoned`];
    /// reads, reclaim, and recovery keep working, and a fresh open
    /// re-derives the durable tail from the frames actually on disk.
    pub fn sync_stream(&self, stream: StreamId) -> StorageResult<()> {
        let mut guard = self.stream(stream, StorageOp::Append)?.lock();
        if guard.poisoned {
            return Err(StorageError::sync_poisoned(StorageOp::Append, stream));
        }
        let Some(active) = guard.active else {
            return Ok(());
        };
        match self.inner.backend.sync(stream, active) {
            Ok(()) => {
                self.inner.health.on_durable_write();
                Ok(())
            }
            Err(err) => {
                self.poison(&mut guard, stream);
                Err(err)
            }
        }
    }

    /// True when `stream`'s tail is poisoned by a failed durability
    /// barrier (see [`AppendOnlyStore::sync_stream`]).
    pub fn is_poisoned(&self, stream: StreamId) -> bool {
        self.stream(stream, StorageOp::Append)
            .map(|s| s.lock().poisoned)
            .unwrap_or(false)
    }

    /// Current disk health (the `disk_health` gauge).
    pub fn disk_health(&self) -> DiskHealth {
        self.inner.health.get()
    }

    /// The tracker behind [`AppendOnlyStore::disk_health`] — experiments
    /// and the governed engine's tests drive transitions directly.
    pub fn disk_health_tracker(&self) -> &DiskHealthTracker {
        &self.inner.health
    }

    /// Marks `stream` poisoned and records the transition (once).
    fn poison(&self, guard: &mut StreamInner, stream: StreamId) {
        if !guard.poisoned {
            guard.poisoned = true;
            self.inner.stats.record_sync_poisoned();
            self.inner.health.on_poisoned();
            self.inner.trace.emit(
                self.inner.clock.now().0,
                TraceKind::SyncPoisoned,
                u64::from(stream.0),
                0,
            );
        }
    }

    /// Notes a failed backend write/allocation on the health gauge.
    fn note_append_error(&self, err: &StorageError) {
        if let ErrorKind::Io {
            class: IoErrorClass::NoSpace,
            ..
        } = err.kind
        {
            self.inner.health.on_no_space();
        }
    }

    fn stream(&self, id: StreamId, op: StorageOp) -> StorageResult<&Mutex<StreamInner>> {
        self.inner
            .streams
            .get(&id)
            .ok_or_else(|| StorageError::unknown_stream(op, id))
    }

    /// Appends `bytes` to the tail of `stream`.
    ///
    /// `tag` is an owner-defined cookie (e.g. a Bw-tree page id) returned
    /// during relocation so the owner can repair its mapping table.
    /// `ttl_nanos`, when set, declares the record dead after `now + ttl`; the
    /// extent inherits the latest such deadline (§3.3, Observation 2).
    pub fn append(
        &self,
        stream: StreamId,
        bytes: &[u8],
        tag: u64,
        ttl_nanos: Option<u64>,
    ) -> StorageResult<PageAddr> {
        self.append_impl(stream, bytes, tag, ttl_nanos, false)
    }

    fn append_impl(
        &self,
        stream: StreamId,
        bytes: &[u8],
        tag: u64,
        ttl_nanos: Option<u64>,
        is_relocation: bool,
    ) -> StorageResult<PageAddr> {
        let capacity = self.inner.config.extent_capacity;
        if bytes.len() > capacity {
            return Err(StorageError::record_too_large(bytes.len(), capacity));
        }
        let fault = self.inner.faults.decide(FaultOp::Append, Some(stream));
        // Virtual-time charged to *this* append: injected delay + modelled
        // cost. (Not a clock delta — concurrent writers share the clock.)
        let mut charged_nanos = 0u64;
        match fault {
            Some(FaultKind::AppendFail) => {
                // The request never reaches the service; nothing is written
                // and no latency is charged (the connection failed fast).
                return Err(StorageError::injected(
                    StorageOp::Append,
                    FaultKind::AppendFail,
                ));
            }
            Some(FaultKind::Delay { nanos }) => {
                self.inner.clock.advance_nanos(nanos);
                charged_nanos += nanos;
            }
            _ => {}
        }
        let torn = fault == Some(FaultKind::AppendTorn);
        let cost = self.inner.config.latency.append_cost_nanos(bytes.len());
        let now = self.inner.clock.advance_nanos(cost);
        charged_nanos += cost;
        let expires_at = ttl_nanos.map(|ttl| now.plus_nanos(ttl));
        let record = RecordId(self.inner.next_record.fetch_add(1, Ordering::Relaxed));

        let mut guard = self.stream(stream, StorageOp::Append)?.lock();
        if guard.poisoned {
            // Fsyncgate: a failed barrier already disowned this tail; no
            // append may be acked past it (see `sync_stream`).
            return Err(StorageError::sync_poisoned(StorageOp::Append, stream));
        }
        let placement = guard.extent_for_append(bytes.len(), capacity, now, || {
            ExtentId(self.inner.next_extent.fetch_add(1, Ordering::Relaxed))
        });
        // Mirror the metadata transitions onto the backend before any bytes
        // move: the sealed predecessor gets its durability barrier, the
        // fresh extent gets a backing object. A failed allocation is rolled
        // back so the stream never points at an extent with no bytes.
        if let Some(prev) = placement.sealed {
            if let Err(err) = self.inner.backend.seal(stream, prev) {
                if placement.allocated {
                    guard.abort_allocation(placement.extent);
                }
                // A rollover seal is a durability barrier: its failure
                // leaves the predecessor's tail in doubt, so the stream
                // poisons just like a failed `sync_stream`.
                self.poison(&mut guard, stream);
                return Err(err);
            }
        }
        if placement.allocated {
            if let Err(err) = self
                .inner
                .backend
                .allocate(stream, placement.extent, capacity)
            {
                guard.abort_allocation(placement.extent);
                self.note_append_error(&err);
                return Err(err);
            }
        }
        let ext_id = placement.extent;
        let ext = guard.extents.get_mut(&ext_id).expect("extent just chosen");
        let mut framed = frame::encode_frame(FrameKind::for_stream(stream), record, tag, bytes);
        if torn {
            // A torn tail write: the bytes consume log space but the record
            // is unreadable. Scar the stored CRC before it hits the backend
            // so a read of the slot fails verification rather than serving
            // intact-looking bytes.
            framed[FRAME_HEADER_LEN - 4] ^= 0xFF;
        }
        // Fail closed: the frame reaches the backend before any metadata
        // moves, so a failed physical write leaves the cursor unmoved and
        // the slot unregistered — a retry simply overwrites the same spot.
        // (A torn backend write may still land a frame *prefix*; recovery's
        // valid-prefix walk discards it, exactly like a crash mid-write.)
        if let Err(err) = self
            .inner
            .backend
            .write_at(stream, ext_id, ext.physical_len, &framed)
        {
            self.note_append_error(&err);
            return Err(err);
        }
        let offset = ext.push_slot(
            record,
            bytes.len() as u32,
            tag,
            now,
            expires_at,
            is_relocation,
        );
        if torn {
            // The scarred slot is immediately-invalid garbage: its space
            // shows up for the reclaimer but no valid read can land on it.
            let _ = ext.invalidate(offset, now);
        }
        drop(guard);

        self.inner.stats.record_append(bytes.len());
        self.inner.stats.record_append_latency(charged_nanos);
        if is_relocation {
            self.inner.stats.record_relocation(bytes.len());
        }
        let addr = PageAddr {
            stream,
            extent: ext_id,
            offset,
            len: bytes.len() as u32,
            record,
        };
        if torn {
            return Err(
                StorageError::injected(StorageOp::Append, FaultKind::AppendTorn).with_addr(addr),
            );
        }
        Ok(addr)
    }

    /// Reads the record at `addr` through the page cache.
    ///
    /// A hit is served from memory: no storage latency, no `random_reads`
    /// tick, no fault-injection draw (the request never leaves the node).
    /// A miss pays the full storage read and the returned bytes are
    /// offered to the cache, so the next reader of the same slot hits.
    pub fn read(&self, addr: PageAddr) -> StorageResult<Bytes> {
        self.read_with(addr, ReadOpts::default())
    }

    /// Reads the record at `addr` with explicit [`ReadOpts`]; see
    /// [`AppendOnlyStore::read`] for cache semantics.
    pub fn read_with(&self, addr: PageAddr, opts: ReadOpts) -> StorageResult<Bytes> {
        let cache = &self.inner.cache;
        if opts.bypass_cache || !cache.is_enabled() {
            return self.read_raw(addr);
        }
        let key: SlotKey = (addr.stream, addr.extent, addr.offset);
        if let Some(bytes) = cache.get(&key) {
            if bytes.len() == addr.len as usize {
                self.inner.stats.record_cache_hit();
                return Ok(bytes);
            }
            // A stale shape (same physical slot, different length) can
            // only come from a caller-constructed addr; drop it and fall
            // through to storage, which bounds-checks for real.
            cache.evict(&key);
            self.inner.stats.record_cache_evictions(1);
        }
        self.inner.stats.record_cache_miss();
        let bytes = self.read_raw(addr)?;
        let outcome = cache.insert(key, bytes.clone());
        if outcome.evicted > 0 {
            self.inner.stats.record_cache_evictions(outcome.evicted);
        }
        Ok(bytes)
    }

    /// Randomly reads the record at `addr` directly from storage,
    /// bypassing (and never populating) the page cache.
    #[deprecated(note = "use `read_with(addr, ReadOpts { bypass_cache: true })`")]
    pub fn read_uncached(&self, addr: PageAddr) -> StorageResult<Bytes> {
        self.read_raw(addr)
    }

    /// The uncached read path: fault-injection draw, backend read, frame
    /// verification. Relocation and sequential rescans come through here so
    /// one-shot traffic neither pollutes the cache nor skews hit rates.
    fn read_raw(&self, addr: PageAddr) -> StorageResult<Bytes> {
        let mut charged_nanos = 0u64;
        let mut silent: Option<FaultKind> = None;
        match self.inner.faults.decide(FaultOp::Read, Some(addr.stream)) {
            Some(FaultKind::ReadFail) => {
                return Err(
                    StorageError::injected(StorageOp::Read, FaultKind::ReadFail).with_addr(addr)
                );
            }
            Some(FaultKind::Delay { nanos }) => {
                self.inner.clock.advance_nanos(nanos);
                charged_nanos += nanos;
            }
            Some(kind @ (FaultKind::ReadBitFlip | FaultKind::ReadStale | FaultKind::ReadShort)) => {
                // Silent faults: the call will *succeed* from the service's
                // point of view; only frame verification can notice.
                silent = Some(kind);
            }
            _ => {}
        }
        let guard = self.stream(addr.stream, StorageOp::Read)?.lock();
        let ext = guard
            .extents
            .get(&addr.extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Read, addr.extent))?;
        if ext.state == ExtentState::Reclaimed {
            return Err(StorageError::addr_not_found(StorageOp::Read, addr));
        }
        if ext.quarantined {
            return Err(
                StorageError::extent_quarantined(StorageOp::Read, addr.extent).with_addr(addr),
            );
        }
        let end = addr.offset as usize + addr.len as usize;
        if end > ext.physical_len as usize {
            return Err(StorageError::addr_out_of_bounds(StorageOp::Read, addr));
        }
        let Some(frame_start) = (addr.offset as usize).checked_sub(FRAME_HEADER_LEN) else {
            return Err(StorageError::addr_out_of_bounds(StorageOp::Read, addr));
        };
        if silent == Some(FaultKind::ReadBitFlip) {
            // Persistent rot: flip one stored bit of the frame *in place*.
            // The position is a pure function of the plan seed and the
            // address, so a re-read sees the same damage until the
            // scrubber repairs the extent.
            let h = splitmix64(
                self.inner.faults.plan().seed
                    ^ addr.extent.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (addr.offset as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let span = end - frame_start;
            let byte = frame_start + (h as usize % span);
            let bit = (h >> 32) % 8;
            self.inner
                .backend
                .corrupt_bit(addr.stream, addr.extent, byte as u64 * 8 + bit)?;
        }
        // Backend read under the stream lock: a concurrent reclaim cannot
        // delete the backing object out from under us (it flips the state
        // to Reclaimed — checked above — before deleting).
        let mut framed = self.inner.backend.read_at(
            addr.stream,
            addr.extent,
            frame_start as u64,
            end - frame_start,
        )?;
        drop(guard);
        match silent {
            Some(FaultKind::ReadShort) => {
                // Transient truncation: the wire lost the frame's tail; the
                // stored bytes are intact.
                framed.truncate(framed.len() / 2);
            }
            Some(FaultKind::ReadStale) => {
                // A misdirected/stale block: internally consistent (the CRC
                // is recomputed over the altered header) but bound to the
                // wrong record identity. Only record binding catches this.
                framed[8] ^= 0x01;
                let crc = frame::crc32c_extend(
                    frame::crc32c(&framed[2..24]),
                    &framed[FRAME_HEADER_LEN..],
                );
                framed[24..28].copy_from_slice(&crc.to_le_bytes());
            }
            _ => {}
        }

        // The bytes crossed the wire whether or not they verify; charge the
        // modelled cost either way.
        let cost = self.inner.config.latency.read_cost_nanos(addr.len as usize);
        self.inner.clock.advance_nanos(cost);
        charged_nanos += cost;
        if frame::verify_frame(&framed, addr.len, addr.record).is_err() {
            // `bytes_read` counts only verified bytes served to callers;
            // a failed read still records its latency.
            self.inner.stats.record_checksum_mismatch();
            self.inner.stats.record_read_latency(charged_nanos);
            self.inner.trace.emit(
                self.inner.clock.now().0,
                TraceKind::ChecksumMismatch,
                addr.extent.0,
                addr.offset as u64,
            );
            return Err(StorageError::checksum_mismatch(StorageOp::Read, addr));
        }
        let bytes = Bytes::copy_from_slice(&framed[FRAME_HEADER_LEN..]);
        self.inner.stats.record_read(bytes.len());
        self.inner.stats.record_read_latency(charged_nanos);
        Ok(bytes)
    }

    /// Marks the record at `addr` garbage (out-of-place update or delete).
    ///
    /// Invalidating a record whose extent was already reclaimed (e.g. a
    /// TTL expiry raced ahead of the owner's mapping cleanup — the §3.3
    /// risk-control pattern) is a no-op: the space is already free.
    pub fn invalidate(&self, addr: PageAddr) -> StorageResult<()> {
        let now = self.inner.clock.now();
        let mut guard = self.stream(addr.stream, StorageOp::Invalidate)?.lock();
        let ext = guard
            .extents
            .get_mut(&addr.extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Invalidate, addr.extent))?;
        if ext.state == ExtentState::Reclaimed {
            return Ok(());
        }
        let Some(wasted) = ext.invalidate(addr.offset, now) else {
            return Err(StorageError::already_invalid(addr));
        };
        drop(guard);
        // Coherence: a dead slot must not be served from memory.
        if self
            .inner
            .cache
            .evict(&(addr.stream, addr.extent, addr.offset))
        {
            self.inner.stats.record_cache_evictions(1);
        }
        self.inner.stats.record_invalidation();
        if wasted > 0 {
            self.inner.stats.record_wasted_relocation(wasted);
        }
        Ok(())
    }

    /// Sequentially reads every valid record in `stream`, in append order
    /// (extent allocation order, offset order within each extent). Returns
    /// `(addr, tag, bytes)` per record, charging the usual read costs.
    ///
    /// This is the bootstrap path a node takes after a crash: the WAL
    /// stream is rescanned from shared storage to rebuild the log index
    /// (record tags carry the LSNs), with no in-memory state required.
    pub fn scan_stream(&self, stream: StreamId) -> StorageResult<Vec<(PageAddr, u64, Bytes)>> {
        let mut framed = Vec::new();
        let guard = self.stream(stream, StorageOp::Read)?.lock();
        for (&extent, ext) in &guard.extents {
            if ext.state == ExtentState::Reclaimed {
                continue;
            }
            for slot in &ext.slots {
                if !slot.valid {
                    continue;
                }
                let addr = PageAddr {
                    stream,
                    extent,
                    offset: slot.offset,
                    len: slot.len,
                    record: slot.record,
                };
                let frame_start = slot.offset as usize - FRAME_HEADER_LEN;
                let span = FRAME_HEADER_LEN + slot.len as usize;
                framed.push((
                    addr,
                    slot.tag,
                    self.inner
                        .backend
                        .read_at(stream, extent, frame_start as u64, span)?,
                ));
            }
        }
        drop(guard);
        let mut out = Vec::with_capacity(framed.len());
        for (addr, tag, frame_bytes) in framed {
            let cost = self.inner.config.latency.read_cost_nanos(addr.len as usize);
            self.inner.clock.advance_nanos(cost);
            if frame::verify_frame(&frame_bytes, addr.len, addr.record).is_err() {
                // A sequential rescan must not hand garbage to recovery.
                self.inner.stats.record_checksum_mismatch();
                self.inner.stats.record_read_latency(cost);
                self.inner.trace.emit(
                    self.inner.clock.now().0,
                    TraceKind::ChecksumMismatch,
                    addr.extent.0,
                    addr.offset as u64,
                );
                return Err(StorageError::checksum_mismatch(StorageOp::Read, addr));
            }
            let bytes = Bytes::copy_from_slice(&frame_bytes[FRAME_HEADER_LEN..]);
            self.inner.stats.record_read(bytes.len());
            self.inner.stats.record_read_latency(cost);
            out.push((addr, tag, bytes));
        }
        Ok(out)
    }

    /// Snapshot of every live extent's usage-tracking data in `stream`
    /// (the GC policy input). Sealed and open extents are both reported;
    /// reclaimed tombstones are skipped.
    pub fn extent_infos(&self, stream: StreamId) -> StorageResult<Vec<ExtentInfo>> {
        let now = self.inner.clock.now();
        let guard = self.stream(stream, StorageOp::Read)?.lock();
        Ok(guard
            .extents
            .iter()
            .filter(|(_, e)| e.state != ExtentState::Reclaimed)
            .map(|(&id, e)| e.info(id, stream, now))
            .collect())
    }

    /// Aggregate stream statistics.
    pub fn stream_stats(&self, stream: StreamId) -> StorageResult<StreamStats> {
        Ok(self.stream(stream, StorageOp::Read)?.lock().stats())
    }

    /// Total valid bytes across all streams — the store's logical footprint.
    pub fn total_valid_bytes(&self) -> u64 {
        self.inner
            .streams
            .values()
            .map(|s| s.lock().stats().valid_bytes)
            .sum()
    }

    /// Total occupied bytes across all streams (valid + garbage) — what the
    /// operator pays for.
    pub fn total_used_bytes(&self) -> u64 {
        self.inner
            .streams
            .values()
            .map(|s| s.lock().stats().used_bytes)
            .sum()
    }

    /// Relocates every valid record of `extent` to the stream tail and frees
    /// the extent. For each moved record, `on_move(tag, old, new)` lets the
    /// owner repair its pointers. Returns the number of bytes rewritten.
    ///
    /// This is the `doSpaceReclamation` primitive of Algorithm 2.
    pub fn relocate_extent(
        &self,
        stream: StreamId,
        extent: ExtentId,
        mut on_move: impl FnMut(u64, PageAddr, PageAddr),
    ) -> StorageResult<u64> {
        // Collect the valid slots under the lock, then release it: the
        // re-appends below take the same stream lock.
        let victims: Vec<(RecordId, u32, u32, u64, Option<SimInstant>)> = {
            let mut guard = self.stream(stream, StorageOp::Relocate)?.lock();
            let ext = guard
                .extents
                .get_mut(&extent)
                .ok_or_else(|| StorageError::unknown_extent(StorageOp::Relocate, extent))?;
            if ext.quarantined {
                // A quarantined extent may hold frames that fail
                // verification; relocation would either spread the damage
                // or abort halfway. It must go through `repair_extent`.
                return Err(StorageError::extent_quarantined(
                    StorageOp::Relocate,
                    extent,
                ));
            }
            if ext.state == ExtentState::Open {
                // Never reclaim the active tail; seal it first so appends
                // move on. (Policies normally only see sealed extents.)
                ext.state = ExtentState::Sealed;
                if guard.active == Some(extent) {
                    guard.active = None;
                }
            }
            let ext = guard.extents.get(&extent).expect("checked above");
            let deadline = ext.ttl_deadline;
            ext.slots
                .iter()
                .filter(|s| s.valid)
                .map(|s| (s.record, s.offset, s.len, s.tag, deadline))
                .collect()
        };

        let mut moved_bytes = 0u64;
        for (record, offset, len, tag, deadline) in &victims {
            let old = PageAddr {
                stream,
                extent,
                offset: *offset,
                len: *len,
                // The real record id: relocation reads go through full
                // frame verification, including record binding.
                record: *record,
            };
            let bytes = self.read_raw(old)?;
            let remaining_ttl = deadline.map(|d| d.duration_since(self.inner.clock.now()));
            let new = self.append_impl(stream, &bytes, *tag, remaining_ttl, true)?;
            moved_bytes += *len as u64;
            // One GC move = the victim's read plus its rewrite, in
            // modelled virtual time (deterministic under concurrency).
            self.inner.stats.record_gc_move_latency(
                self.inner.config.latency.read_cost_nanos(*len as usize)
                    + self.inner.config.latency.append_cost_nanos(*len as usize),
            );
            on_move(*tag, old, new);
        }

        let mut guard = self.stream(stream, StorageOp::Relocate)?.lock();
        let ext = guard
            .extents
            .get_mut(&extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Relocate, extent))?;
        ext.state = ExtentState::Reclaimed;
        ext.slots = Vec::new();
        ext.valid_count = 0;
        ext.valid_bytes = 0;
        ext.physical_len = 0;
        drop(guard);
        // The tombstone state is visible before the backing object goes
        // away, so no reader can race the delete into a missing-file error.
        self.inner.backend.delete(stream, extent)?;
        // Reclaim freed physical space: a full disk steps down the ladder.
        self.inner.health.on_reclaim();
        // Coherence: every cached slot of the freed extent is gone.
        let evicted = self
            .inner
            .cache
            .evict_matching(|&(s, e, _)| s == stream && e == extent);
        if evicted > 0 {
            self.inner.stats.record_cache_evictions(evicted);
        }
        self.inner.stats.record_extent_reclaimed();
        self.inner.trace.emit(
            self.inner.clock.now().0,
            TraceKind::ExtentRelocate,
            extent.0,
            moved_bytes,
        );
        Ok(moved_bytes)
    }

    /// Drops `extent` wholesale because its TTL deadline has passed — no data
    /// movement at all (§3.3, Observation 2 / Table 2 "+TTL" row).
    ///
    /// Fails with [`crate::ErrorKind::ExtentStillLive`] if the deadline has
    /// not passed (callers must not expire live data).
    pub fn expire_extent(&self, stream: StreamId, extent: ExtentId) -> StorageResult<u64> {
        let now = self.inner.clock.now();
        let mut guard = self.stream(stream, StorageOp::Expire)?.lock();
        let ext = guard
            .extents
            .get_mut(&extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Expire, extent))?;
        if ext.state == ExtentState::Reclaimed {
            return Err(StorageError::unknown_extent(StorageOp::Expire, extent));
        }
        if ext.quarantined {
            // Even a fully-expired extent is held until repair: the
            // quarantine → repair → reclaim order is the invariant the
            // scrub experiment asserts on.
            return Err(StorageError::extent_quarantined(StorageOp::Expire, extent));
        }
        match ext.ttl_deadline {
            Some(deadline) if deadline <= now => {}
            _ => {
                return Err(StorageError::extent_still_live(
                    extent,
                    ext.valid_count as usize,
                ))
            }
        }
        let freed = ext.valid_count;
        ext.state = ExtentState::Reclaimed;
        ext.slots = Vec::new();
        ext.valid_count = 0;
        ext.valid_bytes = 0;
        ext.physical_len = 0;
        if guard.active == Some(extent) {
            guard.active = None;
        }
        drop(guard);
        self.inner.backend.delete(stream, extent)?;
        self.inner.health.on_reclaim();
        // Coherence: expiry frees the extent without reading it; cached
        // slots must die with it.
        let evicted = self
            .inner
            .cache
            .evict_matching(|&(s, e, _)| s == stream && e == extent);
        if evicted > 0 {
            self.inner.stats.record_cache_evictions(evicted);
        }
        self.inner.stats.record_extent_expired();
        self.inner
            .trace
            .emit(now.0, TraceKind::ExtentExpire, extent.0, freed);
        Ok(freed)
    }

    /// Chaos/test helper: flips one stored bit of the frame backing `addr`
    /// (bit index taken modulo the frame's bit width), modelling at-rest
    /// rot without going through the read path. The cached copy of the
    /// slot, if any, is evicted so the damage is observable.
    pub fn corrupt_record_bit(&self, addr: PageAddr, bit: u64) -> StorageResult<()> {
        let guard = self.stream(addr.stream, StorageOp::Read)?.lock();
        let ext = guard
            .extents
            .get(&addr.extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Read, addr.extent))?;
        if ext.state == ExtentState::Reclaimed {
            return Err(StorageError::addr_not_found(StorageOp::Read, addr));
        }
        let Some(frame_start) = (addr.offset as usize).checked_sub(FRAME_HEADER_LEN) else {
            return Err(StorageError::addr_out_of_bounds(StorageOp::Read, addr));
        };
        let end = addr.offset as usize + addr.len as usize;
        if end > ext.physical_len as usize {
            return Err(StorageError::addr_out_of_bounds(StorageOp::Read, addr));
        }
        let span_bits = ((end - frame_start) * 8) as u64;
        let b = bit % span_bits;
        self.inner
            .backend
            .corrupt_bit(addr.stream, addr.extent, frame_start as u64 * 8 + b)?;
        drop(guard);
        if self
            .inner
            .cache
            .evict(&(addr.stream, addr.extent, addr.offset))
        {
            self.inner.stats.record_cache_evictions(1);
        }
        Ok(())
    }

    /// True when `extent` is currently quarantined.
    pub fn is_quarantined(&self, stream: StreamId, extent: ExtentId) -> StorageResult<bool> {
        let guard = self.stream(stream, StorageOp::Read)?.lock();
        Ok(guard.extents.get(&extent).is_some_and(|e| e.quarantined))
    }

    /// Verifies every valid frame of `extent` at modelled sequential-read
    /// cost, *without* serving any bytes. If any frame fails, the extent is
    /// quarantined: reads fail fast and GC refuses to touch it until
    /// [`Self::repair_extent`] re-homes its records. Reclaimed extents
    /// report an empty check (the scrubber may race normal GC).
    pub fn verify_extent(&self, stream: StreamId, extent: ExtentId) -> StorageResult<ScrubCheck> {
        let mut check = ScrubCheck::default();
        let mut scanned_bytes = 0usize;
        let mut newly_quarantined = false;
        {
            let mut guard = self.stream(stream, StorageOp::Read)?.lock();
            let ext = guard
                .extents
                .get_mut(&extent)
                .ok_or_else(|| StorageError::unknown_extent(StorageOp::Read, extent))?;
            if ext.state == ExtentState::Reclaimed {
                return Ok(check);
            }
            for slot in ext.slots.iter().filter(|s| s.valid) {
                let frame_start = slot.offset as usize - FRAME_HEADER_LEN;
                let span = FRAME_HEADER_LEN + slot.len as usize;
                scanned_bytes += slot.len as usize;
                // A frame the backend cannot even produce (truncated file,
                // vanished object) counts as corruption: the slot's data is
                // unservable either way.
                let intact =
                    match self
                        .inner
                        .backend
                        .read_at(stream, extent, frame_start as u64, span)
                    {
                        Ok(framed) => frame::verify_frame(&framed, slot.len, slot.record).is_ok(),
                        Err(_) => false,
                    };
                if intact {
                    check.records_verified += 1;
                } else {
                    check.corrupt_records += 1;
                }
            }
            if check.corrupt_records > 0 && !ext.quarantined {
                ext.quarantined = true;
                newly_quarantined = true;
            }
        }
        let cost = self.inner.config.latency.read_cost_nanos(scanned_bytes);
        self.inner.clock.advance_nanos(cost);
        self.inner
            .stats
            .record_scrub_records_verified(check.records_verified + check.corrupt_records);
        if check.corrupt_records > 0 {
            self.inner
                .stats
                .record_checksum_mismatches(check.corrupt_records);
        }
        if newly_quarantined {
            check.newly_quarantined = true;
            // Cached slots of a quarantined extent are dropped so every
            // subsequent read observes the fail-fast error.
            let evicted = self
                .inner
                .cache
                .evict_matching(|&(s, e, _)| s == stream && e == extent);
            if evicted > 0 {
                self.inner.stats.record_cache_evictions(evicted);
            }
            self.inner.stats.record_extent_quarantined();
            self.inner.trace.emit(
                self.inner.clock.now().0,
                TraceKind::ExtentQuarantine,
                extent.0,
                check.corrupt_records,
            );
        }
        Ok(check)
    }

    /// Repairs a (typically quarantined) extent: every valid record is
    /// re-homed at the stream tail — intact frames are copied, corrupt
    /// frames are re-materialized via `resupply(tag, old_addr)` (the WAL
    /// tail / replica sync path) — and the extent is then reclaimed.
    ///
    /// `resupply` returns a [`RepairSupply`] verdict per corrupt record: a
    /// replacement payload, [`RepairSupply::Drop`] for records no live
    /// structure references (they are discarded with the extent), or
    /// [`RepairSupply::Missing`] — in which case the call fails *before
    /// moving anything* and the extent stays quarantined: GC never reclaims
    /// an extent with unrepaired damage. Plain `Option<Vec<u8>>` closures
    /// are accepted too (`None` reads as `Missing`).
    pub fn repair_extent<T: Into<RepairSupply>>(
        &self,
        stream: StreamId,
        extent: ExtentId,
        mut resupply: impl FnMut(u64, PageAddr) -> T,
        mut on_move: impl FnMut(u64, PageAddr, PageAddr),
    ) -> StorageResult<RepairReport> {
        // Pass 1: under the lock, copy each valid record's payload if its
        // frame verifies, remembering the holes.
        type Victim = (PageAddr, u64, Option<SimInstant>, Option<Vec<u8>>);
        let victims: Vec<Victim> = {
            let mut guard = self.stream(stream, StorageOp::Relocate)?.lock();
            let ext = guard
                .extents
                .get_mut(&extent)
                .ok_or_else(|| StorageError::unknown_extent(StorageOp::Relocate, extent))?;
            if ext.state == ExtentState::Reclaimed {
                return Err(StorageError::unknown_extent(StorageOp::Relocate, extent));
            }
            if ext.state == ExtentState::Open {
                ext.state = ExtentState::Sealed;
                if guard.active == Some(extent) {
                    guard.active = None;
                }
            }
            let ext = guard.extents.get(&extent).expect("checked above");
            let deadline = ext.ttl_deadline;
            ext.slots
                .iter()
                .filter(|s| s.valid)
                .map(|s| {
                    let frame_start = s.offset as usize - FRAME_HEADER_LEN;
                    let span = FRAME_HEADER_LEN + s.len as usize;
                    // An unreadable frame (backend error or failed
                    // verification) is a hole for the resupply source.
                    let payload = self
                        .inner
                        .backend
                        .read_at(stream, extent, frame_start as u64, span)
                        .ok()
                        .and_then(|framed| {
                            frame::verify_frame(&framed, s.len, s.record)
                                .ok()
                                .map(|()| framed[FRAME_HEADER_LEN..].to_vec())
                        });
                    let old = PageAddr {
                        stream,
                        extent,
                        offset: s.offset,
                        len: s.len,
                        record: s.record,
                    };
                    (old, s.tag, deadline, payload)
                })
                .collect()
        };

        // Pass 2: fill the holes from the repair source. Nothing has moved
        // yet, so a missing source aborts cleanly.
        let mut report = RepairReport::default();
        let mut restored: Vec<(PageAddr, u64, Option<SimInstant>, Vec<u8>)> =
            Vec::with_capacity(victims.len());
        for (old, tag, deadline, payload) in victims {
            let payload = match payload {
                Some(p) => p,
                None => match resupply(tag, old).into() {
                    RepairSupply::Payload(p) => {
                        report.resupplied_records += 1;
                        p
                    }
                    RepairSupply::Drop => {
                        report.dropped_records += 1;
                        continue;
                    }
                    RepairSupply::Missing => {
                        return Err(StorageError::checksum_mismatch(StorageOp::Relocate, old));
                    }
                },
            };
            restored.push((old, tag, deadline, payload));
        }
        if report.resupplied_records > 0 {
            self.inner
                .stats
                .record_scrub_records_resupplied(report.resupplied_records);
        }

        // Pass 3: re-home everything at the tail, exactly like relocation.
        for (old, tag, deadline, payload) in &restored {
            let remaining_ttl = deadline.map(|d| d.duration_since(self.inner.clock.now()));
            let new = self.append_impl(stream, payload, *tag, remaining_ttl, true)?;
            report.moved_records += 1;
            report.moved_bytes += payload.len() as u64;
            self.inner.stats.record_gc_move_latency(
                self.inner.config.latency.read_cost_nanos(payload.len())
                    + self.inner.config.latency.append_cost_nanos(payload.len()),
            );
            on_move(*tag, *old, new);
        }

        let mut guard = self.stream(stream, StorageOp::Relocate)?.lock();
        let ext = guard
            .extents
            .get_mut(&extent)
            .ok_or_else(|| StorageError::unknown_extent(StorageOp::Relocate, extent))?;
        ext.state = ExtentState::Reclaimed;
        ext.quarantined = false;
        ext.slots = Vec::new();
        ext.valid_count = 0;
        ext.valid_bytes = 0;
        ext.physical_len = 0;
        drop(guard);
        self.inner.backend.delete(stream, extent)?;
        self.inner.health.on_reclaim();
        let evicted = self
            .inner
            .cache
            .evict_matching(|&(s, e, _)| s == stream && e == extent);
        if evicted > 0 {
            self.inner.stats.record_cache_evictions(evicted);
        }
        self.inner.stats.record_extent_repaired();
        self.inner.stats.record_extent_reclaimed();
        let now = self.inner.clock.now().0;
        // Repair precedes the reclaim event in the trace: the scrub
        // experiment asserts quarantine < repair < reclaim seq order.
        self.inner.trace.emit(
            now,
            TraceKind::ExtentRepair,
            extent.0,
            report.resupplied_records,
        );
        self.inner
            .trace
            .emit(now, TraceKind::ExtentRelocate, extent.0, report.moved_bytes);
        Ok(report)
    }
}

/// Outcome of [`AppendOnlyStore::verify_extent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubCheck {
    /// Valid slots whose frames verified.
    pub records_verified: u64,
    /// Valid slots whose frames failed verification.
    pub corrupt_records: u64,
    /// True when this check transitioned the extent into quarantine.
    pub newly_quarantined: bool,
}

/// Outcome of [`AppendOnlyStore::repair_extent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Records re-homed at the stream tail (intact + resupplied).
    pub moved_records: u64,
    /// Records whose payloads had to come from the repair source.
    pub resupplied_records: u64,
    /// Corrupt records the source declared unreferenced — discarded with
    /// the extent instead of being moved.
    pub dropped_records: u64,
    /// Payload bytes rewritten.
    pub moved_bytes: u64,
}

/// A repair source's verdict for one corrupt record (see
/// [`AppendOnlyStore::repair_extent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairSupply {
    /// The record's original payload, re-materialized from an intact copy
    /// (the owning tree's in-memory image, a replica, or WAL replay).
    Payload(Vec<u8>),
    /// No live structure references the record — an orphan left by a crash
    /// between a flush and its mapping publish, or a superseded image whose
    /// page recovery rebuilds from the full WAL history — so it is safe to
    /// discard rather than move.
    Drop,
    /// The record is still referenced but no intact copy exists anywhere:
    /// the repair aborts and the extent stays quarantined.
    Missing,
}

impl From<Option<Vec<u8>>> for RepairSupply {
    fn from(opt: Option<Vec<u8>>) -> Self {
        match opt {
            Some(p) => RepairSupply::Payload(p),
            None => RepairSupply::Missing,
        }
    }
}

impl std::fmt::Debug for AppendOnlyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendOnlyStore")
            .field("extent_capacity", &self.inner.config.extent_capacity)
            .field("stats", &self.inner.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StoreBuilder;
    use crate::error::ErrorKind;
    use crate::fault::FaultRule;

    fn store() -> AppendOnlyStore {
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(64)).build()
    }

    #[test]
    fn append_then_read_round_trips() {
        let s = store();
        let addr = s.append(StreamId::BASE, b"payload", 42, None).unwrap();
        assert_eq!(&s.read(addr).unwrap()[..], b"payload");
        let snap = s.stats().snapshot();
        assert_eq!(snap.appends, 1);
        assert_eq!(snap.bytes_appended, 7);
        assert_eq!(snap.random_reads, 1);
        assert_eq!(snap.bytes_read, 7);
    }

    #[test]
    fn scan_stream_returns_valid_records_in_append_order() {
        let s = store(); // 64-byte extents: forces multiple extents
        let mut addrs = Vec::new();
        for i in 0..10u64 {
            addrs.push(s.append(StreamId::WAL, &[i as u8; 20], i, None).unwrap());
        }
        s.invalidate(addrs[3]).unwrap();
        let scanned = s.scan_stream(StreamId::WAL).unwrap();
        let tags: Vec<u64> = scanned.iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
        for (addr, tag, bytes) in &scanned {
            assert_eq!(&bytes[..], &[*tag as u8; 20]);
            assert_eq!(&s.read(*addr).unwrap()[..], &bytes[..]);
        }
        assert_eq!(s.scan_stream(StreamId::BASE).unwrap().len(), 0);
    }

    #[test]
    fn reads_of_unknown_addresses_fail() {
        let s = store();
        let addr = s.append(StreamId::BASE, b"x", 0, None).unwrap();
        let bogus = PageAddr {
            extent: ExtentId(999),
            ..addr
        };
        assert!(matches!(
            s.read(bogus),
            Err(StorageError {
                kind: ErrorKind::UnknownExtent(_),
                op: StorageOp::Read,
                ..
            })
        ));
        let oob = PageAddr {
            offset: 60,
            len: 32,
            ..addr
        };
        assert!(matches!(
            s.read(oob),
            Err(StorageError {
                kind: ErrorKind::AddrOutOfBounds,
                ..
            })
        ));
    }

    #[test]
    fn record_too_large_is_rejected() {
        let s = store();
        let big = vec![0u8; 65];
        assert!(matches!(
            s.append(StreamId::BASE, &big, 0, None).unwrap_err().kind,
            ErrorKind::RecordTooLarge { .. }
        ));
    }

    #[test]
    fn appends_roll_over_extents() {
        let s = store();
        let a1 = s.append(StreamId::DELTA, &[0u8; 40], 0, None).unwrap();
        let a2 = s.append(StreamId::DELTA, &[0u8; 40], 0, None).unwrap();
        assert_ne!(a1.extent, a2.extent);
        let infos = s.extent_infos(StreamId::DELTA).unwrap();
        assert_eq!(infos.len(), 2);
        let sealed = infos.iter().find(|i| i.id == a1.extent).unwrap();
        assert_eq!(sealed.state, ExtentState::Sealed);
    }

    #[test]
    fn streams_are_isolated() {
        let s = store();
        s.append(StreamId::BASE, b"b", 0, None).unwrap();
        s.append(StreamId::DELTA, b"d", 0, None).unwrap();
        assert_eq!(s.stream_stats(StreamId::BASE).unwrap().valid_records, 1);
        assert_eq!(s.stream_stats(StreamId::DELTA).unwrap().valid_records, 1);
        assert_eq!(s.stream_stats(StreamId::WAL).unwrap().valid_records, 0);
    }

    #[test]
    fn invalidate_updates_fragmentation() {
        let s = store();
        let a = s.append(StreamId::BASE, &[0u8; 16], 0, None).unwrap();
        let _b = s.append(StreamId::BASE, &[0u8; 16], 0, None).unwrap();
        s.invalidate(a).unwrap();
        assert!(matches!(
            s.invalidate(a).unwrap_err().kind,
            ErrorKind::AlreadyInvalid
        ));
        let info = &s.extent_infos(StreamId::BASE).unwrap()[0];
        assert_eq!(info.invalid_records, 1);
        assert_eq!(info.valid_records, 1);
        assert!((info.fragmentation_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relocation_moves_only_valid_records_and_fixes_tags() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        let c = s.append(StreamId::BASE, &[3u8; 16], 103, None).unwrap();
        s.invalidate(b).unwrap();
        let victim = a.extent;
        assert_eq!(victim, c.extent);

        let mut moves: Vec<(u64, PageAddr)> = Vec::new();
        let moved = s
            .relocate_extent(StreamId::BASE, victim, |tag, old, new| {
                assert_eq!(old.extent, victim);
                assert_ne!(new.extent, victim);
                moves.push((tag, new));
            })
            .unwrap();
        assert_eq!(moved, 32);
        assert_eq!(moves.len(), 2);
        let tags: Vec<u64> = moves.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![101, 103]);
        // New addresses are readable; old extent is gone.
        for (_, new) in &moves {
            assert!(s.read(*new).is_ok());
        }
        assert!(s.read(a).is_err());
        let snap = s.stats().snapshot();
        assert_eq!(snap.relocation_moves, 2);
        assert_eq!(snap.relocation_bytes, 32);
        assert_eq!(snap.extents_reclaimed, 1);
    }

    #[test]
    fn expire_extent_requires_elapsed_ttl() {
        let cfg = StoreConfig::counting().with_extent_capacity(64);
        let s = StoreBuilder::from_config(cfg).build();
        let a = s
            .append(StreamId::DELTA, &[0u8; 16], 0, Some(1_000_000))
            .unwrap();
        // TTL not elapsed: refuse.
        assert!(matches!(
            s.expire_extent(StreamId::DELTA, a.extent).unwrap_err().kind,
            ErrorKind::ExtentStillLive { .. }
        ));
        s.clock().advance_nanos(2_000_000);
        let freed = s.expire_extent(StreamId::DELTA, a.extent).unwrap();
        assert_eq!(freed, 1);
        assert!(s.read(a).is_err());
        assert_eq!(s.stats().snapshot().extents_expired, 1);
        // Double-expire fails.
        assert!(s.expire_extent(StreamId::DELTA, a.extent).is_err());
    }

    #[test]
    fn footprint_counters_track_valid_and_used() {
        let s = store();
        let a = s.append(StreamId::BASE, &[0u8; 20], 0, None).unwrap();
        s.append(StreamId::DELTA, &[0u8; 10], 0, None).unwrap();
        assert_eq!(s.total_valid_bytes(), 30);
        assert_eq!(s.total_used_bytes(), 30);
        s.invalidate(a).unwrap();
        assert_eq!(s.total_valid_bytes(), 10);
        assert_eq!(s.total_used_bytes(), 30, "garbage still occupies space");
    }

    #[test]
    fn latency_is_charged_to_sim_clock() {
        let cfg = StoreConfig {
            extent_capacity: 1024,
            latency: LatencyModel {
                append_us: 100,
                random_read_us: 50,
                per_kib_us: 0,
                mapping_publish_us: 0,
                network_rtt_us: 0,
            },
            faults: FaultPlan::none(),
            cache: CacheConfig::default(),
            backend: BackendKind::Sim,
        };
        let s = StoreBuilder::from_config(cfg).build();
        let addr = s.append(StreamId::BASE, b"x", 0, None).unwrap();
        assert_eq!(s.clock().now().as_micros(), 100);
        s.read(addr).unwrap();
        assert_eq!(s.clock().now().as_micros(), 150);
    }

    #[test]
    fn clones_share_state() {
        let s = store();
        let peer = s.clone();
        let addr = s.append(StreamId::BASE, b"shared", 0, None).unwrap();
        assert_eq!(&peer.read(addr).unwrap()[..], b"shared");
    }

    #[test]
    fn injected_append_failure_writes_nothing() {
        let plan = FaultPlan::seeded(9)
            .with_rule(FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let err = s.append(StreamId::BASE, b"lost", 0, None).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(s.stats().snapshot().appends, 0, "nothing reached the store");
        assert_eq!(s.total_used_bytes(), 0);
        // Budget spent: the retry lands.
        let addr = s.append(StreamId::BASE, b"ok", 0, None).unwrap();
        assert_eq!(&s.read(addr).unwrap()[..], b"ok");
    }

    #[test]
    fn torn_append_consumes_space_but_is_unreadable_garbage() {
        let plan = FaultPlan::seeded(9)
            .with_rule(FaultRule::new(FaultOp::Append, FaultKind::AppendTorn, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let err = s.append(StreamId::BASE, &[7u8; 16], 0, None).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err.addr.unwrap().len, 16, "torn tail reports its address");
        // The bytes occupy log space as garbage, not valid data.
        assert_eq!(s.total_used_bytes(), 16);
        assert_eq!(s.total_valid_bytes(), 0);
    }

    #[test]
    fn injected_read_failure_is_transient_and_bounded() {
        let plan = FaultPlan::seeded(5)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 1.0).at_most(2));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let addr = s.append(StreamId::BASE, b"persistent", 0, None).unwrap();
        assert!(s.read(addr).unwrap_err().is_transient());
        assert!(s.read(addr).unwrap_err().is_transient());
        assert_eq!(&s.read(addr).unwrap()[..], b"persistent");
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let s = store();
        let addr = s.append(StreamId::BASE, b"hot page", 0, None).unwrap();
        for _ in 0..5 {
            assert_eq!(&s.read(addr).unwrap()[..], b"hot page");
        }
        let snap = s.stats().snapshot();
        assert_eq!(snap.random_reads, 1, "only the cold read touched storage");
        assert_eq!(snap.cache_hits, 4);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.read_amplification() - 0.2).abs() < 1e-9);
        let cache = s.cache_stats();
        assert_eq!(cache.hits, 4);
        assert_eq!(cache.resident_entries, 1);
    }

    #[test]
    fn cache_hits_charge_no_latency() {
        let cfg = StoreConfig {
            extent_capacity: 1024,
            latency: LatencyModel {
                append_us: 0,
                random_read_us: 50,
                per_kib_us: 0,
                mapping_publish_us: 0,
                network_rtt_us: 0,
            },
            faults: FaultPlan::none(),
            cache: CacheConfig::default(),
            backend: BackendKind::Sim,
        };
        let s = StoreBuilder::from_config(cfg).build();
        let addr = s.append(StreamId::BASE, b"x", 0, None).unwrap();
        s.read(addr).unwrap();
        assert_eq!(s.clock().now().as_micros(), 50, "cold read pays");
        s.read(addr).unwrap();
        s.read(addr).unwrap();
        assert_eq!(s.clock().now().as_micros(), 50, "warm reads are free");
    }

    #[test]
    fn disabled_cache_restores_raw_read_counting() {
        let s = StoreBuilder::from_config(
            StoreConfig::counting()
                .with_extent_capacity(64)
                .without_cache(),
        )
        .build();
        let addr = s.append(StreamId::BASE, b"cold", 0, None).unwrap();
        for _ in 0..3 {
            s.read(addr).unwrap();
        }
        let snap = s.stats().snapshot();
        assert_eq!(snap.random_reads, 3);
        assert_eq!(snap.cache_hits + snap.cache_misses, 0);
        assert_eq!(snap.read_amplification(), 1.0);
    }

    #[test]
    fn invalidate_evicts_the_cached_slot() {
        let s = store();
        let addr = s.append(StreamId::BASE, b"dying", 0, None).unwrap();
        s.read(addr).unwrap(); // now resident
        s.invalidate(addr).unwrap();
        assert_eq!(s.cache_stats().resident_entries, 0);
        assert!(s.stats().snapshot().cache_evictions >= 1);
    }

    #[test]
    fn relocation_evicts_cached_slots_of_the_freed_extent() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        s.read(a).unwrap();
        s.read(b).unwrap();
        assert_eq!(s.cache_stats().resident_entries, 2);
        let mut moves = Vec::new();
        s.relocate_extent(StreamId::BASE, a.extent, |tag, _, new| {
            moves.push((tag, new));
        })
        .unwrap();
        assert_eq!(s.cache_stats().resident_entries, 0, "old slots evicted");
        // Old addresses fail everywhere; new addresses read fine (and the
        // relocation reads themselves never populated the cache).
        assert!(s.read(a).is_err());
        for (_, new) in &moves {
            assert!(s.read(*new).is_ok());
        }
    }

    #[test]
    fn expiry_evicts_cached_slots() {
        let s = store();
        let a = s
            .append(StreamId::DELTA, &[0u8; 16], 0, Some(1_000))
            .unwrap();
        s.read(a).unwrap();
        s.clock().advance_nanos(2_000);
        s.expire_extent(StreamId::DELTA, a.extent).unwrap();
        assert_eq!(s.cache_stats().resident_entries, 0);
        assert!(s.read(a).is_err(), "no ghost hit after expiry");
    }

    #[test]
    fn read_faults_still_fire_on_cold_reads_only() {
        let plan = FaultPlan::seeded(5)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let addr = s.append(StreamId::BASE, b"page", 0, None).unwrap();
        assert!(
            s.read(addr).unwrap_err().is_transient(),
            "cold read faulted"
        );
        assert_eq!(&s.read(addr).unwrap()[..], b"page", "retry lands");
        // Now resident: a hit never draws from the fault plan.
        assert_eq!(&s.read(addr).unwrap()[..], b"page");
        assert_eq!(s.stats().snapshot().cache_hits, 1);
    }

    #[test]
    fn bit_flip_reads_are_detected_and_the_rot_persists() {
        let plan = FaultPlan::seeded(0xB17)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadBitFlip, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let addr = s.append(StreamId::BASE, b"precious", 7, None).unwrap();
        let err = s.read(addr).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::ChecksumMismatch));
        assert!(err.is_retryable(), "a clean replica might exist");
        // The budget is spent, but the flipped bit lives in the stored
        // frame: the re-read still fails until the extent is repaired.
        assert!(matches!(
            s.read(addr).unwrap_err().kind,
            ErrorKind::ChecksumMismatch
        ));
        let snap = s.stats().snapshot();
        assert_eq!(snap.checksum_mismatches, 2);
        assert_eq!(snap.random_reads, 0, "no garbage byte was served");
        assert_eq!(snap.bytes_read, 0);
    }

    #[test]
    fn stale_reads_are_caught_by_record_binding_and_are_transient() {
        let plan = FaultPlan::seeded(0x57A1E)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadStale, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let addr = s.append(StreamId::BASE, b"identity", 7, None).unwrap();
        // The stale frame is internally CRC-consistent; only the record
        // binding in the header exposes it.
        assert!(matches!(
            s.read(addr).unwrap_err().kind,
            ErrorKind::ChecksumMismatch
        ));
        assert_eq!(&s.read(addr).unwrap()[..], b"identity", "retry lands");
    }

    #[test]
    fn short_reads_are_detected_and_are_transient() {
        let plan = FaultPlan::seeded(0x5407)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadShort, 1.0).at_most(1));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let addr = s.append(StreamId::BASE, b"full length", 7, None).unwrap();
        assert!(matches!(
            s.read(addr).unwrap_err().kind,
            ErrorKind::ChecksumMismatch
        ));
        assert_eq!(&s.read(addr).unwrap()[..], b"full length");
    }

    #[test]
    fn corrupt_then_verify_quarantines_and_gc_refuses() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        assert_eq!(a.extent, b.extent);
        s.corrupt_record_bit(a, 130).unwrap();

        let check = s.verify_extent(StreamId::BASE, a.extent).unwrap();
        assert_eq!(check.corrupt_records, 1);
        assert_eq!(check.records_verified, 1);
        assert!(check.newly_quarantined);
        assert!(s.is_quarantined(StreamId::BASE, a.extent).unwrap());

        // Reads fail fast — even of the intact record — and the error is
        // not retryable: repair must happen first.
        let err = s.read(b).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::ExtentQuarantined(_)));
        assert!(!err.is_retryable());
        // GC keeps its hands off.
        assert!(matches!(
            s.relocate_extent(StreamId::BASE, a.extent, |_, _, _| {})
                .unwrap_err()
                .kind,
            ErrorKind::ExtentQuarantined(_)
        ));
        // A second verify pass does not double-quarantine.
        let again = s.verify_extent(StreamId::BASE, a.extent).unwrap();
        assert!(!again.newly_quarantined);
        assert_eq!(s.stats().snapshot().extents_quarantined, 1);
    }

    #[test]
    fn repair_rehomes_intact_records_and_resupplies_corrupt_ones() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        s.corrupt_record_bit(a, 7).unwrap();
        s.verify_extent(StreamId::BASE, a.extent).unwrap();

        let mut moves = Vec::new();
        let report = s
            .repair_extent(
                StreamId::BASE,
                a.extent,
                |tag, old| {
                    assert_eq!(tag, 101, "only the damaged record needs a source");
                    assert_eq!(old.record, a.record);
                    Some(vec![1u8; 16])
                },
                |tag, _, new| moves.push((tag, new)),
            )
            .unwrap();
        assert_eq!(report.moved_records, 2);
        assert_eq!(report.resupplied_records, 1);
        assert_eq!(report.moved_bytes, 32);
        // Every record is readable again at its new home.
        for (tag, new) in &moves {
            let bytes = s.read(*new).unwrap();
            assert_eq!(&bytes[..], &[(*tag - 100) as u8; 16]);
        }
        assert!(s.read(b).is_err(), "old extent is reclaimed");
        let snap = s.stats().snapshot();
        assert_eq!(snap.extents_repaired, 1);
        assert_eq!(snap.scrub_records_resupplied, 1);

        // Trace order: quarantine precedes repair precedes reclaim.
        let events = s.trace().events();
        let seq_of = |kind: TraceKind| events.iter().find(|e| e.kind == kind).unwrap().seq;
        assert!(seq_of(TraceKind::ExtentQuarantine) < seq_of(TraceKind::ExtentRepair));
        assert!(seq_of(TraceKind::ExtentRepair) < seq_of(TraceKind::ExtentRelocate));
    }

    #[test]
    fn repair_drops_records_the_source_declares_unreferenced() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        s.corrupt_record_bit(a, 5).unwrap();
        s.verify_extent(StreamId::BASE, a.extent).unwrap();

        let mut moves = Vec::new();
        let report = s
            .repair_extent(
                StreamId::BASE,
                a.extent,
                |_, _| RepairSupply::Drop,
                |tag, _, new| moves.push((tag, new)),
            )
            .unwrap();
        assert_eq!(report.dropped_records, 1);
        assert_eq!(report.resupplied_records, 0);
        assert_eq!(report.moved_records, 1, "the intact record still moves");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].0, 102);
        assert_eq!(&s.read(moves[0].1).unwrap()[..], &[2u8; 16]);
        assert!(s.read(a).is_err(), "dropped record went with its extent");
        assert!(s.read(b).is_err(), "source extent reclaimed");
        assert_eq!(s.stats().snapshot().extents_repaired, 1);
    }

    #[test]
    fn repair_without_a_source_moves_nothing_and_keeps_quarantine() {
        let s = store();
        let a = s.append(StreamId::BASE, &[1u8; 16], 101, None).unwrap();
        let _b = s.append(StreamId::BASE, &[2u8; 16], 102, None).unwrap();
        s.corrupt_record_bit(a, 3).unwrap();
        s.verify_extent(StreamId::BASE, a.extent).unwrap();

        let mut moved = 0;
        let err = s
            .repair_extent(
                StreamId::BASE,
                a.extent,
                |_, _| None::<Vec<u8>>,
                |_, _, _| moved += 1,
            )
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::ChecksumMismatch));
        assert_eq!(moved, 0, "nothing moved before the abort");
        assert!(s.is_quarantined(StreamId::BASE, a.extent).unwrap());
        assert_eq!(s.stats().snapshot().extents_repaired, 0);
    }

    #[test]
    fn delay_fault_charges_the_clock_without_failing() {
        let plan = FaultPlan::seeded(2).delay(FaultOp::Append, 5_000, 1.0);
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        s.append(StreamId::BASE, b"slow", 0, None).unwrap();
        assert_eq!(
            s.clock().now().as_micros(),
            5,
            "delay charged, op succeeded"
        );
    }
}
