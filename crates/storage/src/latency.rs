//! Latency model for the simulated shared store.
//!
//! The defaults mimic a Pangu/Tectonic-class append-only cloud store
//! (§4.1: "millisecond-level latency"): appends are cheap sequential I/O,
//! random reads pay a seek-equivalent, and both scale mildly with size.

use serde::{Deserialize, Serialize};

/// Per-operation latency parameters, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost of one append (sequential tail write), µs.
    pub append_us: u64,
    /// Fixed cost of one random read, µs.
    pub random_read_us: u64,
    /// Additional cost per KiB transferred (either direction), µs.
    pub per_kib_us: u64,
    /// Fixed cost of publishing a mapping-table version, µs.
    pub mapping_publish_us: u64,
    /// Network round-trip between a node and the store, µs. Charged once per
    /// operation on top of the storage-side cost.
    pub network_rtt_us: u64,
}

impl LatencyModel {
    /// A cloud-storage-like profile: ~1 ms appends, ~0.8 ms random reads.
    pub fn cloud() -> Self {
        LatencyModel {
            append_us: 500,
            random_read_us: 400,
            per_kib_us: 2,
            mapping_publish_us: 300,
            network_rtt_us: 500,
        }
    }

    /// A zero-latency profile for pure-throughput experiments where only the
    /// byte/op counters matter (Fig. 9/10/11).
    pub fn zero() -> Self {
        LatencyModel {
            append_us: 0,
            random_read_us: 0,
            per_kib_us: 0,
            mapping_publish_us: 0,
            network_rtt_us: 0,
        }
    }

    /// Total simulated cost of appending `len` bytes, in nanoseconds.
    pub fn append_cost_nanos(&self, len: usize) -> u64 {
        (self.append_us + self.network_rtt_us + self.size_cost_us(len)) * 1_000
    }

    /// Total simulated cost of randomly reading `len` bytes, in nanoseconds.
    pub fn read_cost_nanos(&self, len: usize) -> u64 {
        (self.random_read_us + self.network_rtt_us + self.size_cost_us(len)) * 1_000
    }

    /// Total simulated cost of a mapping-table publish, in nanoseconds.
    pub fn mapping_cost_nanos(&self) -> u64 {
        (self.mapping_publish_us + self.network_rtt_us) * 1_000
    }

    fn size_cost_us(&self, len: usize) -> u64 {
        // Round up to whole KiB so tiny records still pay a sliver.
        let kib = (len as u64).div_ceil(1024);
        kib * self.per_kib_us
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::cloud()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        let m = LatencyModel::zero();
        assert_eq!(m.append_cost_nanos(4096), 0);
        assert_eq!(m.read_cost_nanos(4096), 0);
        assert_eq!(m.mapping_cost_nanos(), 0);
    }

    #[test]
    fn cloud_model_is_millisecond_scale() {
        let m = LatencyModel::cloud();
        let one_page = m.append_cost_nanos(8192);
        // 500µs append + 500µs rtt + 8KiB * 2µs = 1016µs.
        assert_eq!(one_page, 1_016_000);
        let read = m.read_cost_nanos(1);
        // 400 + 500 + 1 KiB rounded up * 2.
        assert_eq!(read, 902_000);
    }

    #[test]
    fn size_cost_rounds_up_to_kib() {
        let m = LatencyModel {
            append_us: 0,
            random_read_us: 0,
            per_kib_us: 10,
            mapping_publish_us: 0,
            network_rtt_us: 0,
        };
        assert_eq!(m.append_cost_nanos(0), 0);
        assert_eq!(m.append_cost_nanos(1), 10_000);
        assert_eq!(m.append_cost_nanos(1024), 10_000);
        assert_eq!(m.append_cost_nanos(1025), 20_000);
    }
}
