//! Per-stream state: an ordered collection of extents with one open tail.

use crate::addr::{ExtentId, StreamId};
use crate::clock::SimInstant;
use crate::extent::{Extent, ExtentState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mutable state of a single append-only stream. Guarded by a per-stream
/// mutex in [`crate::store::AppendOnlyStore`]; appends to one stream
/// serialize (it has a single tail), different streams proceed in parallel.
#[derive(Debug)]
pub(crate) struct StreamInner {
    pub id: StreamId,
    pub extents: BTreeMap<ExtentId, Extent>,
    /// Extent currently receiving appends, if any.
    pub active: Option<ExtentId>,
}

impl StreamInner {
    pub fn new(id: StreamId) -> Self {
        StreamInner {
            id,
            extents: BTreeMap::new(),
            active: None,
        }
    }

    /// Returns the active extent id, opening a fresh one via `alloc` when the
    /// current one cannot hold `len` more bytes.
    pub fn extent_for_append(
        &mut self,
        len: usize,
        capacity: usize,
        now: SimInstant,
        mut alloc: impl FnMut() -> ExtentId,
    ) -> ExtentId {
        if let Some(active) = self.active {
            let ext = self.extents.get_mut(&active).expect("active extent exists");
            if ext.remaining() >= len {
                return active;
            }
            ext.state = ExtentState::Sealed;
        }
        let id = alloc();
        self.extents.insert(id, Extent::new(capacity, now));
        self.active = Some(id);
        id
    }

    /// Aggregate live statistics for this stream.
    pub fn stats(&self) -> StreamStats {
        let mut s = StreamStats {
            stream: self.id,
            ..StreamStats::default()
        };
        for ext in self.extents.values() {
            match ext.state {
                ExtentState::Reclaimed => s.reclaimed_extents += 1,
                ExtentState::Open | ExtentState::Sealed => {
                    s.live_extents += 1;
                    s.valid_records += ext.valid_count;
                    s.invalid_records += ext.invalid_count;
                    s.valid_bytes += ext.valid_bytes;
                    s.used_bytes += ext.payload_used;
                    s.capacity_bytes += ext.capacity as u64;
                }
            }
        }
        s
    }
}

/// Aggregate snapshot of a stream's space usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Which stream this snapshot describes.
    pub stream: StreamId,
    /// Extents still holding data (open or sealed).
    pub live_extents: u64,
    /// Extents already freed.
    pub reclaimed_extents: u64,
    /// Valid records across live extents.
    pub valid_records: u64,
    /// Invalid (garbage) records across live extents.
    pub invalid_records: u64,
    /// Bytes of valid data.
    pub valid_bytes: u64,
    /// Bytes appended into live extents (valid + garbage).
    pub used_bytes: u64,
    /// Total provisioned capacity of live extents.
    pub capacity_bytes: u64,
}

impl StreamStats {
    /// Space utilization: valid bytes over occupied bytes.
    pub fn utilization(&self) -> f64 {
        if self.used_bytes == 0 {
            1.0
        } else {
            self.valid_bytes as f64 / self.used_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RecordId;
    use crate::frame::FrameKind;

    #[test]
    fn extent_rollover_seals_previous() {
        let mut s = StreamInner::new(StreamId::BASE);
        let mut next = 0u64;
        let mut alloc = || {
            next += 1;
            ExtentId(next)
        };
        let e1 = s.extent_for_append(10, 16, SimInstant(0), &mut alloc);
        assert_eq!(e1, ExtentId(1));
        s.extents.get_mut(&e1).unwrap().push(
            RecordId(0),
            FrameKind::Delta,
            &[0u8; 10],
            0,
            SimInstant(0),
            None,
            false,
        );
        // 6 bytes left; a 10-byte append must roll over.
        let e2 = s.extent_for_append(10, 16, SimInstant(1), &mut alloc);
        assert_eq!(e2, ExtentId(2));
        assert_eq!(s.extents[&e1].state, ExtentState::Sealed);
        assert_eq!(s.extents[&e2].state, ExtentState::Open);
        assert_eq!(s.active, Some(e2));
    }

    #[test]
    fn stats_aggregate_live_extents_only() {
        let mut s = StreamInner::new(StreamId::DELTA);
        let mut next = 0u64;
        let mut alloc = || {
            next += 1;
            ExtentId(next)
        };
        let e1 = s.extent_for_append(4, 8, SimInstant(0), &mut alloc);
        s.extents.get_mut(&e1).unwrap().push(
            RecordId(0),
            FrameKind::Delta,
            &[1, 2, 3, 4],
            0,
            SimInstant(0),
            None,
            false,
        );
        let e2 = s.extent_for_append(8, 8, SimInstant(1), &mut alloc);
        s.extents.get_mut(&e2).unwrap().push(
            RecordId(1),
            FrameKind::Delta,
            &[0u8; 8],
            0,
            SimInstant(1),
            None,
            false,
        );
        s.extents.get_mut(&e1).unwrap().state = ExtentState::Reclaimed;

        let stats = s.stats();
        assert_eq!(stats.live_extents, 1);
        assert_eq!(stats.reclaimed_extents, 1);
        assert_eq!(stats.valid_records, 1);
        assert_eq!(stats.valid_bytes, 8);
        assert_eq!(stats.used_bytes, 8);
        assert!((stats.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_empty_stream_is_one() {
        let s = StreamInner::new(StreamId::WAL);
        assert_eq!(s.stats().utilization(), 1.0);
    }
}
