//! Per-stream state: an ordered collection of extents with one open tail.

use crate::addr::{ExtentId, StreamId};
use crate::clock::SimInstant;
use crate::extent::{Extent, ExtentState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mutable state of a single append-only stream. Guarded by a per-stream
/// mutex in [`crate::store::AppendOnlyStore`]; appends to one stream
/// serialize (it has a single tail), different streams proceed in parallel.
#[derive(Debug)]
pub(crate) struct StreamInner {
    pub id: StreamId,
    pub extents: BTreeMap<ExtentId, Extent>,
    /// Extent currently receiving appends, if any.
    pub active: Option<ExtentId>,
    /// Fsyncgate state: set when a durability barrier (sync or rollover
    /// seal) for this stream fails. The tail can no longer be trusted, so
    /// every later append or sync fails closed with
    /// [`crate::ErrorKind::SyncPoisoned`] until a fresh store open
    /// re-derives the tail from on-disk frames.
    pub poisoned: bool,
}

impl StreamInner {
    pub fn new(id: StreamId) -> Self {
        StreamInner {
            id,
            extents: BTreeMap::new(),
            active: None,
            poisoned: false,
        }
    }

    /// Returns where the next `len`-byte append lands, opening a fresh
    /// extent via `alloc` when the current one cannot hold `len` more
    /// bytes. The placement reports metadata transitions — a sealed
    /// predecessor and/or a fresh allocation — so the store can mirror
    /// them onto its [`crate::ExtentBackend`] (seal barrier, backing
    /// object creation) while still holding the stream lock.
    pub fn extent_for_append(
        &mut self,
        len: usize,
        capacity: usize,
        now: SimInstant,
        mut alloc: impl FnMut() -> ExtentId,
    ) -> AppendPlacement {
        let mut sealed = None;
        if let Some(active) = self.active {
            let ext = self.extents.get_mut(&active).expect("active extent exists");
            if ext.remaining() >= len {
                return AppendPlacement {
                    extent: active,
                    sealed: None,
                    allocated: false,
                };
            }
            ext.state = ExtentState::Sealed;
            sealed = Some(active);
        }
        let id = alloc();
        self.extents.insert(id, Extent::new(capacity, now));
        self.active = Some(id);
        AppendPlacement {
            extent: id,
            sealed,
            allocated: true,
        }
    }

    /// Rolls back a fresh allocation whose backend counterpart failed:
    /// removes the metadata inserted by [`StreamInner::extent_for_append`]
    /// so the stream never points at an extent with no backing object.
    pub fn abort_allocation(&mut self, extent: ExtentId) {
        self.extents.remove(&extent);
        if self.active == Some(extent) {
            self.active = None;
        }
    }

    /// Aggregate live statistics for this stream.
    pub fn stats(&self) -> StreamStats {
        let mut s = StreamStats {
            stream: self.id,
            ..StreamStats::default()
        };
        for ext in self.extents.values() {
            match ext.state {
                ExtentState::Reclaimed => s.reclaimed_extents += 1,
                ExtentState::Open | ExtentState::Sealed => {
                    s.live_extents += 1;
                    s.valid_records += ext.valid_count;
                    s.invalid_records += ext.invalid_count;
                    s.valid_bytes += ext.valid_bytes;
                    s.used_bytes += ext.payload_used;
                    s.capacity_bytes += ext.capacity as u64;
                }
            }
        }
        s
    }
}

/// Where one append lands, plus the metadata transitions that choosing
/// the spot caused (see [`StreamInner::extent_for_append`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AppendPlacement {
    /// Extent that receives the append.
    pub extent: ExtentId,
    /// Predecessor sealed by rollover, if any — the store must issue the
    /// backend seal barrier for it.
    pub sealed: Option<ExtentId>,
    /// True when `extent` was freshly allocated — the store must create
    /// its backing object (and roll back via
    /// [`StreamInner::abort_allocation`] if that fails).
    pub allocated: bool,
}

/// Aggregate snapshot of a stream's space usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Which stream this snapshot describes.
    pub stream: StreamId,
    /// Extents still holding data (open or sealed).
    pub live_extents: u64,
    /// Extents already freed.
    pub reclaimed_extents: u64,
    /// Valid records across live extents.
    pub valid_records: u64,
    /// Invalid (garbage) records across live extents.
    pub invalid_records: u64,
    /// Bytes of valid data.
    pub valid_bytes: u64,
    /// Bytes appended into live extents (valid + garbage).
    pub used_bytes: u64,
    /// Total provisioned capacity of live extents.
    pub capacity_bytes: u64,
}

impl StreamStats {
    /// Space utilization: valid bytes over occupied bytes.
    pub fn utilization(&self) -> f64 {
        if self.used_bytes == 0 {
            1.0
        } else {
            self.valid_bytes as f64 / self.used_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RecordId;

    #[test]
    fn extent_rollover_seals_previous() {
        let mut s = StreamInner::new(StreamId::BASE);
        let mut next = 0u64;
        let mut alloc = || {
            next += 1;
            ExtentId(next)
        };
        let p1 = s.extent_for_append(10, 16, SimInstant(0), &mut alloc);
        let e1 = p1.extent;
        assert_eq!(e1, ExtentId(1));
        assert!(p1.allocated);
        assert_eq!(p1.sealed, None);
        s.extents
            .get_mut(&e1)
            .unwrap()
            .push_slot(RecordId(0), 10, 0, SimInstant(0), None, false);
        // 6 bytes left; a 10-byte append must roll over.
        let p2 = s.extent_for_append(10, 16, SimInstant(1), &mut alloc);
        let e2 = p2.extent;
        assert_eq!(e2, ExtentId(2));
        assert!(p2.allocated);
        assert_eq!(p2.sealed, Some(e1), "rollover reports the sealed extent");
        assert_eq!(s.extents[&e1].state, ExtentState::Sealed);
        assert_eq!(s.extents[&e2].state, ExtentState::Open);
        assert_eq!(s.active, Some(e2));
        // Fits in place: no transitions to mirror.
        let p3 = s.extent_for_append(2, 16, SimInstant(2), &mut alloc);
        assert_eq!(p3.extent, e2);
        assert!(!p3.allocated);
        assert_eq!(p3.sealed, None);
    }

    #[test]
    fn abort_allocation_rolls_back_metadata() {
        let mut s = StreamInner::new(StreamId::BASE);
        let p = s.extent_for_append(4, 16, SimInstant(0), || ExtentId(1));
        assert!(p.allocated);
        s.abort_allocation(p.extent);
        assert!(s.extents.is_empty());
        assert_eq!(s.active, None);
    }

    #[test]
    fn stats_aggregate_live_extents_only() {
        let mut s = StreamInner::new(StreamId::DELTA);
        let mut next = 0u64;
        let mut alloc = || {
            next += 1;
            ExtentId(next)
        };
        let e1 = s.extent_for_append(4, 8, SimInstant(0), &mut alloc).extent;
        s.extents
            .get_mut(&e1)
            .unwrap()
            .push_slot(RecordId(0), 4, 0, SimInstant(0), None, false);
        let e2 = s.extent_for_append(8, 8, SimInstant(1), &mut alloc).extent;
        s.extents
            .get_mut(&e2)
            .unwrap()
            .push_slot(RecordId(1), 8, 0, SimInstant(1), None, false);
        s.extents.get_mut(&e1).unwrap().state = ExtentState::Reclaimed;

        let stats = s.stats();
        assert_eq!(stats.live_extents, 1);
        assert_eq!(stats.reclaimed_extents, 1);
        assert_eq!(stats.valid_records, 1);
        assert_eq!(stats.valid_bytes, 8);
        assert_eq!(stats.used_bytes, 8);
        assert!((stats.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_empty_stream_is_one() {
        let s = StreamInner::new(StreamId::WAL);
        assert_eq!(s.stats().utilization(), 1.0);
    }
}
