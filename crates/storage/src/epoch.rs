//! Epoch fencing tokens for leader failover.
//!
//! BG3 runs exactly one RW node per shard; after a leader crash a follower
//! is promoted. The promoted node must be protected from the *old* leader
//! resurrecting with stale state and publishing to the shared mapping table
//! or appending to the WAL (the classic "zombie writer" problem of
//! shared-storage designs). The standard defense — used by every
//! Pangu/Tectonic-style log service — is an **epoch** (fencing token): a
//! monotonically increasing integer held by the storage service. Promotion
//! *seals* the old epoch at the store, and every subsequent publish/append
//! stamped with a lower epoch is rejected atomically.
//!
//! [`EpochFence`] is that token. One fence instance is shared (via `Arc`)
//! between the mapping table, the WAL writer, and the failover coordinator;
//! rejections are counted so chaos experiments can assert that zombies were
//! actually fenced rather than merely absent.

use crate::error::{StorageError, StorageOp, StorageResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The epoch every cluster starts in.
pub const INITIAL_EPOCH: u64 = 1;

#[derive(Debug)]
struct FenceInner {
    current: AtomicU64,
    seals: AtomicU64,
    rejected_publishes: AtomicU64,
    rejected_appends: AtomicU64,
}

/// Shared fencing token. Clones observe the same epoch (they model one
/// storage-service-side token consulted by different components).
#[derive(Debug, Clone)]
pub struct EpochFence {
    inner: Arc<FenceInner>,
}

impl Default for EpochFence {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochFence {
    /// Creates a fence at [`INITIAL_EPOCH`].
    pub fn new() -> Self {
        EpochFence {
            inner: Arc::new(FenceInner {
                current: AtomicU64::new(INITIAL_EPOCH),
                seals: AtomicU64::new(0),
                rejected_publishes: AtomicU64::new(0),
                rejected_appends: AtomicU64::new(0),
            }),
        }
    }

    /// The epoch currently accepted by the store.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Acquire)
    }

    /// Advances the fence to `epoch`, sealing every lower epoch: after this
    /// returns, [`EpochFence::check`] rejects writers still on an older
    /// epoch. Fails (without moving the fence) when `epoch` is not strictly
    /// newer — a second promotion won the race, and the caller is itself a
    /// would-be zombie.
    pub fn seal(&self, epoch: u64) -> StorageResult<u64> {
        let mut current = self.inner.current.load(Ordering::Acquire);
        loop {
            if epoch <= current {
                return Err(StorageError::epoch_fenced(
                    StorageOp::MappingPublish,
                    epoch,
                    current,
                ));
            }
            match self.inner.current.compare_exchange(
                current,
                epoch,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.seals.fetch_add(1, Ordering::Relaxed);
                    return Ok(epoch);
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Verifies that a writer on `epoch` is still the fenced-in leader for
    /// `op`. Rejections are counted per operation class.
    pub fn check(&self, epoch: u64, op: StorageOp) -> StorageResult<()> {
        let current = self.current();
        if epoch >= current {
            return Ok(());
        }
        let counter = match op {
            StorageOp::Append => &self.inner.rejected_appends,
            _ => &self.inner.rejected_publishes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Err(StorageError::epoch_fenced(op, epoch, current))
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> EpochFenceSnapshot {
        EpochFenceSnapshot {
            current_epoch: self.current(),
            seals: self.inner.seals.load(Ordering::Relaxed),
            rejected_publishes: self.inner.rejected_publishes.load(Ordering::Relaxed),
            rejected_appends: self.inner.rejected_appends.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of an [`EpochFence`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EpochFenceSnapshot {
    /// The epoch currently accepted by the store.
    pub current_epoch: u64,
    /// Times the fence advanced (failovers completed).
    pub seals: u64,
    /// Mapping publishes rejected for carrying a sealed epoch.
    pub rejected_publishes: u64,
    /// WAL appends rejected for carrying a sealed epoch.
    pub rejected_appends: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn starts_at_initial_epoch_and_accepts_it() {
        let fence = EpochFence::new();
        assert_eq!(fence.current(), INITIAL_EPOCH);
        fence.check(INITIAL_EPOCH, StorageOp::Append).unwrap();
        fence
            .check(INITIAL_EPOCH, StorageOp::MappingPublish)
            .unwrap();
        assert_eq!(
            fence.snapshot(),
            EpochFenceSnapshot {
                current_epoch: INITIAL_EPOCH,
                ..Default::default()
            }
        );
    }

    #[test]
    fn seal_advances_and_fences_the_old_epoch() {
        let fence = EpochFence::new();
        assert_eq!(fence.seal(2).unwrap(), 2);
        let err = fence.check(INITIAL_EPOCH, StorageOp::Append).unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::EpochFenced {
                attempted: 1,
                current: 2
            }
        ));
        fence.check(2, StorageOp::Append).unwrap();
        let snap = fence.snapshot();
        assert_eq!(snap.seals, 1);
        assert_eq!(snap.rejected_appends, 1);
        assert_eq!(snap.rejected_publishes, 0);
    }

    #[test]
    fn seal_to_an_older_or_equal_epoch_is_itself_fenced() {
        let fence = EpochFence::new();
        fence.seal(5).unwrap();
        assert!(fence.seal(5).unwrap_err().is_fenced());
        assert!(fence.seal(3).unwrap_err().is_fenced());
        assert_eq!(fence.current(), 5);
        assert_eq!(fence.snapshot().seals, 1, "losing seals do not count");
    }

    #[test]
    fn clones_share_the_token() {
        let fence = EpochFence::new();
        let peer = fence.clone();
        fence.seal(7).unwrap();
        assert_eq!(peer.current(), 7);
        assert!(peer.check(1, StorageOp::MappingPublish).is_err());
        assert_eq!(fence.snapshot().rejected_publishes, 1);
    }
}
