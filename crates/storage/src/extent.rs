//! Extents: the unit of space reclamation.
//!
//! Each stream's data is partitioned into uniformly sized extents (ArkDB's
//! design, adopted by BG3 in §3.3). The extent tracks exactly the per-extent
//! metadata the paper's *Extent Usage Tracking* structure records:
//!
//! 1. the latest update time in the extent,
//! 2. the total number of invalid pages (→ fragmentation rate),
//! 3. a history of `(time, invalid-count)` samples (→ update gradient),
//! 4. the extent-level TTL deadline, derived from the newest record's
//!    timestamp plus the workload's expiration period.

use crate::addr::RecordId;
use crate::clock::SimInstant;
use crate::frame::FRAME_HEADER_LEN;
use serde::{Deserialize, Serialize};

/// One record slot within an extent.
#[derive(Debug, Clone)]
pub(crate) struct RecordSlot {
    pub record: RecordId,
    pub offset: u32,
    pub len: u32,
    pub valid: bool,
    /// True when this record was written by space reclamation (a relocated
    /// survivor). If it later becomes invalid, the relocation was wasted
    /// I/O — the quantity Fig. 5 argues about.
    pub relocated: bool,
    /// Opaque tag the owner (e.g. the Bw-tree) attached at append time; it is
    /// handed back during relocation so the owner can fix up its mapping.
    pub tag: u64,
}

/// Lifecycle state of an extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtentState {
    /// Still receiving appends.
    Open,
    /// Full; eligible for space reclamation.
    Sealed,
    /// Freed (relocated or expired). Kept as a tombstone for bookkeeping.
    Reclaimed,
}

/// One `(time, invalid-count)` observation, the raw material of the update
/// gradient (§3.3, Fig. 5: gradient = Δinvalid / Δtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageSample {
    /// When the invalidation was observed.
    pub at: SimInstant,
    /// Total invalid records in the extent at that moment.
    pub invalid: u64,
}

/// The in-memory *metadata* of one extent. The physical bytes — a
/// sequence of framed records (28-byte checksummed header, then payload;
/// see [`crate::frame`]) — live in the store's
/// [`crate::ExtentBackend`]. Slot offsets point at payloads; the frame
/// header sits in the `FRAME_HEADER_LEN` bytes before each offset.
#[derive(Debug)]
pub(crate) struct Extent {
    /// Physical write cursor: total framed bytes (headers + payloads)
    /// appended to the backend so far. The next frame starts here.
    pub physical_len: u64,
    pub capacity: usize,
    pub slots: Vec<RecordSlot>,
    pub state: ExtentState,
    pub valid_count: u64,
    pub invalid_count: u64,
    pub valid_bytes: u64,
    /// Logical (payload) bytes appended. Capacity accounting is payload-
    /// based: frame headers are integrity metadata, invisible to record
    /// packing and to every space statistic, so experiment numbers do not
    /// drift with the header size.
    pub payload_used: u64,
    /// Set when scrubbing found a frame that fails verification. Reads
    /// fail fast ([`crate::ErrorKind::ExtentQuarantined`]) and GC refuses
    /// to relocate or expire the extent until it has been repaired.
    pub quarantined: bool,
    pub last_update: SimInstant,
    pub created_at: SimInstant,
    /// Bounded history of invalidation samples, oldest first.
    pub usage_history: Vec<UsageSample>,
    /// Expiry deadline of the *newest* record, if any record carried a TTL.
    pub ttl_deadline: Option<SimInstant>,
}

/// How many `(time, invalid)` samples we retain per extent. Two suffice for
/// the gradient; a few more smooth bursty workloads.
const USAGE_HISTORY_CAP: usize = 16;

impl Extent {
    pub fn new(capacity: usize, now: SimInstant) -> Self {
        Extent {
            physical_len: 0,
            capacity,
            slots: Vec::new(),
            state: ExtentState::Open,
            valid_count: 0,
            invalid_count: 0,
            valid_bytes: 0,
            payload_used: 0,
            quarantined: false,
            last_update: now,
            created_at: now,
            usage_history: Vec::new(),
            ttl_deadline: None,
        }
    }

    /// Remaining append capacity in payload bytes.
    pub fn remaining(&self) -> usize {
        self.capacity - self.payload_used as usize
    }

    /// Records a framed append of `len` payload bytes: advances the
    /// physical cursor past header + payload and registers the slot. The
    /// caller has verified the payload fits and writes the actual frame
    /// to the backend at the pre-advance cursor. Returns the payload
    /// offset (cursor + header).
    pub fn push_slot(
        &mut self,
        record: RecordId,
        len: u32,
        tag: u64,
        now: SimInstant,
        expires_at: Option<SimInstant>,
        relocated: bool,
    ) -> u32 {
        debug_assert!(len as usize <= self.remaining());
        let offset = self.physical_len as u32 + FRAME_HEADER_LEN as u32;
        self.physical_len += FRAME_HEADER_LEN as u64 + len as u64;
        self.payload_used += len as u64;
        self.slots.push(RecordSlot {
            record,
            offset,
            len,
            valid: true,
            relocated,
            tag,
        });
        self.valid_count += 1;
        self.valid_bytes += len as u64;
        self.last_update = now;
        if let Some(deadline) = expires_at {
            // The extent expires when its newest record expires: timestamps
            // within an extent are near-identical at ByteDance scale (§3.3),
            // so the max is a tight bound.
            self.ttl_deadline = Some(match self.ttl_deadline {
                Some(existing) => existing.max(deadline),
                None => deadline,
            });
        }
        offset
    }

    /// Marks the slot at `offset` invalid. Returns `None` if it was already
    /// invalid or unknown; otherwise `Some(bytes_wasted)` where the value is
    /// the record length if it had been written by relocation (wasted
    /// background I/O) and 0 otherwise.
    pub fn invalidate(&mut self, offset: u32, now: SimInstant) -> Option<u64> {
        // Slots are appended in strictly increasing offset order.
        let Ok(idx) = self.slots.binary_search_by_key(&offset, |s| s.offset) else {
            return None;
        };
        let slot = &mut self.slots[idx];
        if !slot.valid {
            return None;
        }
        slot.valid = false;
        self.valid_count -= 1;
        self.invalid_count += 1;
        self.valid_bytes -= slot.len as u64;
        self.last_update = now;
        if self.usage_history.len() == USAGE_HISTORY_CAP {
            self.usage_history.remove(0);
        }
        self.usage_history.push(UsageSample {
            at: now,
            invalid: self.invalid_count,
        });
        let slot = &self.slots[idx];
        Some(if slot.relocated { slot.len as u64 } else { 0 })
    }

    /// Fragmentation rate: invalid records over total records. An extent with
    /// no records is 0.0 (nothing to reclaim).
    pub fn fragmentation_rate(&self) -> f64 {
        let total = self.valid_count + self.invalid_count;
        if total == 0 {
            0.0
        } else {
            self.invalid_count as f64 / total as f64
        }
    }

    /// Update gradient: invalidations per simulated second over the window
    /// from the oldest recorded sample to `now` (§3.3:
    /// `(invalid_t1 - invalid_t0) / (t1 - t0)`, evaluated at decision time).
    ///
    /// Measuring against *now* (rather than the last sample) makes the
    /// gradient decay once an extent stops receiving invalidations — an
    /// extent that churned heavily last week but is quiet today is cold,
    /// which is exactly what Fig. 5's Extent C looks like at `t1`.
    pub fn update_gradient(&self, now: SimInstant) -> f64 {
        let (Some(first), Some(last)) = (self.usage_history.first(), self.usage_history.last())
        else {
            return 0.0;
        };
        let di = last.invalid.saturating_sub(first.invalid) as f64;
        let dt = now
            .duration_since(first.at)
            .max(last.at.duration_since(first.at));
        if dt == 0 {
            // A burst of invalidations within one instant is "infinitely hot"
            // relative to the window, but only if something actually changed.
            return if di > 0.0 { f64::INFINITY } else { 0.0 };
        }
        di / (dt as f64 / 1e9)
    }

    /// Produces the public snapshot GC policies consume, evaluated at `now`.
    pub fn info(
        &self,
        id: crate::addr::ExtentId,
        stream: crate::addr::StreamId,
        now: SimInstant,
    ) -> ExtentInfo {
        ExtentInfo {
            id,
            stream,
            state: self.state,
            quarantined: self.quarantined,
            valid_records: self.valid_count,
            invalid_records: self.invalid_count,
            valid_bytes: self.valid_bytes,
            capacity: self.capacity as u64,
            used_bytes: self.payload_used,
            fragmentation_rate: self.fragmentation_rate(),
            update_gradient: self.update_gradient(now),
            last_update: self.last_update,
            created_at: self.created_at,
            ttl_deadline: self.ttl_deadline,
        }
    }
}

/// Public, policy-facing view of one extent's usage tracking data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtentInfo {
    /// Extent identity.
    pub id: crate::addr::ExtentId,
    /// Stream the extent belongs to.
    pub stream: crate::addr::StreamId,
    /// Lifecycle state.
    pub state: ExtentState,
    /// Scrubbing found corruption; the extent is read-fenced and must be
    /// repaired (not relocated or expired) before its space is reclaimed.
    pub quarantined: bool,
    /// Records still valid.
    pub valid_records: u64,
    /// Records invalidated by out-of-place updates/deletes.
    pub invalid_records: u64,
    /// Bytes still valid (these are what relocation must rewrite).
    pub valid_bytes: u64,
    /// Extent capacity in bytes.
    pub capacity: u64,
    /// Bytes appended so far.
    pub used_bytes: u64,
    /// invalid / (valid + invalid).
    pub fragmentation_rate: f64,
    /// Invalidations per simulated second (0.0 = cold).
    pub update_gradient: f64,
    /// Timestamp of the most recent append or invalidation.
    pub last_update: SimInstant,
    /// When the extent was opened.
    pub created_at: SimInstant,
    /// If set, every record in the extent is dead once this instant passes.
    pub ttl_deadline: Option<SimInstant>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ExtentId, StreamId};
    use crate::frame::FRAME_HEADER_LEN;

    fn ext() -> Extent {
        Extent::new(1024, SimInstant(0))
    }

    #[test]
    fn push_tracks_counts_and_bytes() {
        let mut e = ext();
        let off0 = e.push_slot(RecordId(0), 5, 1, SimInstant(10), None, false);
        let off1 = e.push_slot(RecordId(1), 6, 2, SimInstant(20), None, false);
        // Offsets point at payloads; each is preceded by its frame header.
        assert_eq!(off0, FRAME_HEADER_LEN as u32);
        assert_eq!(off1, 2 * FRAME_HEADER_LEN as u32 + 5);
        assert_eq!(e.valid_count, 2);
        assert_eq!(e.valid_bytes, 11);
        assert_eq!(e.remaining(), 1024 - 11);
        assert_eq!(e.last_update, SimInstant(20));
    }

    #[test]
    fn invalidate_flips_exactly_once() {
        let mut e = ext();
        let off = e.push_slot(RecordId(0), 3, 0, SimInstant(0), None, false);
        assert!(e.invalidate(off, SimInstant(5)).is_some());
        assert!(
            e.invalidate(off, SimInstant(6)).is_none(),
            "double invalidation"
        );
        assert!(e.invalidate(999, SimInstant(7)).is_none(), "unknown offset");
        assert_eq!(e.valid_count, 0);
        assert_eq!(e.invalid_count, 1);
        assert_eq!(e.valid_bytes, 0);
    }

    #[test]
    fn fragmentation_rate_matches_paper_example() {
        // Fig. 5: extents A and B with 3 invalid out of 5 → 3/5.
        let mut e = ext();
        let offs: Vec<u32> = (0..5)
            .map(|i| e.push_slot(RecordId(i), 1, 0, SimInstant(0), None, false))
            .collect();
        for &o in &offs[..3] {
            e.invalidate(o, SimInstant(1));
        }
        assert!((e.fragmentation_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn update_gradient_matches_paper_example() {
        // Fig. 5: Extent A has 1 invalid page at t0 and 3 at t1 → (3-1)/(t1-t0).
        let mut e = ext();
        let offs: Vec<u32> = (0..5)
            .map(|i| e.push_slot(RecordId(i), 1, 0, SimInstant(0), None, false))
            .collect();
        let t0 = SimInstant(1_000_000_000); // 1s
        let t1 = SimInstant(3_000_000_000); // 3s
        e.invalidate(offs[0], t0);
        e.invalidate(offs[1], t1);
        e.invalidate(offs[2], t1);
        // From (t0, 1) to (t1, 3): gradient = 2 invalidations / 2 seconds.
        assert!((e.update_gradient(t1) - 1.0).abs() < 1e-9);
        // Evaluated much later with no new invalidations, the extent cools.
        assert!(e.update_gradient(SimInstant(21_000_000_000)) < 0.2);
    }

    #[test]
    fn gradient_of_cold_extent_is_zero() {
        let mut e = ext();
        let off = e.push_slot(RecordId(0), 1, 0, SimInstant(0), None, false);
        assert_eq!(e.update_gradient(SimInstant(0)), 0.0);
        // One sample only: still zero.
        e.invalidate(off, SimInstant(10));
        assert_eq!(e.update_gradient(SimInstant(10)), 0.0);
    }

    #[test]
    fn gradient_burst_at_same_instant_is_infinite() {
        let mut e = ext();
        let offs: Vec<u32> = (0..3)
            .map(|i| e.push_slot(RecordId(i), 1, 0, SimInstant(0), None, false))
            .collect();
        for &o in &offs {
            e.invalidate(o, SimInstant(42));
        }
        assert!(e.update_gradient(SimInstant(42)).is_infinite());
        // The same burst, judged one second later, has cooled off.
        assert!(e.update_gradient(SimInstant(1_000_000_042)).is_finite());
    }

    #[test]
    fn ttl_deadline_takes_newest_record() {
        let mut e = ext();
        e.push_slot(
            RecordId(0),
            1,
            0,
            SimInstant(0),
            Some(SimInstant(100)),
            false,
        );
        e.push_slot(
            RecordId(1),
            1,
            0,
            SimInstant(1),
            Some(SimInstant(50)),
            false,
        );
        assert_eq!(e.ttl_deadline, Some(SimInstant(100)));
        e.push_slot(
            RecordId(2),
            1,
            0,
            SimInstant(2),
            Some(SimInstant(200)),
            false,
        );
        assert_eq!(e.ttl_deadline, Some(SimInstant(200)));
    }

    #[test]
    fn usage_history_is_bounded() {
        let mut e = Extent::new(1 << 16, SimInstant(0));
        let offs: Vec<u32> = (0..64)
            .map(|i| e.push_slot(RecordId(i), 1, 0, SimInstant(0), None, false))
            .collect();
        for (i, &o) in offs.iter().enumerate() {
            e.invalidate(o, SimInstant(i as u64 + 1));
        }
        assert_eq!(e.usage_history.len(), USAGE_HISTORY_CAP);
        // Oldest retained sample is the (64 - 16 + 1)-th invalidation.
        assert_eq!(
            e.usage_history[0].invalid,
            64 - USAGE_HISTORY_CAP as u64 + 1
        );
    }

    #[test]
    fn info_snapshot_is_consistent() {
        let mut e = ext();
        let off = e.push_slot(
            RecordId(0),
            4,
            7,
            SimInstant(3),
            Some(SimInstant(99)),
            false,
        );
        e.invalidate(off, SimInstant(4));
        let info = e.info(ExtentId(5), StreamId::DELTA, SimInstant(4));
        assert_eq!(info.id, ExtentId(5));
        assert_eq!(info.stream, StreamId::DELTA);
        assert_eq!(info.valid_records, 0);
        assert_eq!(info.invalid_records, 1);
        assert_eq!(info.ttl_deadline, Some(SimInstant(99)));
        assert_eq!(info.fragmentation_rate, 1.0);
    }
}
