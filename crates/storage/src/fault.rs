//! Deterministic fault injection for the shared store.
//!
//! BG3's durability machinery (WAL-through-shared-storage, multi-version
//! mapping publishes, crash recovery) is only meaningful if the storage
//! substrate can *fail*. This module makes it fail on demand, and —
//! critically for reproducibility — *deterministically*:
//!
//! * a [`FaultPlan`] is a seed plus a list of [`FaultRule`]s;
//! * whether the rule fires at the *n*-th operation of its class is a pure
//!   function of `(seed, rule index, n)` — no wall clock, no global RNG —
//!   so the same plan produces the same fault schedule on every run;
//! * with an empty plan ([`FaultPlan::none`]) the injector is a single
//!   branch per operation: counters are not even incremented, keeping every
//!   no-fault experiment byte-identical to a build without the layer.
//!
//! The module also provides the two consumers of injected failures:
//! [`RetryPolicy`] (bounded retries with simulated-clock backoff, used by
//! the Bw-tree flush path, forest split-out, GC relocation, and WAL
//! append), and [`CrashPoint`]/[`CrashSwitch`] (named kill points the chaos
//! harness arms to stop an engine mid-protocol and exercise recovery).

use crate::addr::StreamId;
use crate::clock::SimClock;
use crate::error::{StorageOp, StorageResult};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The append fails outright; nothing reaches the store.
    AppendFail,
    /// The append writes its bytes (space is consumed at the tail) but the
    /// record is left invalid and the call errors — a torn tail write.
    AppendTorn,
    /// The random read fails.
    ReadFail,
    /// The operation succeeds but charges extra simulated latency.
    Delay {
        /// Extra simulated nanoseconds charged to the clock.
        nanos: u64,
    },
    /// The mapping-table publish is silently dropped: readers keep seeing
    /// the previous version. Models a lost metadata-service RPC.
    PublishDrop,
    /// Silent corruption: one bit of the stored record is flipped *in
    /// place* before the read is served. The call succeeds; only frame
    /// verification can notice, and the rot persists until repaired.
    ReadBitFlip,
    /// Silent misdirection: the read returns a frame whose checksum is
    /// internally valid but which belongs to a *different* record — a
    /// stale replica or a misdirected block. Caught by record binding.
    ReadStale,
    /// Silent truncation: the read returns fewer bytes than addressed.
    /// Transient — the stored bytes are intact.
    ReadShort,
    /// The durability barrier (fsync/fdatasync or seal) fails with EIO.
    /// Errno-level: injected by [`crate::FaultBackend`] *below* the store,
    /// so the fail-closed poisoning path is exercised on both backends.
    SyncFail,
    /// The physical backend write fails with ENOSPC; nothing is written.
    WriteNoSpace,
    /// The physical backend write lands a prefix of its bytes and then
    /// fails — a torn write at the media level (short write + error).
    WriteShortTorn,
    /// The physical backend read fails with EIO.
    ReadEio,
    /// The disk enters a *sticky* full regime: this write and every later
    /// write or allocation fails ENOSPC until space is reclaimed (an
    /// extent delete reaches the backend).
    DiskFull,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::AppendFail => write!(f, "append-fail"),
            FaultKind::AppendTorn => write!(f, "append-torn"),
            FaultKind::ReadFail => write!(f, "read-fail"),
            FaultKind::Delay { nanos } => write!(f, "delay({nanos}ns)"),
            FaultKind::PublishDrop => write!(f, "publish-drop"),
            FaultKind::ReadBitFlip => write!(f, "read-bit-flip"),
            FaultKind::ReadStale => write!(f, "read-stale"),
            FaultKind::ReadShort => write!(f, "read-short"),
            FaultKind::SyncFail => write!(f, "sync-fail"),
            FaultKind::WriteNoSpace => write!(f, "write-no-space"),
            FaultKind::WriteShortTorn => write!(f, "write-short-torn"),
            FaultKind::ReadEio => write!(f, "read-eio"),
            FaultKind::DiskFull => write!(f, "disk-full"),
        }
    }
}

/// The operation class a [`FaultRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Stream appends ([`FaultKind::AppendFail`], [`FaultKind::AppendTorn`],
    /// [`FaultKind::Delay`]).
    Append,
    /// Random reads ([`FaultKind::ReadFail`], [`FaultKind::Delay`]).
    Read,
    /// Mapping-table publishes ([`FaultKind::PublishDrop`],
    /// [`FaultKind::Delay`]).
    MappingPublish,
    /// Backend durability barriers — `sync` and `seal` calls
    /// ([`FaultKind::SyncFail`]). Errno-level: drawn by
    /// [`crate::FaultBackend`], not by the store.
    Sync,
    /// Physical backend writes ([`FaultKind::WriteNoSpace`],
    /// [`FaultKind::WriteShortTorn`], [`FaultKind::DiskFull`]).
    BackendWrite,
    /// Physical backend positioned reads ([`FaultKind::ReadEio`]).
    BackendRead,
}

impl FaultOp {
    const ALL: [FaultOp; 6] = [
        FaultOp::Append,
        FaultOp::Read,
        FaultOp::MappingPublish,
        FaultOp::Sync,
        FaultOp::BackendWrite,
        FaultOp::BackendRead,
    ];

    fn index(self) -> usize {
        match self {
            FaultOp::Append => 0,
            FaultOp::Read => 1,
            FaultOp::MappingPublish => 2,
            FaultOp::Sync => 3,
            FaultOp::BackendWrite => 4,
            FaultOp::BackendRead => 5,
        }
    }
}

/// One injection rule: fire `kind` on `op` with `probability`, optionally
/// restricted to a stream, an operation-index window, and a fire budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Operation class the rule watches.
    pub op: FaultOp,
    /// Restrict to one stream (`None` = all streams / not stream-scoped).
    pub stream: Option<StreamId>,
    /// Fault to produce when the rule fires.
    pub kind: FaultKind,
    /// Per-operation fire probability in `[0, 1]`.
    pub probability: f64,
    /// Operations with index below this never fire (lets workloads warm up).
    pub after_op: u64,
    /// Maximum number of times the rule fires (`u64::MAX` = unbounded).
    pub max_fires: u64,
}

impl FaultRule {
    /// Rule firing `kind` on every matching `op` with `probability`.
    pub fn new(op: FaultOp, kind: FaultKind, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability out of [0,1]"
        );
        FaultRule {
            op,
            stream: None,
            kind,
            probability,
            after_op: 0,
            max_fires: u64::MAX,
        }
    }

    /// Restricts the rule to `stream`.
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Skips the first `n` matching operations.
    pub fn after(mut self, n: u64) -> Self {
        self.after_op = n;
        self
    }

    /// Caps the number of fires.
    pub fn at_most(mut self, fires: u64) -> Self {
        self.max_fires = fires;
        self
    }

    /// Pure decision: does this rule (ignoring its fire budget) fire at
    /// operation index `op_index` under `seed` as rule number `rule_index`?
    fn fires_at(&self, seed: u64, rule_index: usize, op_index: u64) -> bool {
        if op_index < self.after_op {
            return false;
        }
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        let h = splitmix64(
            seed ^ (rule_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ op_index.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        // Map the hash to [0, 1) with 53 bits of precision.
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.probability
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, declarative fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed all per-operation decisions derive from.
    pub seed: u64,
    /// Rules evaluated in order; the first match wins.
    pub rules: Vec<FaultRule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: never injects anything, and costs one branch per
    /// operation.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rules: Vec::new(),
        }
    }

    /// An empty plan carrying `seed`, ready for `with_rule` chaining.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Convenience: fail appends with `probability`.
    pub fn fail_appends(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Append,
            FaultKind::AppendFail,
            probability,
        ))
    }

    /// Convenience: tear the tail of appends with `probability`.
    pub fn tear_appends(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Append,
            FaultKind::AppendTorn,
            probability,
        ))
    }

    /// Convenience: fail reads with `probability`.
    pub fn fail_reads(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ReadFail,
            probability,
        ))
    }

    /// Convenience: delay operations of `op` by `nanos` with `probability`.
    pub fn delay(self, op: FaultOp, nanos: u64, probability: f64) -> Self {
        self.with_rule(FaultRule::new(op, FaultKind::Delay { nanos }, probability))
    }

    /// Convenience: silently flip one stored bit on reads with
    /// `probability` ([`FaultKind::ReadBitFlip`]).
    pub fn flip_reads(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ReadBitFlip,
            probability,
        ))
    }

    /// Convenience: serve stale/misdirected frames on reads with
    /// `probability` ([`FaultKind::ReadStale`]).
    pub fn stale_reads(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ReadStale,
            probability,
        ))
    }

    /// Convenience: truncate reads with `probability`
    /// ([`FaultKind::ReadShort`]).
    pub fn short_reads(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ReadShort,
            probability,
        ))
    }

    /// Convenience: drop mapping publishes with `probability`.
    pub fn drop_publishes(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::MappingPublish,
            FaultKind::PublishDrop,
            probability,
        ))
    }

    /// Convenience: fail backend durability barriers (fsync/seal) with
    /// `probability` ([`FaultKind::SyncFail`]).
    pub fn fail_syncs(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::Sync,
            FaultKind::SyncFail,
            probability,
        ))
    }

    /// Convenience: fail backend writes ENOSPC with `probability`
    /// ([`FaultKind::WriteNoSpace`]).
    pub fn no_space_writes(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::BackendWrite,
            FaultKind::WriteNoSpace,
            probability,
        ))
    }

    /// Convenience: tear backend writes at the media level with
    /// `probability` ([`FaultKind::WriteShortTorn`]).
    pub fn torn_backend_writes(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::BackendWrite,
            FaultKind::WriteShortTorn,
            probability,
        ))
    }

    /// Convenience: fail backend reads EIO with `probability`
    /// ([`FaultKind::ReadEio`]).
    pub fn eio_reads(self, probability: f64) -> Self {
        self.with_rule(FaultRule::new(
            FaultOp::BackendRead,
            FaultKind::ReadEio,
            probability,
        ))
    }

    /// Convenience: arm the sticky disk-full regime on the `n`-th backend
    /// write ([`FaultKind::DiskFull`]); it clears only when reclaim
    /// deletes an extent.
    pub fn disk_full_after(self, n: u64) -> Self {
        self.with_rule(
            FaultRule::new(FaultOp::BackendWrite, FaultKind::DiskFull, 1.0)
                .after(n)
                .at_most(1),
        )
    }

    /// True when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Pure, stateless decision: the fault (if any) for the `op_index`-th
    /// operation of class `op` on `stream`. Ignores fire budgets (which are
    /// runtime state); [`FaultInjector`] applies those on top. Exposed so
    /// tests can check the schedule is a function of the plan alone.
    pub fn decision(
        &self,
        op: FaultOp,
        stream: Option<StreamId>,
        op_index: u64,
    ) -> Option<FaultKind> {
        for (rule_index, rule) in self.rules.iter().enumerate() {
            if rule.op != op {
                continue;
            }
            if let Some(rule_stream) = rule.stream {
                if stream != Some(rule_stream) {
                    continue;
                }
            }
            if rule.fires_at(self.seed, rule_index, op_index) {
                return Some(rule.kind);
            }
        }
        None
    }

    /// The first `n` decisions for `(op, stream)` — the fault schedule.
    pub fn schedule(
        &self,
        op: FaultOp,
        stream: Option<StreamId>,
        n: u64,
    ) -> Vec<Option<FaultKind>> {
        (0..n).map(|i| self.decision(op, stream, i)).collect()
    }
}

struct InjectorInner {
    plan: FaultPlan,
    /// Per-class operation counters (index = FaultOp::index()).
    op_counters: [AtomicU64; 6],
    /// Remaining fire budget per rule.
    budgets: Vec<AtomicU64>,
    /// Total faults fired per class.
    fired: [AtomicU64; 6],
}

/// Runtime fault decisions over a [`FaultPlan`]. Cheap to clone; clones
/// share counters (they model one storage service observed from several
/// handles).
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl FaultInjector {
    /// Injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let budgets = plan
            .rules
            .iter()
            .map(|r| AtomicU64::new(r.max_fires))
            .collect();
        FaultInjector {
            inner: Arc::new(InjectorInner {
                plan,
                op_counters: Default::default(),
                budgets,
                fired: Default::default(),
            }),
        }
    }

    /// Injector that never fires (zero-cost: one branch per operation).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// True when the injector can never fire.
    pub fn is_disabled(&self) -> bool {
        self.inner.plan.is_empty()
    }

    /// Decides the fault (if any) for the next operation of class `op` on
    /// `stream`. With an empty plan this is a single branch — no counter
    /// traffic — so disabled injection cannot perturb timing or stats.
    pub fn decide(&self, op: FaultOp, stream: Option<StreamId>) -> Option<FaultKind> {
        if self.inner.plan.rules.is_empty() {
            return None;
        }
        let op_index = self.inner.op_counters[op.index()].fetch_add(1, Ordering::Relaxed);
        for (rule_index, rule) in self.inner.plan.rules.iter().enumerate() {
            if rule.op != op {
                continue;
            }
            if let Some(rule_stream) = rule.stream {
                if stream != Some(rule_stream) {
                    continue;
                }
            }
            if !rule.fires_at(self.inner.plan.seed, rule_index, op_index) {
                continue;
            }
            // Spend one unit of the rule's fire budget, if any remains.
            let budget = &self.inner.budgets[rule_index];
            let mut remaining = budget.load(Ordering::Relaxed);
            loop {
                if remaining == 0 {
                    break;
                }
                match budget.compare_exchange_weak(
                    remaining,
                    remaining - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.inner.fired[op.index()].fetch_add(1, Ordering::Relaxed);
                        return Some(rule.kind);
                    }
                    Err(actual) => remaining = actual,
                }
            }
        }
        None
    }

    /// Number of operations of class `op` observed so far.
    pub fn observed(&self, op: FaultOp) -> u64 {
        self.inner.op_counters[op.index()].load(Ordering::Relaxed)
    }

    /// Number of faults fired for class `op`.
    pub fn fired(&self, op: FaultOp) -> u64 {
        self.inner.fired[op.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all classes.
    pub fn total_fired(&self) -> u64 {
        FaultOp::ALL.iter().map(|&op| self.fired(op)).sum()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("rules", &self.inner.plan.rules.len())
            .field("seed", &self.inner.plan.seed)
            .field("total_fired", &self.total_fired())
            .finish()
    }
}

/// Bounded-retry policy with exponential simulated-clock backoff.
///
/// Retries only *transient* failures ([`crate::StorageError::is_transient`]):
/// injected append/read faults. Crash-point kills and organic errors
/// propagate immediately.
///
/// Two backoff schedules are available. The default is a fixed schedule —
/// `initial_backoff_nanos` doubling per retry, capped at
/// `max_backoff_nanos`. [`Self::with_decorrelated_jitter`] switches to
/// AWS-style *decorrelated jitter*: each sleep is drawn uniformly from
/// `[initial, prev_sleep * 3]` (capped), which breaks the retry
/// synchronization that fixed schedules create when many shed callers back
/// off at once. The draw uses a deterministic xorshift PRNG seeded by the
/// caller, so simulations stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry; doubles per retry on the
    /// fixed schedule, and is the lower bound of every jittered draw.
    pub initial_backoff_nanos: u64,
    /// Upper bound on a single backoff sleep (both schedules).
    pub max_backoff_nanos: u64,
    /// When set, use decorrelated jitter seeded with this value instead of
    /// the fixed doubling schedule.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff_nanos: 100_000, // 100µs, ~one cloud-storage RTT
            max_backoff_nanos: 100_000_000, // 100ms cap
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// Policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff_nanos: 0,
            max_backoff_nanos: 0,
            jitter_seed: None,
        }
    }

    /// Policy with `max_attempts` total attempts.
    pub fn with_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        self.max_attempts = max_attempts;
        self
    }

    /// Caps any single backoff sleep at `max_backoff_nanos`.
    pub fn with_max_backoff_nanos(mut self, max_backoff_nanos: u64) -> Self {
        self.max_backoff_nanos = max_backoff_nanos;
        self
    }

    /// Switches to the decorrelated-jitter schedule: each sleep is drawn
    /// uniformly from `[initial_backoff_nanos, prev_sleep * 3]`, capped at
    /// `max_backoff_nanos`. `seed` makes the draw sequence deterministic.
    pub fn with_decorrelated_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Runs `operation` under this policy, charging backoff to `clock`
    /// between attempts.
    pub fn run<T>(
        &self,
        clock: &SimClock,
        operation: impl FnMut() -> StorageResult<T>,
    ) -> StorageResult<T> {
        self.run_when(clock, |err| err.is_transient(), operation)
    }

    /// Like [`Self::run`], but retrying whenever `retry_if(err)` holds —
    /// used by read paths that also retry checksum mismatches
    /// ([`crate::StorageError::is_retryable`]).
    pub fn run_when<T>(
        &self,
        clock: &SimClock,
        mut retry_if: impl FnMut(&crate::StorageError) -> bool,
        mut operation: impl FnMut() -> StorageResult<T>,
    ) -> StorageResult<T> {
        let mut schedule = BackoffSchedule::new(self);
        let mut attempt = 1u32;
        loop {
            match operation() {
                Ok(value) => return Ok(value),
                Err(err) if retry_if(&err) && attempt < self.max_attempts => {
                    // A shed carries a floor: sleeping less than the
                    // engine's retry_after hint guarantees another shed.
                    clock.advance_nanos(schedule.next(err.retry_after_nanos()));
                    attempt += 1;
                    bg3_obs::span::charge(bg3_obs::CostDim::Retries, 1);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// The full backoff schedule this policy would produce (one sleep per
    /// retry, `max_attempts - 1` entries). Exposed for tests and for
    /// callers that pace themselves without `run_when`'s loop.
    pub fn backoff_schedule(&self) -> Vec<u64> {
        let mut schedule = BackoffSchedule::new(self);
        (1..self.max_attempts)
            .map(|_| schedule.next(None))
            .collect()
    }
}

/// Iterator state for one `run_when` invocation's backoff sleeps.
struct BackoffSchedule {
    initial: u64,
    cap: u64,
    /// Next fixed-schedule sleep, or previous jittered sleep.
    current: u64,
    /// xorshift64* state when jitter is enabled.
    rng: Option<u64>,
}

impl BackoffSchedule {
    fn new(policy: &RetryPolicy) -> Self {
        BackoffSchedule {
            initial: policy.initial_backoff_nanos,
            cap: policy.max_backoff_nanos,
            current: policy.initial_backoff_nanos,
            // xorshift64* cannot leave state 0; fold the seed into a
            // nonzero constant so seed 0 is valid.
            rng: policy.jitter_seed.map(|seed| seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self, floor_hint: Option<u64>) -> u64 {
        let sleep = match &mut self.rng {
            None => {
                let sleep = self.current.min(self.cap);
                self.current = self.current.saturating_mul(2);
                sleep
            }
            Some(state) => {
                // xorshift64*: fast, deterministic, good enough to spread
                // retry times; not a statistical PRNG requirement.
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                let draw = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                // Uniform in [initial, prev * 3], then capped.
                let hi = self.current.saturating_mul(3).min(self.cap);
                let lo = self.initial.min(hi);
                let span = hi - lo;
                let sleep = if span == 0 {
                    lo
                } else {
                    lo + draw % (span + 1)
                };
                self.current = sleep.max(self.initial);
                sleep
            }
        };
        // An Overloaded shed's retry_after is a floor, not a suggestion.
        sleep
            .max(floor_hint.unwrap_or(0))
            .min(self.cap.max(floor_hint.unwrap_or(0)))
    }
}

/// A named place in the write path where the chaos harness can kill the
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Inside a checkpoint's dirty-page flush loop: some pages flushed,
    /// nothing published.
    MidFlush,
    /// Inside a forest split-out: entries copied to the dedicated tree, the
    /// split-out record not yet logged.
    MidSplit,
    /// Inside a GC cycle: an extent relocated, the mapping repairs not yet
    /// republished.
    MidGcCycle,
    /// Inside a group commit: dirty pages flushed, the checkpoint record
    /// and mapping publish not yet issued.
    MidGroupCommit,
}

impl CrashPoint {
    /// All named crash points.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::MidFlush,
        CrashPoint::MidSplit,
        CrashPoint::MidGcCycle,
        CrashPoint::MidGroupCommit,
    ];

    /// The storage operation a kill at this point is reported under.
    pub fn op(self) -> StorageOp {
        match self {
            CrashPoint::MidFlush | CrashPoint::MidGroupCommit => StorageOp::Append,
            CrashPoint::MidSplit => StorageOp::Append,
            CrashPoint::MidGcCycle => StorageOp::Relocate,
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrashPoint::MidFlush => "mid-flush",
            CrashPoint::MidSplit => "mid-split",
            CrashPoint::MidGcCycle => "mid-gc-cycle",
            CrashPoint::MidGroupCommit => "mid-group-commit",
        };
        f.write_str(name)
    }
}

/// Shared switchboard of armed crash points. Engine code calls
/// [`CrashSwitch::fire`] at each named point; the harness arms points and
/// observes the resulting [`crate::ErrorKind::Crash`] error. Each armed
/// point fires exactly once (firing disarms it), so recovery and the
/// restarted engine run fault-free.
#[derive(Clone, Default)]
pub struct CrashSwitch {
    armed: Arc<Mutex<HashSet<CrashPoint>>>,
}

impl CrashSwitch {
    /// A switchboard with nothing armed.
    pub fn new() -> Self {
        CrashSwitch::default()
    }

    /// Arms `point`: the next [`Self::fire`] for it returns the crash error.
    pub fn arm(&self, point: CrashPoint) {
        self.armed.lock().insert(point);
    }

    /// Disarms `point` without firing.
    pub fn disarm(&self, point: CrashPoint) {
        self.armed.lock().remove(&point);
    }

    /// True when `point` is armed.
    pub fn is_armed(&self, point: CrashPoint) -> bool {
        self.armed.lock().contains(&point)
    }

    /// Kills the caller if `point` is armed (disarming it), else succeeds.
    pub fn fire(&self, point: CrashPoint) -> StorageResult<()> {
        if self.armed.lock().remove(&point) {
            Err(crate::StorageError::crash(point))
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for CrashSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrashSwitch")
            .field("armed", &self.armed.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn empty_plan_never_fires() {
        let injector = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(injector.decide(FaultOp::Append, Some(StreamId::BASE)), None);
        }
        assert_eq!(injector.observed(FaultOp::Append), 0, "no counter traffic");
        assert_eq!(injector.total_fired(), 0);
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let plan = FaultPlan::seeded(42).fail_appends(0.3).fail_reads(0.1);
        let a = plan.schedule(FaultOp::Append, Some(StreamId::BASE), 500);
        let b = plan.schedule(FaultOp::Append, Some(StreamId::BASE), 500);
        assert_eq!(a, b);
        assert!(a.iter().any(|d| d.is_some()), "p=0.3 over 500 ops fires");
        assert!(a.iter().any(|d| d.is_none()));

        // A different seed yields a different schedule.
        let other = FaultPlan::seeded(43).fail_appends(0.3).fail_reads(0.1);
        assert_ne!(
            a,
            other.schedule(FaultOp::Append, Some(StreamId::BASE), 500)
        );
    }

    #[test]
    fn injector_follows_the_pure_schedule() {
        let plan = FaultPlan::seeded(7).fail_appends(0.25);
        let injector = FaultInjector::new(plan.clone());
        for i in 0..300 {
            let live = injector.decide(FaultOp::Append, Some(StreamId::DELTA));
            assert_eq!(
                live,
                plan.decision(FaultOp::Append, Some(StreamId::DELTA), i)
            );
        }
        assert_eq!(injector.observed(FaultOp::Append), 300);
    }

    #[test]
    fn stream_scoping_and_windows_apply() {
        let rule = FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0)
            .on_stream(StreamId::WAL)
            .after(10);
        let plan = FaultPlan::seeded(1).with_rule(rule);
        assert_eq!(
            plan.decision(FaultOp::Append, Some(StreamId::BASE), 50),
            None
        );
        assert_eq!(plan.decision(FaultOp::Append, Some(StreamId::WAL), 5), None);
        assert_eq!(
            plan.decision(FaultOp::Append, Some(StreamId::WAL), 10),
            Some(FaultKind::AppendFail)
        );
    }

    #[test]
    fn backend_op_classes_schedule_independently_of_store_classes() {
        let plan = FaultPlan::seeded(9)
            .fail_syncs(0.5)
            .no_space_writes(0.2)
            .eio_reads(0.2);
        // Errno-level rules never bleed into the store-level classes.
        assert!(plan
            .schedule(FaultOp::Append, None, 64)
            .iter()
            .all(|d| d.is_none()));
        let syncs = plan.schedule(FaultOp::Sync, None, 64);
        assert!(syncs.contains(&Some(FaultKind::SyncFail)));
        assert_eq!(syncs, plan.schedule(FaultOp::Sync, None, 64));

        // The sticky disk-full rule arms exactly once, at its window.
        let injector = FaultInjector::new(FaultPlan::seeded(1).disk_full_after(5));
        let fires: Vec<bool> = (0..10)
            .map(|_| injector.decide(FaultOp::BackendWrite, None).is_some())
            .collect();
        assert_eq!(fires.iter().filter(|f| **f).count(), 1);
        assert!(fires[5], "disk-full must arm at the configured write");
    }

    #[test]
    fn fire_budget_caps_injections() {
        let rule = FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 1.0).at_most(3);
        let injector = FaultInjector::new(FaultPlan::seeded(1).with_rule(rule));
        let fired = (0..100)
            .filter(|_| injector.decide(FaultOp::Read, None).is_some())
            .count();
        assert_eq!(fired, 3);
        assert_eq!(injector.fired(FaultOp::Read), 3);
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        let clock = SimClock::new();
        let mut failures_left = 2;
        let result = RetryPolicy::default().run(&clock, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(crate::StorageError::injected(
                    StorageOp::Append,
                    FaultKind::AppendFail,
                ))
            } else {
                Ok(99)
            }
        });
        assert_eq!(result.unwrap(), 99);
        // Two backoffs: 100µs + 200µs.
        assert_eq!(clock.now().as_micros(), 300);
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let clock = SimClock::new();
        let mut attempts = 0;
        let result: StorageResult<()> = RetryPolicy::default().with_attempts(3).run(&clock, || {
            attempts += 1;
            Err(crate::StorageError::injected(
                StorageOp::Read,
                FaultKind::ReadFail,
            ))
        });
        assert_eq!(attempts, 3);
        assert!(matches!(
            result.unwrap_err().kind,
            ErrorKind::Injected(FaultKind::ReadFail)
        ));
    }

    #[test]
    fn retry_policy_does_not_retry_crashes_or_organic_errors() {
        let clock = SimClock::new();
        let mut attempts = 0;
        let result: StorageResult<()> = RetryPolicy::default().run(&clock, || {
            attempts += 1;
            Err(crate::StorageError::crash(CrashPoint::MidFlush))
        });
        assert_eq!(attempts, 1, "crash must propagate on first attempt");
        assert!(result.unwrap_err().is_crash());
        assert_eq!(clock.now().as_micros(), 0, "no backoff charged");
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_decorrelated() {
        let policy = RetryPolicy::default()
            .with_attempts(8)
            .with_decorrelated_jitter(7);
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        assert_eq!(a, b, "same seed must replay the same sleeps");
        assert_eq!(a.len(), 7);
        for &sleep in &a {
            assert!(sleep >= policy.initial_backoff_nanos, "floor is initial");
            assert!(sleep <= policy.max_backoff_nanos, "cap holds");
        }
        // A different seed decorrelates the sleeps.
        let other = RetryPolicy::default()
            .with_attempts(8)
            .with_decorrelated_jitter(8)
            .backoff_schedule();
        assert_ne!(a, other);
        // The fixed schedule stays what it always was: doubling, capped.
        let fixed = RetryPolicy::default()
            .with_attempts(5)
            .with_max_backoff_nanos(350_000)
            .backoff_schedule();
        assert_eq!(fixed, vec![100_000, 200_000, 350_000, 350_000]);
    }

    #[test]
    fn overloaded_retry_after_floors_the_backoff_sleep() {
        let clock = SimClock::new();
        let mut failures_left = 1;
        let policy = RetryPolicy::default().with_decorrelated_jitter(3);
        let result = policy.run_when(
            &clock,
            |err| err.is_retryable(),
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    // retry_after far above the jitter range.
                    Err(crate::StorageError::overloaded(900_000_000))
                } else {
                    Ok(1)
                }
            },
        );
        assert_eq!(result.unwrap(), 1);
        assert!(
            clock.now().0 >= 900_000_000,
            "slept only {}ns; the shed's retry_after floor was ignored",
            clock.now().0
        );
    }

    #[test]
    fn run_when_retries_by_custom_predicate() {
        let clock = SimClock::new();
        let addr = crate::PageAddr {
            stream: StreamId::BASE,
            extent: crate::ExtentId(1),
            offset: 20,
            len: 4,
            record: crate::RecordId(9),
        };
        // `run` would give up immediately on a checksum mismatch...
        let mut attempts = 0;
        let _ = RetryPolicy::default().run(&clock, || -> StorageResult<()> {
            attempts += 1;
            Err(crate::StorageError::checksum_mismatch(
                StorageOp::Read,
                addr,
            ))
        });
        assert_eq!(attempts, 1);
        // ...while `run_when(is_retryable)` keeps trying.
        let mut failures_left = 2;
        let result = RetryPolicy::default().run_when(
            &clock,
            |e| e.is_retryable(),
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(crate::StorageError::checksum_mismatch(
                        StorageOp::Read,
                        addr,
                    ))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(result.unwrap(), 7);
    }

    #[test]
    fn crash_switch_fires_exactly_once() {
        let switch = CrashSwitch::new();
        assert!(switch.fire(CrashPoint::MidSplit).is_ok(), "disarmed");
        switch.arm(CrashPoint::MidSplit);
        assert!(switch.is_armed(CrashPoint::MidSplit));
        let err = switch.fire(CrashPoint::MidSplit).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Crash(CrashPoint::MidSplit)));
        assert!(
            switch.fire(CrashPoint::MidSplit).is_ok(),
            "firing disarms the point"
        );
    }

    #[test]
    fn crash_switch_clones_share_arming() {
        let switch = CrashSwitch::new();
        let peer = switch.clone();
        switch.arm(CrashPoint::MidGcCycle);
        assert!(peer.fire(CrashPoint::MidGcCycle).is_err());
    }
}
