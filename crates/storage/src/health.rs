//! Disk-health tracking for ENOSPC graceful degradation.
//!
//! The store distills every backend outcome into one gauge —
//! [`bg3_obs::names::DISK_HEALTH`] — that the governed engine polls before
//! admitting writes. The ladder:
//!
//! ```text
//!   Ok ──ENOSPC──▶ Full ──reclaim frees space──▶ NearFull ──write ok──▶ Ok
//!    │                                                │
//!    └──────────────failed fsync/seal────────────────▶ Poisoned (absorbing)
//! ```
//!
//! * **Full**: a backend write or allocation failed with
//!   [`crate::IoErrorClass::NoSpace`]. Writes must shed; reads, traversals
//!   and GC keep running — GC is the recovery path.
//! * **NearFull**: reclaim deleted an extent after a full episode, but no
//!   write has proven the disk writable yet. Writes are admitted again
//!   (they are the proof).
//! * **Poisoned**: a durability barrier failed (fsyncgate). Absorbing: no
//!   runtime transition clears it; only a fresh store open — which
//!   re-derives durability from on-disk frames — starts back at Ok.

use bg3_obs::{names, Gauge, MetricRegistry};
use std::sync::atomic::{AtomicU8, Ordering};

/// Coarse health of the disk under the store, exported as a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskHealth {
    /// Writes flow normally.
    Ok,
    /// Space was reclaimed after a full episode; the next successful
    /// durable write confirms recovery.
    NearFull,
    /// The disk is out of space: writes shed, reads and reclaim continue.
    Full,
    /// A durability barrier failed; the tail cannot be trusted until the
    /// store is reopened from on-disk frames.
    Poisoned,
}

impl DiskHealth {
    /// The gauge encoding (0..=3, monotone in severity).
    pub fn level(self) -> u8 {
        match self {
            DiskHealth::Ok => 0,
            DiskHealth::NearFull => 1,
            DiskHealth::Full => 2,
            DiskHealth::Poisoned => 3,
        }
    }

    fn from_level(level: u8) -> DiskHealth {
        match level {
            0 => DiskHealth::Ok,
            1 => DiskHealth::NearFull,
            2 => DiskHealth::Full,
            _ => DiskHealth::Poisoned,
        }
    }

    /// True when the governed engine must shed writes at admission.
    pub fn sheds_writes(self) -> bool {
        matches!(self, DiskHealth::Full | DiskHealth::Poisoned)
    }
}

impl std::fmt::Display for DiskHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DiskHealth::Ok => "ok",
            DiskHealth::NearFull => "near-full",
            DiskHealth::Full => "full",
            DiskHealth::Poisoned => "poisoned",
        };
        f.write_str(name)
    }
}

/// Lock-free tracker backing the `disk_health` gauge.
#[derive(Debug)]
pub struct DiskHealthTracker {
    level: AtomicU8,
    gauge: Gauge,
}

impl DiskHealthTracker {
    /// A tracker starting at [`DiskHealth::Ok`], publishing into
    /// `registry`'s `disk_health` gauge.
    pub fn new(registry: &MetricRegistry) -> Self {
        let gauge = registry.gauge(names::DISK_HEALTH);
        gauge.set(0);
        DiskHealthTracker {
            level: AtomicU8::new(0),
            gauge,
        }
    }

    /// Current health.
    pub fn get(&self) -> DiskHealth {
        DiskHealth::from_level(self.level.load(Ordering::Relaxed))
    }

    /// Forces a state (tests and experiments). Note this *can* clear
    /// Poisoned — runtime transitions never do.
    pub fn set(&self, health: DiskHealth) {
        self.level.store(health.level(), Ordering::Relaxed);
        self.gauge.set(health.level() as i64);
    }

    /// A backend write/allocation failed ENOSPC: Ok/NearFull → Full.
    pub fn on_no_space(&self) {
        self.transition(|h| match h {
            DiskHealth::Ok | DiskHealth::NearFull => Some(DiskHealth::Full),
            DiskHealth::Full | DiskHealth::Poisoned => None,
        });
    }

    /// A durability barrier failed: everything → Poisoned (absorbing).
    pub fn on_poisoned(&self) {
        self.transition(|h| match h {
            DiskHealth::Poisoned => None,
            _ => Some(DiskHealth::Poisoned),
        });
    }

    /// Reclaim deleted an extent: Full → NearFull.
    pub fn on_reclaim(&self) {
        self.transition(|h| match h {
            DiskHealth::Full => Some(DiskHealth::NearFull),
            _ => None,
        });
    }

    /// A durable write succeeded: NearFull → Ok.
    pub fn on_durable_write(&self) {
        self.transition(|h| match h {
            DiskHealth::NearFull => Some(DiskHealth::Ok),
            _ => None,
        });
    }

    fn transition(&self, next: impl Fn(DiskHealth) -> Option<DiskHealth>) {
        let mut current = self.level.load(Ordering::Relaxed);
        loop {
            let Some(to) = next(DiskHealth::from_level(current)) else {
                return;
            };
            match self.level.compare_exchange_weak(
                current,
                to.level(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.gauge.set(to.level() as i64);
                    return;
                }
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> (MetricRegistry, DiskHealthTracker) {
        let registry = MetricRegistry::new();
        let tracker = DiskHealthTracker::new(&registry);
        (registry, tracker)
    }

    #[test]
    fn ladder_walks_full_reclaim_near_full_ok() {
        let (registry, t) = tracker();
        assert_eq!(t.get(), DiskHealth::Ok);
        assert!(!t.get().sheds_writes());

        t.on_no_space();
        assert_eq!(t.get(), DiskHealth::Full);
        assert!(t.get().sheds_writes());
        // Reclaim is the only way down from Full.
        t.on_durable_write();
        assert_eq!(t.get(), DiskHealth::Full);

        t.on_reclaim();
        assert_eq!(t.get(), DiskHealth::NearFull);
        assert!(!t.get().sheds_writes(), "writes prove recovery");
        // A repeat ENOSPC during NearFull goes straight back to Full.
        t.on_no_space();
        assert_eq!(t.get(), DiskHealth::Full);
        t.on_reclaim();

        t.on_durable_write();
        assert_eq!(t.get(), DiskHealth::Ok);
        assert_eq!(registry.snapshot().gauge(names::DISK_HEALTH), Some(0));
    }

    #[test]
    fn poisoned_is_absorbing_for_runtime_transitions() {
        let (registry, t) = tracker();
        t.on_poisoned();
        assert_eq!(t.get(), DiskHealth::Poisoned);
        assert!(t.get().sheds_writes());
        t.on_reclaim();
        t.on_durable_write();
        t.on_no_space();
        assert_eq!(t.get(), DiskHealth::Poisoned, "nothing clears poison");
        assert_eq!(registry.snapshot().gauge(names::DISK_HEALTH), Some(3));
        // Except an explicit reset — the fresh-open path.
        t.set(DiskHealth::Ok);
        assert_eq!(t.get(), DiskHealth::Ok);
    }
}
