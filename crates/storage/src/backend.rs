//! Pluggable extent byte storage: the seam between the store's metadata
//! plane and the bytes' physical home.
//!
//! [`crate::AppendOnlyStore`] owns every piece of *logical* state — slot
//! tables, extent lifecycle, usage tracking, fault injection, the page
//! cache — but delegates the raw bytes to an [`ExtentBackend`]. Two
//! implementations ship:
//!
//! - [`SimBackend`]: in-memory `Vec<u8>` per extent, the deterministic CI
//!   mode. Semantics are identical to the pre-trait store.
//! - [`crate::FileBackend`]: one file per extent with positioned
//!   reads/writes and a real fsync discipline, for experiments on an
//!   actual filesystem.
//!
//! The contract both must satisfy (enforced by the backend-conformance
//! suite in `tests/backend_conformance.rs`):
//!
//! 1. **Append-only writes.** The store only ever writes at the current
//!    tail cursor of an open extent; backends may rely on this for layout
//!    but must still honor arbitrary offsets (repair tooling).
//! 2. **Read-your-writes.** `read_at` returns exactly the bytes of every
//!    completed `write_at`, with no caching allowed to reorder them.
//! 3. **Fsync ordering.** `seal` implies `sync`: after `seal` returns, the
//!    extent's bytes (and, for real backends, its directory entry and
//!    sealed marker) survive a crash. `sync` alone makes bytes durable
//!    without freezing the extent.
//! 4. **Fail closed.** Errors surface as [`StorageError`] (real backends
//!    map `std::io::Error` via [`StorageError::io`]); a failed write must
//!    never leave the backend claiming a longer extent than it can serve.
//! 5. **Stable corruption.** [`ExtentBackend::corrupt_bit`] flips one
//!    stored bit in place so a re-read observes the same damage until the
//!    scrubber repairs the extent — this is how at-rest rot is modelled
//!    uniformly across sim and disk.

use crate::addr::{ExtentId, StreamId};
use crate::error::{StorageError, StorageOp, StorageResult};
use bg3_obs::{names, Counter, MetricRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Which [`ExtentBackend`] a store should own, threaded through
/// [`crate::StoreConfig`] (and `Bg3Config` above it) so every subsystem —
/// WAL, GC, scrubber, failover — runs unchanged against either.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory simulated backend (deterministic; the CI default).
    #[default]
    Sim,
    /// File-backed extents rooted at `root` (one file per extent).
    File {
        /// Directory that holds one subdirectory per stream.
        root: PathBuf,
    },
}

impl BackendKind {
    /// Instantiates the backend. Creating a [`BackendKind::File`] backend
    /// touches the filesystem and can fail; `Sim` never does.
    pub fn create(&self) -> StorageResult<Arc<dyn ExtentBackend>> {
        match self {
            BackendKind::Sim => Ok(Arc::new(SimBackend::new())),
            BackendKind::File { root } => {
                Ok(Arc::new(crate::file_backend::FileBackend::open(root)?))
            }
        }
    }
}

/// One extent discovered by [`ExtentBackend::list_extents`] during store
/// bootstrap (crash recovery for real backends, reattach for shared sim
/// backends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedExtent {
    /// Stream the extent belongs to.
    pub stream: StreamId,
    /// Extent identity.
    pub extent: ExtentId,
    /// Physical length in bytes (frame headers included).
    pub len: u64,
    /// True when the backend recorded a durable seal for the extent.
    pub sealed: bool,
}

/// Physical-I/O counters a backend feeds into the store's existing
/// [`crate::IoStats`] registry (same `--metrics-json` surface, stable
/// names from [`bg3_obs::names`]). Cheap to clone: counter handles are
/// `Arc`-backed atomics.
#[derive(Debug, Clone)]
pub struct BackendStats {
    writes: Counter,
    bytes_written: Counter,
    reads: Counter,
    bytes_read: Counter,
    syncs: Counter,
    seals: Counter,
    deletes: Counter,
}

impl BackendStats {
    /// Registers (or re-resolves) the backend counters in `registry`.
    pub fn register(registry: &MetricRegistry) -> Self {
        BackendStats {
            writes: registry.counter(names::BACKEND_WRITES_TOTAL),
            bytes_written: registry.counter(names::BACKEND_BYTES_WRITTEN_TOTAL),
            reads: registry.counter(names::BACKEND_READS_TOTAL),
            bytes_read: registry.counter(names::BACKEND_BYTES_READ_TOTAL),
            syncs: registry.counter(names::BACKEND_SYNCS_TOTAL),
            seals: registry.counter(names::BACKEND_SEALS_TOTAL),
            deletes: registry.counter(names::BACKEND_DELETES_TOTAL),
        }
    }

    /// Records one physical write of `len` bytes.
    pub fn record_write(&self, len: usize) {
        self.writes.inc();
        self.bytes_written.add(len as u64);
    }

    /// Records one physical positioned read returning `len` bytes.
    pub fn record_read(&self, len: usize) {
        self.reads.inc();
        self.bytes_read.add(len as u64);
    }

    /// Records one durability barrier.
    pub fn record_sync(&self) {
        self.syncs.inc();
    }

    /// Records one durable seal.
    pub fn record_seal(&self) {
        self.seals.inc();
    }

    /// Records one extent deletion.
    pub fn record_delete(&self) {
        self.deletes.inc();
    }
}

/// Latest-wins holder for the stats hook: a backend shared by several
/// stores (replica topologies, recovery conformance tests) reports into
/// the registry of the store most recently attached.
#[derive(Debug, Default)]
pub(crate) struct StatsSlot(Mutex<Option<BackendStats>>);

impl StatsSlot {
    pub(crate) fn attach(&self, stats: BackendStats) {
        *self.0.lock() = Some(stats);
    }

    pub(crate) fn with(&self, f: impl FnOnce(&BackendStats)) {
        if let Some(stats) = self.0.lock().as_ref() {
            f(stats);
        }
    }
}

/// Physical byte storage for extents. See the module docs for the
/// conformance contract; implementations must be `Send + Sync` — the
/// store calls them from every node thread.
pub trait ExtentBackend: Send + Sync + fmt::Debug {
    /// Short human-readable backend name (`"sim"`, `"file"`).
    fn name(&self) -> &'static str;

    /// Installs the stat hook. Called once per owning store at open;
    /// backends record physical I/O against the most recent attachment.
    fn attach_stats(&self, stats: BackendStats);

    /// Creates the backing object for a fresh extent. `capacity` is
    /// advisory (payload capacity; physical length may exceed it by frame
    /// headers). Allocating an extent that already exists is an error —
    /// extent ids are never reused.
    fn allocate(&self, stream: StreamId, extent: ExtentId, capacity: usize) -> StorageResult<()>;

    /// Writes `bytes` at physical offset `at`, extending the extent as
    /// needed. The store appends at the tail cursor; offsets below the
    /// tail overwrite in place (repair tooling only).
    fn write_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        bytes: &[u8],
    ) -> StorageResult<()>;

    /// Reads exactly `len` bytes at physical offset `at`. Short reads are
    /// errors ([`crate::IoErrorClass::UnexpectedEof`]), never silent
    /// truncations — frame verification needs the full span.
    fn read_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        len: usize,
    ) -> StorageResult<Vec<u8>>;

    /// Current physical length of the extent in bytes.
    fn extent_len(&self, stream: StreamId, extent: ExtentId) -> StorageResult<u64>;

    /// Durability barrier: all completed writes to the extent survive a
    /// crash once this returns.
    fn sync(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()>;

    /// Durably seals the extent: implies [`ExtentBackend::sync`] and
    /// records the seal so [`ExtentBackend::list_extents`] reports it
    /// after a restart. Sealing is idempotent.
    fn seal(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()>;

    /// Deletes the extent's backing object (reclaim/expiry/repair).
    fn delete(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()>;

    /// Chaos hook: flips the stored bit at absolute bit index `bit`
    /// (byte `bit / 8`, bit `bit % 8`) in place, modelling at-rest rot.
    fn corrupt_bit(&self, stream: StreamId, extent: ExtentId, bit: u64) -> StorageResult<()>;

    /// Every extent the backend currently holds, in no particular order.
    /// Bootstrap reads these to rebuild the store's metadata plane.
    fn list_extents(&self) -> StorageResult<Vec<PersistedExtent>>;
}

fn eof(op: StorageOp, detail: String) -> StorageError {
    StorageError::io(op, &io::Error::new(io::ErrorKind::UnexpectedEof, detail))
}

fn missing(op: StorageOp, stream: StreamId, extent: ExtentId) -> StorageError {
    StorageError::io(
        op,
        &io::Error::new(
            io::ErrorKind::NotFound,
            format!("{stream}/{extent} has no backing object"),
        ),
    )
}

#[derive(Debug, Default)]
struct SimExtent {
    data: Vec<u8>,
    sealed: bool,
}

/// The in-memory backend: one `Vec<u8>` per extent behind a mutex.
/// Deterministic (no syscalls, no wall time) and shareable across stores
/// — cloning the `Arc` and handing it to a second store models a new node
/// attaching to the same shared storage service.
#[derive(Debug, Default)]
pub struct SimBackend {
    extents: Mutex<HashMap<(StreamId, ExtentId), SimExtent>>,
    stats: StatsSlot,
}

impl SimBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExtentBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn attach_stats(&self, stats: BackendStats) {
        self.stats.attach(stats);
    }

    fn allocate(&self, stream: StreamId, extent: ExtentId, capacity: usize) -> StorageResult<()> {
        let mut guard = self.extents.lock();
        if guard.contains_key(&(stream, extent)) {
            return Err(StorageError::io(
                StorageOp::Append,
                &io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("{stream}/{extent} already allocated"),
                ),
            ));
        }
        guard.insert(
            (stream, extent),
            SimExtent {
                data: Vec::with_capacity(capacity.min(1 << 20)),
                sealed: false,
            },
        );
        Ok(())
    }

    fn write_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        bytes: &[u8],
    ) -> StorageResult<()> {
        let mut guard = self.extents.lock();
        let ext = guard
            .get_mut(&(stream, extent))
            .ok_or_else(|| missing(StorageOp::Append, stream, extent))?;
        let end = at as usize + bytes.len();
        if ext.data.len() < end {
            ext.data.resize(end, 0);
        }
        ext.data[at as usize..end].copy_from_slice(bytes);
        drop(guard);
        self.stats.with(|s| s.record_write(bytes.len()));
        Ok(())
    }

    fn read_at(
        &self,
        stream: StreamId,
        extent: ExtentId,
        at: u64,
        len: usize,
    ) -> StorageResult<Vec<u8>> {
        let guard = self.extents.lock();
        let ext = guard
            .get(&(stream, extent))
            .ok_or_else(|| missing(StorageOp::Read, stream, extent))?;
        let end = at as usize + len;
        if end > ext.data.len() {
            return Err(eof(
                StorageOp::Read,
                format!(
                    "{stream}/{extent}: read [{at}, {end}) past physical length {}",
                    ext.data.len()
                ),
            ));
        }
        let bytes = ext.data[at as usize..end].to_vec();
        drop(guard);
        self.stats.with(|s| s.record_read(len));
        Ok(bytes)
    }

    fn extent_len(&self, stream: StreamId, extent: ExtentId) -> StorageResult<u64> {
        let guard = self.extents.lock();
        let ext = guard
            .get(&(stream, extent))
            .ok_or_else(|| missing(StorageOp::Read, stream, extent))?;
        Ok(ext.data.len() as u64)
    }

    fn sync(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        let guard = self.extents.lock();
        if !guard.contains_key(&(stream, extent)) {
            return Err(missing(StorageOp::Append, stream, extent));
        }
        drop(guard);
        self.stats.with(|s| s.record_sync());
        Ok(())
    }

    fn seal(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        let mut guard = self.extents.lock();
        let ext = guard
            .get_mut(&(stream, extent))
            .ok_or_else(|| missing(StorageOp::Append, stream, extent))?;
        ext.sealed = true;
        drop(guard);
        self.stats.with(|s| {
            s.record_sync();
            s.record_seal();
        });
        Ok(())
    }

    fn delete(&self, stream: StreamId, extent: ExtentId) -> StorageResult<()> {
        let mut guard = self.extents.lock();
        if guard.remove(&(stream, extent)).is_none() {
            return Err(missing(StorageOp::Expire, stream, extent));
        }
        drop(guard);
        self.stats.with(|s| s.record_delete());
        Ok(())
    }

    fn corrupt_bit(&self, stream: StreamId, extent: ExtentId, bit: u64) -> StorageResult<()> {
        let mut guard = self.extents.lock();
        let ext = guard
            .get_mut(&(stream, extent))
            .ok_or_else(|| missing(StorageOp::Read, stream, extent))?;
        let byte = (bit / 8) as usize;
        if byte >= ext.data.len() {
            return Err(eof(
                StorageOp::Read,
                format!(
                    "{stream}/{extent}: bit {bit} past physical length {}",
                    ext.data.len()
                ),
            ));
        }
        ext.data[byte] ^= 1 << (bit % 8);
        Ok(())
    }

    fn list_extents(&self) -> StorageResult<Vec<PersistedExtent>> {
        let guard = self.extents.lock();
        let mut out: Vec<PersistedExtent> = guard
            .iter()
            .map(|(&(stream, extent), ext)| PersistedExtent {
                stream,
                extent,
                len: ext.data.len() as u64,
                sealed: ext.sealed,
            })
            .collect();
        out.sort_by_key(|p| (p.stream.0, p.extent.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorKind, IoErrorClass};

    #[test]
    fn sim_backend_round_trips_and_tracks_length() {
        let b = SimBackend::new();
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, b"hello")
            .unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 5, b" world")
            .unwrap();
        assert_eq!(b.extent_len(StreamId::BASE, ExtentId(1)).unwrap(), 11);
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 0, 11).unwrap(),
            b"hello world"
        );
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 6, 5).unwrap(),
            b"world"
        );
    }

    #[test]
    fn sim_backend_reads_past_end_fail_as_eof() {
        let b = SimBackend::new();
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, b"abc").unwrap();
        let err = b.read_at(StreamId::BASE, ExtentId(1), 1, 3).unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::Io {
                class: IoErrorClass::UnexpectedEof,
                ..
            }
        ));
        assert!(!err.is_retryable());
    }

    #[test]
    fn sim_backend_missing_extents_fail_as_not_found() {
        let b = SimBackend::new();
        for err in [
            b.read_at(StreamId::WAL, ExtentId(9), 0, 1).unwrap_err(),
            b.write_at(StreamId::WAL, ExtentId(9), 0, b"x").unwrap_err(),
            b.sync(StreamId::WAL, ExtentId(9)).unwrap_err(),
            b.seal(StreamId::WAL, ExtentId(9)).unwrap_err(),
            b.delete(StreamId::WAL, ExtentId(9)).unwrap_err(),
        ] {
            assert!(matches!(
                err.kind,
                ErrorKind::Io {
                    class: IoErrorClass::NotFound,
                    ..
                }
            ));
        }
    }

    #[test]
    fn sim_backend_double_allocate_is_rejected() {
        let b = SimBackend::new();
        b.allocate(StreamId::SST, ExtentId(3), 16).unwrap();
        assert!(b.allocate(StreamId::SST, ExtentId(3), 16).is_err());
    }

    #[test]
    fn sim_backend_lists_sealed_state() {
        let b = SimBackend::new();
        b.allocate(StreamId::WAL, ExtentId(1), 16).unwrap();
        b.allocate(StreamId::WAL, ExtentId(2), 16).unwrap();
        b.write_at(StreamId::WAL, ExtentId(1), 0, b"xy").unwrap();
        b.seal(StreamId::WAL, ExtentId(1)).unwrap();
        let listed = b.list_extents().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(
            listed[0],
            PersistedExtent {
                stream: StreamId::WAL,
                extent: ExtentId(1),
                len: 2,
                sealed: true,
            }
        );
        assert!(!listed[1].sealed);
    }

    #[test]
    fn corrupt_bit_flips_in_place() {
        let b = SimBackend::new();
        b.allocate(StreamId::BASE, ExtentId(1), 16).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, &[0u8; 4])
            .unwrap();
        b.corrupt_bit(StreamId::BASE, ExtentId(1), 9).unwrap();
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 0, 4).unwrap(),
            vec![0, 2, 0, 0]
        );
        // Same bit again: the damage toggles back (XOR), proving in-place.
        b.corrupt_bit(StreamId::BASE, ExtentId(1), 9).unwrap();
        assert_eq!(
            b.read_at(StreamId::BASE, ExtentId(1), 0, 4).unwrap(),
            vec![0, 0, 0, 0]
        );
    }

    #[test]
    fn stats_hook_feeds_the_registry() {
        let registry = MetricRegistry::new();
        let b = SimBackend::new();
        b.attach_stats(BackendStats::register(&registry));
        b.allocate(StreamId::BASE, ExtentId(1), 64).unwrap();
        b.write_at(StreamId::BASE, ExtentId(1), 0, b"12345678")
            .unwrap();
        b.read_at(StreamId::BASE, ExtentId(1), 0, 4).unwrap();
        b.seal(StreamId::BASE, ExtentId(1)).unwrap();
        b.delete(StreamId::BASE, ExtentId(1)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::BACKEND_WRITES_TOTAL), Some(1));
        assert_eq!(snap.counter(names::BACKEND_BYTES_WRITTEN_TOTAL), Some(8));
        assert_eq!(snap.counter(names::BACKEND_READS_TOTAL), Some(1));
        assert_eq!(snap.counter(names::BACKEND_BYTES_READ_TOTAL), Some(4));
        assert_eq!(snap.counter(names::BACKEND_SYNCS_TOTAL), Some(1));
        assert_eq!(snap.counter(names::BACKEND_SEALS_TOTAL), Some(1));
        assert_eq!(snap.counter(names::BACKEND_DELETES_TOTAL), Some(1));
    }
}
