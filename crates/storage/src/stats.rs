//! Atomic I/O accounting.
//!
//! These counters are the primary measurement surface for the paper's
//! micro-benchmarks: storage-side read QPS (Fig. 9), bytes written (Fig. 10),
//! and background relocation bandwidth (Table 2) are all derived from here.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters for one store.
#[derive(Debug, Default)]
pub struct IoStats {
    appends: AtomicU64,
    bytes_appended: AtomicU64,
    random_reads: AtomicU64,
    bytes_read: AtomicU64,
    invalidations: AtomicU64,
    relocation_moves: AtomicU64,
    relocation_bytes: AtomicU64,
    wasted_relocation_bytes: AtomicU64,
    extents_reclaimed: AtomicU64,
    extents_expired: AtomicU64,
    mapping_publishes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    epoch_seals: AtomicU64,
    fenced_publishes: AtomicU64,
    fenced_appends: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_append(&self, len: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_appended.fetch_add(len as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, len: usize) {
        self.random_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_relocation(&self, len: usize) {
        self.relocation_moves.fetch_add(1, Ordering::Relaxed);
        self.relocation_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_wasted_relocation(&self, len: u64) {
        self.wasted_relocation_bytes
            .fetch_add(len, Ordering::Relaxed);
    }

    pub(crate) fn record_extent_reclaimed(&self) {
        self.extents_reclaimed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_extent_expired(&self) {
        self.extents_expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_mapping_publish(&self) {
        self.mapping_publishes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an epoch seal (failover promotion). Public: the failover
    /// machinery lives outside this crate and records on the store's stats.
    pub fn record_epoch_seal(&self) {
        self.epoch_seals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a mapping publish rejected by the epoch fence.
    pub fn record_fenced_publish(&self) {
        self.fenced_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a WAL append rejected by the epoch fence.
    pub fn record_fenced_append(&self) {
        self.fenced_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            random_reads: self.random_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            relocation_moves: self.relocation_moves.load(Ordering::Relaxed),
            relocation_bytes: self.relocation_bytes.load(Ordering::Relaxed),
            wasted_relocation_bytes: self.wasted_relocation_bytes.load(Ordering::Relaxed),
            extents_reclaimed: self.extents_reclaimed.load(Ordering::Relaxed),
            extents_expired: self.extents_expired.load(Ordering::Relaxed),
            mapping_publishes: self.mapping_publishes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            epoch_seals: self.epoch_seals.load(Ordering::Relaxed),
            fenced_publishes: self.fenced_publishes.load(Ordering::Relaxed),
            fenced_appends: self.fenced_appends.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`IoStats`]; supports subtraction for intervals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Number of append operations.
    pub appends: u64,
    /// Bytes written by appends (foreground + relocation).
    pub bytes_appended: u64,
    /// Number of random read operations.
    pub random_reads: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Number of record invalidations.
    pub invalidations: u64,
    /// Valid records moved by space reclamation.
    pub relocation_moves: u64,
    /// Bytes rewritten by space reclamation (the write-amplification term).
    pub relocation_bytes: u64,
    /// Relocated bytes that later became garbage anyway — the wasted
    /// background I/O of Fig. 5 (moving pages that were about to die).
    pub wasted_relocation_bytes: u64,
    /// Extents freed after relocation.
    pub extents_reclaimed: u64,
    /// Extents dropped wholesale because their TTL elapsed.
    pub extents_expired: u64,
    /// Mapping-table version publishes.
    pub mapping_publishes: u64,
    /// Reads served by the page cache instead of storage.
    pub cache_hits: u64,
    /// Cache lookups that fell through to a storage read.
    pub cache_misses: u64,
    /// Cache entries removed — CLOCK displacement under pressure plus
    /// coherence evictions on invalidate/relocate/expire.
    pub cache_evictions: u64,
    /// Epoch seals: completed failover promotions observed by this store.
    pub epoch_seals: u64,
    /// Mapping publishes rejected by the epoch fence (zombie leaders).
    pub fenced_publishes: u64,
    /// WAL appends rejected by the epoch fence (zombie leaders).
    pub fenced_appends: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas from `earlier` to `self` (saturating).
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            appends: self.appends.saturating_sub(earlier.appends),
            bytes_appended: self.bytes_appended.saturating_sub(earlier.bytes_appended),
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            relocation_moves: self
                .relocation_moves
                .saturating_sub(earlier.relocation_moves),
            relocation_bytes: self
                .relocation_bytes
                .saturating_sub(earlier.relocation_bytes),
            wasted_relocation_bytes: self
                .wasted_relocation_bytes
                .saturating_sub(earlier.wasted_relocation_bytes),
            extents_reclaimed: self
                .extents_reclaimed
                .saturating_sub(earlier.extents_reclaimed),
            extents_expired: self.extents_expired.saturating_sub(earlier.extents_expired),
            mapping_publishes: self
                .mapping_publishes
                .saturating_sub(earlier.mapping_publishes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            epoch_seals: self.epoch_seals.saturating_sub(earlier.epoch_seals),
            fenced_publishes: self
                .fenced_publishes
                .saturating_sub(earlier.fenced_publishes),
            fenced_appends: self.fenced_appends.saturating_sub(earlier.fenced_appends),
        }
    }

    /// Write amplification: total bytes appended divided by "useful" bytes
    /// (total minus relocation rewrites). 1.0 means no background movement.
    pub fn write_amplification(&self) -> f64 {
        let useful = self.bytes_appended.saturating_sub(self.relocation_bytes);
        if useful == 0 {
            return if self.bytes_appended == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.bytes_appended as f64 / useful as f64
    }

    /// Cache-adjusted read amplification: storage reads divided by logical
    /// reads (cache hits + storage reads). 1.0 with the cache disabled or
    /// stone cold; strictly below 1.0 once the cache absorbs traffic.
    pub fn read_amplification(&self) -> f64 {
        let logical = self.cache_hits + self.random_reads;
        if logical == 0 {
            return 1.0;
        }
        self.random_reads as f64 / logical as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_ops() {
        let stats = IoStats::new();
        stats.record_append(100);
        stats.record_append(50);
        stats.record_read(30);
        stats.record_invalidation();
        stats.record_relocation(50);
        stats.record_extent_reclaimed();
        stats.record_mapping_publish();
        let snap = stats.snapshot();
        assert_eq!(snap.appends, 2);
        assert_eq!(snap.bytes_appended, 150);
        assert_eq!(snap.random_reads, 1);
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.relocation_moves, 1);
        assert_eq!(snap.relocation_bytes, 50);
        assert_eq!(snap.extents_reclaimed, 1);
        assert_eq!(snap.mapping_publishes, 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let stats = IoStats::new();
        stats.record_append(10);
        let first = stats.snapshot();
        stats.record_append(20);
        stats.record_read(5);
        let second = stats.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.appends, 1);
        assert_eq!(delta.bytes_appended, 20);
        assert_eq!(delta.random_reads, 1);
    }

    #[test]
    fn read_amplification_math() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.read_amplification(), 1.0, "no traffic: neutral");
        snap.random_reads = 10;
        assert_eq!(snap.read_amplification(), 1.0, "no cache: every read pays");
        snap.cache_hits = 30;
        assert!((snap.read_amplification() - 0.25).abs() < 1e-9);
        snap.random_reads = 0;
        assert_eq!(snap.read_amplification(), 0.0, "fully cached");
    }

    #[test]
    fn write_amplification_math() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.write_amplification(), 1.0);
        snap.bytes_appended = 150;
        snap.relocation_bytes = 50;
        assert!((snap.write_amplification() - 1.5).abs() < 1e-9);
        snap.relocation_bytes = 150;
        assert!(snap.write_amplification().is_infinite());
    }
}
