//! Atomic I/O accounting, backed by the `bg3-obs` metric registry.
//!
//! These counters are the primary measurement surface for the paper's
//! micro-benchmarks: storage-side read QPS (Fig. 9), bytes written (Fig. 10),
//! and background relocation bandwidth (Table 2) are all derived from here.
//!
//! Each [`IoStats`] owns a [`MetricRegistry`] in which every counter and
//! latency histogram is registered under a stable name from
//! [`bg3_obs::names`]. [`IoStatsSnapshot`] remains the compatibility view
//! (plain named totals) the experiments and their deltas are built on;
//! [`IoStats::metrics`] exposes the full registry snapshot including the
//! latency distributions. Recording is relaxed atomics only — no lock is
//! taken on any hot path.
//!
//! Units: counters named `*_bytes*` are bytes, everything else counts
//! operations; histograms record **virtual-time nanoseconds** (simulated
//! `SimClock` time, not wall time).

use bg3_obs::span::{charge, CostDim};
use bg3_obs::{names, Counter, Histogram, MetricRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};

/// Shared, thread-safe I/O counters and latency histograms for one store.
#[derive(Debug)]
pub struct IoStats {
    registry: MetricRegistry,
    appends: Counter,
    bytes_appended: Counter,
    random_reads: Counter,
    bytes_read: Counter,
    invalidations: Counter,
    relocation_moves: Counter,
    relocation_bytes: Counter,
    wasted_relocation_bytes: Counter,
    extents_reclaimed: Counter,
    extents_expired: Counter,
    mapping_publishes: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    epoch_seals: Counter,
    fenced_publishes: Counter,
    fenced_appends: Counter,
    checksum_mismatches: Counter,
    extents_quarantined: Counter,
    extents_repaired: Counter,
    scrub_records_verified: Counter,
    scrub_records_resupplied: Counter,
    query_scan_bytes: Counter,
    query_csr_segments: Counter,
    query_pushdown_hits: Counter,
    sync_poisoned: Counter,
    query_frontier_len: Histogram,
    read_latency: Histogram,
    append_latency: Histogram,
    publish_latency: Histogram,
    wal_flush_latency: Histogram,
    gc_move_latency: Histogram,
    promotion_latency: Histogram,
    scrub_cycle_latency: Histogram,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl IoStats {
    /// Creates zeroed counters in a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(MetricRegistry::new())
    }

    /// Creates counters registered in `registry` (pre-registering every
    /// stable metric name, so even an idle store exports the full set).
    pub fn with_registry(registry: MetricRegistry) -> Self {
        // Pre-register the backend's physical-I/O counters (the store
        // re-resolves the same handles via `BackendStats::register` at
        // open), so even an idle store exports the full required set.
        let _ = crate::backend::BackendStats::register(&registry);
        // Same for the admission-control plane: the controller re-resolves
        // these handles from the store's registry when one is attached,
        // and an engine running without admission still exports them.
        let _ = registry.counter(names::ADMIT_ADMITTED_TOTAL);
        let _ = registry.counter(names::ADMIT_SHED_TOTAL);
        let _ = registry.counter(names::ADMIT_STALE_READS_TOTAL);
        let _ = registry.counter(names::QUERY_HOP_TRUNCATIONS_TOTAL);
        let _ = registry.histogram(names::ADMIT_QUEUE_WAIT_LATENCY_NS);
        // Profiler plane: the executor and slow-query log re-resolve these
        // handles when profiling is on; an unprofiled store still exports
        // the full required set.
        let _ = registry.counter(names::QUERY_PROFILES_TOTAL);
        let _ = registry.counter(names::QUERY_PROFILE_SPANS_TOTAL);
        let _ = registry.counter(names::SLOW_QUERY_RECORDED_TOTAL);
        let _ = registry.counter(names::SLOW_QUERY_EVICTED_TOTAL);
        let _ = registry.counter(names::TRACE_DROPPED_EVENTS_TOTAL);
        let _ = registry.gauge(names::SLOW_QUERY_LOG_ENTRIES);
        let _ = registry.gauge(names::SLOW_QUERY_WORST_COST_NS);
        let _ = registry.histogram(names::QUERY_PROFILE_COST_LATENCY_NS);
        // Disk-fault envelope: the governed engine re-resolves the ENOSPC
        // shed counter from this registry, and the health tracker owns the
        // gauge; pre-register both so idle stores export them.
        let _ = registry.counter(names::ENOSPC_SHEDS_TOTAL);
        let _ = registry.gauge(names::DISK_HEALTH);
        IoStats {
            appends: registry.counter(names::STORAGE_APPENDS_TOTAL),
            bytes_appended: registry.counter(names::STORAGE_BYTES_APPENDED_TOTAL),
            random_reads: registry.counter(names::STORAGE_RANDOM_READS_TOTAL),
            bytes_read: registry.counter(names::STORAGE_BYTES_READ_TOTAL),
            invalidations: registry.counter(names::STORAGE_INVALIDATIONS_TOTAL),
            relocation_moves: registry.counter(names::GC_RELOCATION_MOVES_TOTAL),
            relocation_bytes: registry.counter(names::GC_RELOCATION_BYTES_TOTAL),
            wasted_relocation_bytes: registry.counter(names::GC_WASTED_RELOCATION_BYTES_TOTAL),
            extents_reclaimed: registry.counter(names::GC_EXTENTS_RECLAIMED_TOTAL),
            extents_expired: registry.counter(names::GC_EXTENTS_EXPIRED_TOTAL),
            mapping_publishes: registry.counter(names::MAPPING_PUBLISHES_TOTAL),
            cache_hits: registry.counter(names::CACHE_HITS_TOTAL),
            cache_misses: registry.counter(names::CACHE_MISSES_TOTAL),
            cache_evictions: registry.counter(names::CACHE_EVICTIONS_TOTAL),
            epoch_seals: registry.counter(names::EPOCH_SEALS_TOTAL),
            fenced_publishes: registry.counter(names::FENCED_PUBLISHES_TOTAL),
            fenced_appends: registry.counter(names::FENCED_APPENDS_TOTAL),
            checksum_mismatches: registry.counter(names::CHECKSUM_MISMATCHES_TOTAL),
            extents_quarantined: registry.counter(names::SCRUB_EXTENTS_QUARANTINED_TOTAL),
            extents_repaired: registry.counter(names::SCRUB_EXTENTS_REPAIRED_TOTAL),
            scrub_records_verified: registry.counter(names::SCRUB_RECORDS_VERIFIED_TOTAL),
            scrub_records_resupplied: registry.counter(names::SCRUB_RECORDS_RESUPPLIED_TOTAL),
            query_scan_bytes: registry.counter(names::QUERY_SCAN_BYTES_TOTAL),
            query_csr_segments: registry.counter(names::QUERY_CSR_SEGMENTS_SCANNED_TOTAL),
            query_pushdown_hits: registry.counter(names::QUERY_PUSHDOWN_HITS_TOTAL),
            sync_poisoned: registry.counter(names::SYNC_POISONED_TOTAL),
            query_frontier_len: registry.histogram(names::QUERY_FRONTIER_LEN),
            read_latency: registry.histogram(names::STORAGE_READ_LATENCY_NS),
            append_latency: registry.histogram(names::STORAGE_APPEND_LATENCY_NS),
            publish_latency: registry.histogram(names::MAPPING_PUBLISH_LATENCY_NS),
            wal_flush_latency: registry.histogram(names::WAL_FLUSH_LATENCY_NS),
            gc_move_latency: registry.histogram(names::GC_MOVE_LATENCY_NS),
            promotion_latency: registry.histogram(names::PROMOTION_LATENCY_NS),
            scrub_cycle_latency: registry.histogram(names::SCRUB_CYCLE_LATENCY_NS),
            registry,
        }
    }

    /// The registry these counters live in. Subsystems without their own
    /// `IoStats` (the reclaimer, the failover coordinator) register their
    /// extra metrics here so one snapshot covers the whole node.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Full registry snapshot: every counter, gauge, and latency
    /// histogram under its stable name.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    pub(crate) fn record_append(&self, len: usize) {
        self.appends.inc();
        self.bytes_appended.add(len as u64);
    }

    // Per-request attribution (`bg3_obs::span::charge`) is placed inside
    // the same recorders that bump the global counters, so summed
    // per-query ledgers equal the global registry deltas by construction
    // whenever every operation in a window runs under an installed ledger.
    pub(crate) fn record_read(&self, len: usize) {
        self.random_reads.inc();
        self.bytes_read.add(len as u64);
        charge(CostDim::StorageReads, 1);
        charge(CostDim::StorageReadBytes, len as u64);
    }

    pub(crate) fn record_invalidation(&self) {
        self.invalidations.inc();
    }

    pub(crate) fn record_relocation(&self, len: usize) {
        self.relocation_moves.inc();
        self.relocation_bytes.add(len as u64);
    }

    pub(crate) fn record_wasted_relocation(&self, len: u64) {
        self.wasted_relocation_bytes.add(len);
    }

    pub(crate) fn record_extent_reclaimed(&self) {
        self.extents_reclaimed.inc();
    }

    pub(crate) fn record_extent_expired(&self) {
        self.extents_expired.inc();
    }

    pub(crate) fn record_mapping_publish(&self) {
        self.mapping_publishes.inc();
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.inc();
        charge(CostDim::CacheHits, 1);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.inc();
        charge(CostDim::CacheMisses, 1);
    }

    pub(crate) fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.add(n);
    }

    pub(crate) fn record_checksum_mismatch(&self) {
        self.checksum_mismatches.inc();
    }

    pub(crate) fn record_checksum_mismatches(&self, n: u64) {
        self.checksum_mismatches.add(n);
    }

    pub(crate) fn record_sync_poisoned(&self) {
        self.sync_poisoned.inc();
    }

    pub(crate) fn record_extent_quarantined(&self) {
        self.extents_quarantined.inc();
    }

    pub(crate) fn record_extent_repaired(&self) {
        self.extents_repaired.inc();
    }

    pub(crate) fn record_scrub_records_verified(&self, n: u64) {
        self.scrub_records_verified.add(n);
    }

    pub(crate) fn record_scrub_records_resupplied(&self, n: u64) {
        self.scrub_records_resupplied.add(n);
    }

    /// Records an epoch seal (failover promotion). Public: the failover
    /// machinery lives outside this crate and records on the store's stats.
    pub fn record_epoch_seal(&self) {
        self.epoch_seals.inc();
    }

    /// Records a mapping publish rejected by the epoch fence.
    pub fn record_fenced_publish(&self) {
        self.fenced_publishes.inc();
    }

    /// Records a WAL append rejected by the epoch fence.
    pub fn record_fenced_append(&self) {
        self.fenced_appends.inc();
    }

    /// Records the virtual-time cost of one storage random read (ns).
    pub fn record_read_latency(&self, nanos: u64) {
        self.read_latency.record(nanos);
        charge(CostDim::ReadWaitNanos, nanos);
    }

    /// Records the virtual-time cost of one append (ns).
    pub fn record_append_latency(&self, nanos: u64) {
        self.append_latency.record(nanos);
    }

    /// Records the virtual-time cost of one mapping publish (ns).
    pub fn record_publish_latency(&self, nanos: u64) {
        self.publish_latency.record(nanos);
    }

    /// Records one WAL append+flush duration, retries included (ns).
    /// Public: the WAL writer lives outside this crate.
    pub fn record_wal_flush_latency(&self, nanos: u64) {
        self.wal_flush_latency.record(nanos);
        charge(CostDim::WalWaitNanos, nanos);
    }

    /// Records the cost of relocating one record: its GC read + rewrite (ns).
    pub fn record_gc_move_latency(&self, nanos: u64) {
        self.gc_move_latency.record(nanos);
    }

    /// Records one RO→RW promotion duration: seal + parked replay (ns).
    /// Public: the failover machinery lives outside this crate.
    pub fn record_promotion_latency(&self, nanos: u64) {
        self.promotion_latency.record(nanos);
    }

    /// Records one scrubber cycle duration: every extent verified (and
    /// repaired) in the cycle (ns). Public: the scrubber lives in `bg3-gc`.
    pub fn record_scrub_cycle_latency(&self, nanos: u64) {
        self.scrub_cycle_latency.record(nanos);
    }

    /// Records one batched adjacency scan: `bytes` scanned across
    /// `segments` distinct sealed segments (leaf pages). Public: the
    /// batched read path lives in `bg3-core`/`bg3-query`.
    pub fn record_adjacency_scan(&self, bytes: u64, segments: u64) {
        self.query_scan_bytes.add(bytes);
        self.query_csr_segments.add(segments);
        charge(CostDim::BytesScanned, bytes);
        charge(CostDim::CsrSegments, segments);
    }

    /// Records the size of one expansion frontier (vertices, not ns —
    /// the one size histogram in the registry). Public: recorded by the
    /// query executor.
    pub fn record_frontier_len(&self, len: u64) {
        self.query_frontier_len.record(len);
    }

    /// Records an Expand whose count/dedup terminal was pushed into the
    /// scan (no traversers materialized). Public: recorded by the query
    /// executor.
    pub fn record_pushdown_hit(&self) {
        self.query_pushdown_hits.inc();
    }

    /// Takes a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            appends: self.appends.get(),
            bytes_appended: self.bytes_appended.get(),
            random_reads: self.random_reads.get(),
            bytes_read: self.bytes_read.get(),
            invalidations: self.invalidations.get(),
            relocation_moves: self.relocation_moves.get(),
            relocation_bytes: self.relocation_bytes.get(),
            wasted_relocation_bytes: self.wasted_relocation_bytes.get(),
            extents_reclaimed: self.extents_reclaimed.get(),
            extents_expired: self.extents_expired.get(),
            mapping_publishes: self.mapping_publishes.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            epoch_seals: self.epoch_seals.get(),
            fenced_publishes: self.fenced_publishes.get(),
            fenced_appends: self.fenced_appends.get(),
            checksum_mismatches: self.checksum_mismatches.get(),
            extents_quarantined: self.extents_quarantined.get(),
            extents_repaired: self.extents_repaired.get(),
            scrub_records_verified: self.scrub_records_verified.get(),
            scrub_records_resupplied: self.scrub_records_resupplied.get(),
        }
    }
}

/// Point-in-time copy of [`IoStats`]; supports subtraction for intervals.
///
/// This is the stable compatibility view over the metric registry: each
/// field mirrors one registry counter (`*_bytes*` fields are bytes, all
/// others are operation counts). Latency histograms are not part of this
/// view — use [`IoStats::metrics`] for the full registry snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Number of append operations.
    pub appends: u64,
    /// Bytes written by appends (foreground + relocation).
    pub bytes_appended: u64,
    /// Number of random read operations.
    pub random_reads: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Number of record invalidations.
    pub invalidations: u64,
    /// Valid records moved by space reclamation.
    pub relocation_moves: u64,
    /// Bytes rewritten by space reclamation (the write-amplification term).
    pub relocation_bytes: u64,
    /// Relocated bytes that later became garbage anyway — the wasted
    /// background I/O of Fig. 5 (moving pages that were about to die).
    pub wasted_relocation_bytes: u64,
    /// Extents freed after relocation.
    pub extents_reclaimed: u64,
    /// Extents dropped wholesale because their TTL elapsed.
    pub extents_expired: u64,
    /// Mapping-table version publishes.
    pub mapping_publishes: u64,
    /// Reads served by the page cache instead of storage.
    pub cache_hits: u64,
    /// Cache lookups that fell through to a storage read.
    pub cache_misses: u64,
    /// Cache entries removed — CLOCK displacement under pressure plus
    /// coherence evictions on invalidate/relocate/expire.
    pub cache_evictions: u64,
    /// Epoch seals: completed failover promotions observed by this store.
    pub epoch_seals: u64,
    /// Mapping publishes rejected by the epoch fence (zombie leaders).
    pub fenced_publishes: u64,
    /// WAL appends rejected by the epoch fence (zombie leaders).
    pub fenced_appends: u64,
    /// Record frames that failed verification (on reads, rescans, and
    /// scrub passes).
    pub checksum_mismatches: u64,
    /// Extents moved into quarantine by frame verification.
    pub extents_quarantined: u64,
    /// Quarantined extents successfully repaired and reclaimed.
    pub extents_repaired: u64,
    /// Record frames checked by scrub passes (intact + corrupt).
    pub scrub_records_verified: u64,
    /// Corrupt records re-materialized from a repair source.
    pub scrub_records_resupplied: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas from `earlier` to `self` (saturating).
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            appends: self.appends.saturating_sub(earlier.appends),
            bytes_appended: self.bytes_appended.saturating_sub(earlier.bytes_appended),
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            relocation_moves: self
                .relocation_moves
                .saturating_sub(earlier.relocation_moves),
            relocation_bytes: self
                .relocation_bytes
                .saturating_sub(earlier.relocation_bytes),
            wasted_relocation_bytes: self
                .wasted_relocation_bytes
                .saturating_sub(earlier.wasted_relocation_bytes),
            extents_reclaimed: self
                .extents_reclaimed
                .saturating_sub(earlier.extents_reclaimed),
            extents_expired: self.extents_expired.saturating_sub(earlier.extents_expired),
            mapping_publishes: self
                .mapping_publishes
                .saturating_sub(earlier.mapping_publishes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            epoch_seals: self.epoch_seals.saturating_sub(earlier.epoch_seals),
            fenced_publishes: self
                .fenced_publishes
                .saturating_sub(earlier.fenced_publishes),
            fenced_appends: self.fenced_appends.saturating_sub(earlier.fenced_appends),
            checksum_mismatches: self
                .checksum_mismatches
                .saturating_sub(earlier.checksum_mismatches),
            extents_quarantined: self
                .extents_quarantined
                .saturating_sub(earlier.extents_quarantined),
            extents_repaired: self
                .extents_repaired
                .saturating_sub(earlier.extents_repaired),
            scrub_records_verified: self
                .scrub_records_verified
                .saturating_sub(earlier.scrub_records_verified),
            scrub_records_resupplied: self
                .scrub_records_resupplied
                .saturating_sub(earlier.scrub_records_resupplied),
        }
    }

    /// Write amplification: total bytes appended divided by "useful" bytes
    /// (total minus relocation rewrites). Dimensionless ratio ≥ 1.0; 1.0
    /// means no background movement.
    ///
    /// Division-by-zero guards: with nothing appended at all the ratio is
    /// neutral (1.0); when *every* appended byte was a relocation rewrite
    /// the useful denominator is 0 and the ratio is `f64::INFINITY`.
    pub fn write_amplification(&self) -> f64 {
        let useful = self.bytes_appended.saturating_sub(self.relocation_bytes);
        if useful == 0 {
            return if self.bytes_appended == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.bytes_appended as f64 / useful as f64
    }

    /// Cache-adjusted read amplification: storage reads divided by logical
    /// reads (cache hits + storage reads). Dimensionless ratio in
    /// `[0.0, 1.0]`: 1.0 with the cache disabled or stone cold, strictly
    /// below 1.0 once the cache absorbs traffic.
    ///
    /// Division-by-zero guard: with zero logical reads (no traffic) the
    /// ratio is neutral (1.0), never `NaN`.
    pub fn read_amplification(&self) -> f64 {
        let logical = self.cache_hits + self.random_reads;
        if logical == 0 {
            return 1.0;
        }
        self.random_reads as f64 / logical as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_ops() {
        let stats = IoStats::new();
        stats.record_append(100);
        stats.record_append(50);
        stats.record_read(30);
        stats.record_invalidation();
        stats.record_relocation(50);
        stats.record_extent_reclaimed();
        stats.record_mapping_publish();
        let snap = stats.snapshot();
        assert_eq!(snap.appends, 2);
        assert_eq!(snap.bytes_appended, 150);
        assert_eq!(snap.random_reads, 1);
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.relocation_moves, 1);
        assert_eq!(snap.relocation_bytes, 50);
        assert_eq!(snap.extents_reclaimed, 1);
        assert_eq!(snap.mapping_publishes, 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let stats = IoStats::new();
        stats.record_append(10);
        let first = stats.snapshot();
        stats.record_append(20);
        stats.record_read(5);
        let second = stats.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.appends, 1);
        assert_eq!(delta.bytes_appended, 20);
        assert_eq!(delta.random_reads, 1);
    }

    #[test]
    fn read_amplification_math() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.read_amplification(), 1.0, "no traffic: neutral");
        snap.random_reads = 10;
        assert_eq!(snap.read_amplification(), 1.0, "no cache: every read pays");
        snap.cache_hits = 30;
        assert!((snap.read_amplification() - 0.25).abs() < 1e-9);
        snap.random_reads = 0;
        assert_eq!(snap.read_amplification(), 0.0, "fully cached");
    }

    #[test]
    fn write_amplification_math() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.write_amplification(), 1.0);
        snap.bytes_appended = 150;
        snap.relocation_bytes = 50;
        assert!((snap.write_amplification() - 1.5).abs() < 1e-9);
        snap.relocation_bytes = 150;
        assert!(snap.write_amplification().is_infinite());
    }

    #[test]
    fn counters_are_mirrored_in_the_registry() {
        let stats = IoStats::new();
        stats.record_append(64);
        stats.record_read(32);
        stats.record_fenced_append();
        let metrics = stats.metrics();
        assert_eq!(
            metrics.counter(bg3_obs::names::STORAGE_APPENDS_TOTAL),
            Some(1)
        );
        assert_eq!(
            metrics.counter(bg3_obs::names::STORAGE_BYTES_APPENDED_TOTAL),
            Some(64)
        );
        assert_eq!(
            metrics.counter(bg3_obs::names::STORAGE_BYTES_READ_TOTAL),
            Some(32)
        );
        assert_eq!(
            metrics.counter(bg3_obs::names::FENCED_APPENDS_TOTAL),
            Some(1)
        );
        // Every required name is pre-registered even when untouched.
        for name in bg3_obs::names::REQUIRED_COUNTERS {
            assert!(metrics.counter(name).is_some(), "missing {name}");
        }
        for name in bg3_obs::names::REQUIRED_HISTOGRAMS {
            assert!(metrics.histogram(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn ledger_charges_mirror_registry_increments() {
        let stats = IoStats::new();
        let ledger = bg3_obs::CostLedger::new();
        {
            let _guard = ledger.install();
            stats.record_read(32);
            stats.record_cache_hit();
            stats.record_cache_miss();
            stats.record_read_latency(150_000);
            stats.record_wal_flush_latency(400_000);
            stats.record_adjacency_scan(512, 3);
        }
        // Outside the guard: global counters move, the ledger doesn't.
        stats.record_read(100);
        let snap = ledger.snapshot();
        assert_eq!(snap.storage_reads, 1);
        assert_eq!(snap.storage_read_bytes, 32);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.read_wait_nanos, 150_000);
        assert_eq!(snap.wal_wait_nanos, 400_000);
        assert_eq!(snap.bytes_scanned, 512);
        assert_eq!(snap.csr_segments, 3);
        assert_eq!(stats.snapshot().random_reads, 2);
    }

    #[test]
    fn latency_recorders_feed_named_histograms() {
        let stats = IoStats::new();
        stats.record_read_latency(50_000);
        stats.record_read_latency(70_000);
        stats.record_wal_flush_latency(400_000);
        let metrics = stats.metrics();
        let reads = metrics
            .histogram(bg3_obs::names::STORAGE_READ_LATENCY_NS)
            .unwrap();
        assert_eq!(reads.count, 2);
        assert_eq!(reads.max_nanos, 70_000);
        assert_eq!(
            metrics
                .histogram(bg3_obs::names::WAL_FLUSH_LATENCY_NS)
                .unwrap()
                .count,
            1
        );
    }
}
