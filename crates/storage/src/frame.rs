//! Checksummed record framing for every extent append.
//!
//! Real object stores serve bit-rot, misdirected reads, and truncated
//! responses *silently* — the call succeeds and hands back wrong bytes.
//! Production log-structured stores therefore pair the append-only layout
//! with a per-record checksum verified on every read (RocksDB block
//! checksums, PolarFS verify-on-read). This module is that layer for the
//! store: every record appended to an extent is wrapped in a fixed
//! 28-byte header whose CRC32C covers the record's identity (kind, length,
//! record id, caller tag) *and* its payload, so a flipped bit anywhere in
//! the frame — or a frame served for the wrong record — is detected before
//! a single payload byte reaches a caller.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     2  magic   = 0xB6F3
//!      2     1  kind    (FrameKind: stream class of the payload)
//!      3     1  reserved (zero)
//!      4     4  len     (payload length in bytes)
//!      8     8  record  (RecordId minted at append time)
//!     16     8  tag     (caller-supplied; WAL appends store the LSN here)
//!     24     4  crc     CRC32C over bytes [2..24] ++ payload
//! ```
//!
//! The magic bytes sit *outside* the CRC so a read landing mid-payload is
//! reported as a framing error rather than decoding garbage, and the CRC
//! itself is protected because any flip in it mismatches the recomputation.
//!
//! The tag field makes the frame *self-describing for recovery*: a
//! file-backed store reopened after a crash rebuilds its record index —
//! including the WAL's dense LSN sequence — by walking frames alone,
//! without a separate metadata journal ([`decode_header`]).

use crate::addr::RecordId;
use std::fmt;

/// Frame magic: identifies the start of a framed record.
pub const FRAME_MAGIC: u16 = 0xB6F3;

/// Size of the frame header preceding every payload in extent data.
pub const FRAME_HEADER_LEN: usize = 28;

/// The record class carried by a frame, derived from the stream the record
/// was appended to. Verification does not currently bind reads to a kind
/// (addresses carry the stream already); the kind makes raw extent dumps
/// self-describing and is covered by the CRC like every other header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Bw-tree base page (BASE stream).
    BasePage,
    /// Bw-tree delta page (DELTA stream).
    Delta,
    /// Write-ahead-log record (WAL stream).
    WalRecord,
    /// LSM SSTable block (SST stream).
    SsTable,
    /// Any other stream.
    Other(u8),
}

impl FrameKind {
    /// The kind records of `stream` are framed as.
    pub fn for_stream(stream: crate::addr::StreamId) -> FrameKind {
        match stream {
            crate::addr::StreamId::BASE => FrameKind::BasePage,
            crate::addr::StreamId::DELTA => FrameKind::Delta,
            crate::addr::StreamId::WAL => FrameKind::WalRecord,
            crate::addr::StreamId::SST => FrameKind::SsTable,
            crate::addr::StreamId(other) => FrameKind::Other(other),
        }
    }

    /// Wire encoding of the kind byte.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::BasePage => 1,
            FrameKind::Delta => 2,
            FrameKind::WalRecord => 3,
            FrameKind::SsTable => 4,
            FrameKind::Other(b) => b.wrapping_add(5),
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameKind::BasePage => write!(f, "base-page"),
            FrameKind::Delta => write!(f, "delta"),
            FrameKind::WalRecord => write!(f, "wal-record"),
            FrameKind::SsTable => write!(f, "sstable"),
            FrameKind::Other(b) => write!(f, "other({b})"),
        }
    }
}

/// Why a frame failed verification. Carried in the `detail` of the
/// [`crate::ErrorKind::ChecksumMismatch`] error's display and the scrub
/// reports; the error kind itself stays a single variant so retry policies
/// classify on one thing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameViolation {
    /// The bytes before the payload do not start with the frame magic —
    /// the address points at something that is not a record boundary.
    BadMagic,
    /// The header's length field disagrees with the addressed length
    /// (truncated response or stale address).
    LengthMismatch { framed: u32, addressed: u32 },
    /// The CRC32C over header+payload does not match the stored checksum.
    CrcMismatch { stored: u32, computed: u32 },
    /// The frame is internally valid but carries a different record id
    /// than the address — a stale or misdirected read.
    WrongRecord { framed: u64, addressed: u64 },
}

impl fmt::Display for FrameViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameViolation::BadMagic => write!(f, "bad frame magic"),
            FrameViolation::LengthMismatch { framed, addressed } => {
                write!(f, "framed length {framed} != addressed length {addressed}")
            }
            FrameViolation::CrcMismatch { stored, computed } => {
                write!(f, "crc stored {stored:#010x} != computed {computed:#010x}")
            }
            FrameViolation::WrongRecord { framed, addressed } => {
                write!(f, "framed record {framed} != addressed record {addressed}")
            }
        }
    }
}

/// Software CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
/// checksum RocksDB and iSCSI use. Table-driven, one byte per step; no
/// external crates and no SIMD, which is plenty for a simulator.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_extend(0, bytes)
}

/// Extends a running CRC32C with more bytes (for header ++ payload without
/// concatenating buffers).
pub fn crc32c_extend(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Builds the 28-byte header for a payload of `len` bytes identified by
/// `record` and carrying the caller-supplied `tag`, checksumming header
/// fields and payload together.
pub fn encode_header(
    kind: FrameKind,
    record: RecordId,
    tag: u64,
    payload: &[u8],
) -> [u8; FRAME_HEADER_LEN] {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..2].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[2] = kind.as_u8();
    header[3] = 0; // reserved
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[8..16].copy_from_slice(&record.0.to_le_bytes());
    header[16..24].copy_from_slice(&tag.to_le_bytes());
    let crc = crc32c_extend(crc32c(&header[2..24]), payload);
    header[24..28].copy_from_slice(&crc.to_le_bytes());
    header
}

/// Encodes a full frame (header ++ payload) into one buffer. The store
/// writes header and payload as one buffer too (a single positioned write
/// per append); this is also for tests and re-serving synthesized frames.
pub fn encode_frame(kind: FrameKind, record: RecordId, tag: u64, payload: &[u8]) -> Vec<u8> {
    let header = encode_header(kind, record, tag, payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
    out
}

/// Parsed view of a frame header, used by recovery to walk an extent's
/// physical bytes without addresses. Parsing checks the magic only;
/// callers must follow with [`verify_frame`] over the full frame before
/// trusting any field (the CRC covers all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The kind byte as written (not decoded back to [`FrameKind`]).
    pub kind: u8,
    /// Payload length in bytes.
    pub len: u32,
    /// Record identity minted at append time.
    pub record: RecordId,
    /// Caller-supplied tag (WAL appends store the LSN here).
    pub tag: u64,
}

/// Parses the header at the start of `bytes`. Returns
/// [`FrameViolation::BadMagic`] when the bytes are too short or do not
/// start at a record boundary — recovery treats that as the end of the
/// extent's valid prefix (a torn tail).
pub fn decode_header(bytes: &[u8]) -> Result<FrameHeader, FrameViolation> {
    if bytes.len() < FRAME_HEADER_LEN || bytes[0..2] != FRAME_MAGIC.to_le_bytes() {
        return Err(FrameViolation::BadMagic);
    }
    Ok(FrameHeader {
        kind: bytes[2],
        len: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
        record: RecordId(u64::from_le_bytes(
            bytes[8..16].try_into().expect("8 bytes"),
        )),
        tag: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
    })
}

/// Verifies `frame` (header ++ payload) against the address it was read
/// through: the payload must be `addressed_len` bytes and, when
/// `addressed_record` is nonzero, must belong to that record. Returns the
/// payload range on success.
///
/// Every check that can fire fires on any single flipped bit: a flip in the
/// magic is [`FrameViolation::BadMagic`], a flip anywhere in bytes `[2..16]`
/// or the payload mismatches the CRC, and a flip in the stored CRC itself
/// mismatches the recomputation.
pub fn verify_frame(
    frame: &[u8],
    addressed_len: u32,
    addressed_record: RecordId,
) -> Result<(), FrameViolation> {
    if frame.len() < FRAME_HEADER_LEN || frame[0..2] != FRAME_MAGIC.to_le_bytes() {
        return Err(FrameViolation::BadMagic);
    }
    let framed_len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    let payload_len = (frame.len() - FRAME_HEADER_LEN) as u32;
    if framed_len != addressed_len || payload_len != addressed_len {
        return Err(FrameViolation::LengthMismatch {
            framed: framed_len,
            addressed: addressed_len,
        });
    }
    let stored = u32::from_le_bytes(frame[24..28].try_into().expect("4 bytes"));
    let computed = crc32c_extend(crc32c(&frame[2..24]), &frame[FRAME_HEADER_LEN..]);
    if stored != computed {
        return Err(FrameViolation::CrcMismatch { stored, computed });
    }
    let framed_record = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
    if addressed_record.0 != 0 && framed_record != addressed_record.0 {
        return Err(FrameViolation::WrongRecord {
            framed: framed_record,
            addressed: addressed_record.0,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_extend_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_extend(crc32c(a), b), crc32c(data));
        }
    }

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(FrameKind::BasePage, RecordId(42), 7, b"payload");
        assert_eq!(frame.len(), FRAME_HEADER_LEN + 7);
        assert_eq!(verify_frame(&frame, 7, RecordId(42)), Ok(()));
        // A zero addressed record skips the binding check.
        assert_eq!(verify_frame(&frame, 7, RecordId(0)), Ok(()));
        assert_eq!(&frame[FRAME_HEADER_LEN..], b"payload");
    }

    #[test]
    fn empty_payload_frames_verify() {
        let frame = encode_frame(FrameKind::WalRecord, RecordId(1), 0, b"");
        assert_eq!(verify_frame(&frame, 0, RecordId(1)), Ok(()));
    }

    #[test]
    fn decode_header_round_trips_every_field() {
        let frame = encode_frame(FrameKind::WalRecord, RecordId(42), 17, b"lsn payload");
        let header = decode_header(&frame).expect("valid frame");
        assert_eq!(header.kind, FrameKind::WalRecord.as_u8());
        assert_eq!(header.len, 11);
        assert_eq!(header.record, RecordId(42));
        assert_eq!(header.tag, 17);
        // A short or misaligned buffer is the torn-tail signal.
        assert_eq!(decode_header(&frame[..10]), Err(FrameViolation::BadMagic));
        assert_eq!(decode_header(&frame[4..]), Err(FrameViolation::BadMagic));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let frame = encode_frame(FrameKind::Delta, RecordId(7), 3, b"some record payload");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    verify_frame(&corrupt, 19, RecordId(7)).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn tag_is_covered_by_the_crc() {
        // Two frames differing only in tag must not share a checksum: a
        // recovered WAL frame claiming the wrong LSN has to fail verify.
        let a = encode_frame(FrameKind::WalRecord, RecordId(5), 1, b"x");
        let mut b = a.clone();
        b[16..24].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            verify_frame(&b, 1, RecordId(5)),
            Err(FrameViolation::CrcMismatch { .. })
        ));
    }

    #[test]
    fn wrong_record_is_detected_even_with_valid_crc() {
        // A stale read: the frame is internally consistent but belongs to a
        // different record. Only the identity binding catches it.
        let frame = encode_frame(FrameKind::BasePage, RecordId(9), 0, b"stale");
        assert_eq!(
            verify_frame(&frame, 5, RecordId(10)),
            Err(FrameViolation::WrongRecord {
                framed: 9,
                addressed: 10
            })
        );
    }

    #[test]
    fn truncated_frame_is_a_length_mismatch() {
        let frame = encode_frame(FrameKind::BasePage, RecordId(3), 0, b"full payload");
        assert!(matches!(
            verify_frame(&frame[..frame.len() - 4], 12, RecordId(3)),
            Err(FrameViolation::LengthMismatch { .. })
        ));
        // Shorter than a header at all: framing error.
        assert_eq!(
            verify_frame(&frame[..10], 12, RecordId(3)),
            Err(FrameViolation::BadMagic)
        );
    }

    #[test]
    fn mid_payload_reads_fail_the_magic_check() {
        let frame = encode_frame(FrameKind::BasePage, RecordId(3), 0, b"abcdefgh");
        assert_eq!(
            verify_frame(&frame[4..], 4, RecordId(3)),
            Err(FrameViolation::BadMagic)
        );
    }

    #[test]
    fn kinds_map_streams_distinctly() {
        use crate::addr::StreamId;
        let kinds: Vec<u8> = [
            StreamId::BASE,
            StreamId::DELTA,
            StreamId::WAL,
            StreamId::SST,
        ]
        .iter()
        .map(|&s| FrameKind::for_stream(s).as_u8())
        .collect();
        let mut dedup = kinds.clone();
        dedup.dedup();
        assert_eq!(kinds, dedup);
        assert_eq!(FrameKind::for_stream(StreamId(7)), FrameKind::Other(7));
    }
}
