//! The single construction path for [`AppendOnlyStore`].
//!
//! `StoreBuilder` replaces the old `AppendOnlyStore::new` /
//! `AppendOnlyStore::with_clock` pair (both kept as deprecated shims):
//! one builder gathers the clock, the backend, the cache capacity, and the
//! fault schedule, then [`StoreBuilder::open`] runs bootstrap recovery
//! against whatever the backend already holds. For the in-memory default
//! nothing can fail and [`StoreBuilder::build`] unwraps for ergonomics;
//! file-backed stores should call `open` and handle the error.

use crate::backend::{BackendKind, ExtentBackend};
use crate::clock::SimClock;
use crate::error::StorageResult;
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::store::{AppendOnlyStore, StoreConfig};
use bg3_cache::CacheConfig;
use std::sync::Arc;

/// Builder for [`AppendOnlyStore`]. Start from [`StoreBuilder::new`] (the
/// default config) or [`StoreBuilder::from_config`], chain overrides, then
/// [`StoreBuilder::open`] (fallible: real backends, bootstrap recovery) or
/// [`StoreBuilder::build`] (infallible convenience for sim stores).
#[derive(Debug)]
pub struct StoreBuilder {
    config: StoreConfig,
    clock: Option<SimClock>,
    backend: Option<Arc<dyn ExtentBackend>>,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreBuilder {
    /// Builder over [`StoreConfig::default`].
    pub fn new() -> Self {
        Self::from_config(StoreConfig::default())
    }

    /// Builder over an existing config (the migration path from
    /// `AppendOnlyStore::new(config)`).
    pub fn from_config(config: StoreConfig) -> Self {
        StoreBuilder {
            config,
            clock: None,
            backend: None,
        }
    }

    /// Builder over [`StoreConfig::counting`] (zero latency, counting-only
    /// experiments).
    pub fn counting() -> Self {
        Self::from_config(StoreConfig::counting())
    }

    /// Shares an existing simulated clock (replication topologies where
    /// several nodes advance one timeline).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Uses an already-instantiated backend. This is how several stores
    /// attach to one shared storage service (the `Arc` is cloned per
    /// store), and how tests inject a backend directly. Takes precedence
    /// over [`StoreBuilder::backend_kind`].
    pub fn backend(mut self, backend: Arc<dyn ExtentBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects the backend by kind; [`StoreBuilder::open`] instantiates it.
    pub fn backend_kind(mut self, kind: BackendKind) -> Self {
        self.config.backend = kind;
        self
    }

    /// Overrides the extent capacity.
    pub fn extent_capacity(mut self, capacity: usize) -> Self {
        self.config.extent_capacity = capacity;
        self
    }

    /// Installs a page-cache configuration.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Disables the page cache (raw storage reads on every lookup).
    pub fn without_cache(mut self) -> Self {
        self.config.cache = CacheConfig::disabled();
        self
    }

    /// Installs a fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Opens the store: instantiates the backend (unless one was injected),
    /// then rebuilds the metadata plane from whatever it already holds —
    /// the crash-recovery path for file-backed stores, a no-op walk for a
    /// fresh backend.
    pub fn open(self) -> StorageResult<AppendOnlyStore> {
        let backend = match self.backend {
            Some(backend) => backend,
            None => self.config.backend.create()?,
        };
        let clock = self.clock.unwrap_or_default();
        AppendOnlyStore::open_internal(self.config, clock, backend)
    }

    /// Opens the store, panicking on failure. Safe for simulated backends
    /// (which cannot fail to open); file-backed stores should prefer
    /// [`StoreBuilder::open`].
    pub fn build(self) -> AppendOnlyStore {
        self.open()
            .expect("store open failed; use StoreBuilder::open for fallible backends")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::StreamId;
    use crate::backend::SimBackend;

    #[test]
    fn builder_defaults_match_config_defaults() {
        let store = StoreBuilder::new().extent_capacity(128).build();
        assert_eq!(store.extent_capacity(), 128);
        assert_eq!(store.backend().name(), "sim");
    }

    #[test]
    fn injected_backend_is_shared() {
        let backend = Arc::new(SimBackend::new());
        let store = StoreBuilder::counting().backend(backend.clone()).build();
        let addr = store.append(StreamId::BASE, b"persisted", 1, None).unwrap();
        assert_eq!(&store.read(addr).unwrap()[..], b"persisted");
        // A second store over the same backend recovers the record.
        let reopened = StoreBuilder::counting().backend(backend).build();
        let scanned = reopened.scan_stream(StreamId::BASE).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(&scanned[0].2[..], b"persisted");
        assert_eq!(scanned[0].1, 1, "tag recovered from the frame");
    }

    #[test]
    fn bootstrap_skips_torn_tails() {
        let backend = Arc::new(SimBackend::new());
        let store = StoreBuilder::counting().backend(backend.clone()).build();
        let a = store.append(StreamId::WAL, b"first", 10, None).unwrap();
        let b = store.append(StreamId::WAL, b"second", 11, None).unwrap();
        assert_eq!(a.extent, b.extent);
        // Corrupt the second frame's stored bytes directly: recovery must
        // stop the walk there and keep only the first record.
        store.corrupt_record_bit(b, 40).unwrap();
        let reopened = StoreBuilder::counting().backend(backend).build();
        let scanned = reopened.scan_stream(StreamId::WAL).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(&scanned[0].2[..], b"first");
    }

    #[test]
    fn recovered_extents_are_sealed_and_ids_advance() {
        let backend = Arc::new(SimBackend::new());
        let store = StoreBuilder::counting()
            .backend(backend.clone())
            .extent_capacity(8)
            .build();
        let a = store.append(StreamId::BASE, &[1u8; 8], 0, None).unwrap();
        let b = store.append(StreamId::BASE, &[2u8; 8], 0, None).unwrap();
        let reopened = StoreBuilder::counting()
            .backend(backend)
            .extent_capacity(8)
            .build();
        for info in reopened.extent_infos(StreamId::BASE).unwrap() {
            assert_eq!(info.state, crate::extent::ExtentState::Sealed);
        }
        // Fresh appends land in a brand-new extent with a higher id.
        let c = reopened.append(StreamId::BASE, &[3u8; 8], 0, None).unwrap();
        assert!(c.extent.0 > a.extent.0.max(b.extent.0));
        assert!(c.record.0 > a.record.0.max(b.record.0));
    }
}
