//! Addressing types for the append-only store.
//!
//! A record written to the store is identified by the stream it was appended
//! to, the extent within that stream, and its byte offset/length inside the
//! extent. Addresses are stable for the lifetime of the record: relocation
//! during space reclamation produces a *new* address and invalidates the old
//! one (out-of-place update, §2.5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one append-only stream within the store.
///
/// BG3 separates base pages and delta pages into distinct streams so that
/// their very different lifetimes do not pollute each other's extents
/// (adopted from ArkDB, §3.3). The WAL lives in its own stream as well.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct StreamId(pub u8);

impl StreamId {
    /// Stream holding Bw-tree base pages (long-lived, low churn).
    pub const BASE: StreamId = StreamId(0);
    /// Stream holding Bw-tree delta pages (short-lived, high churn).
    pub const DELTA: StreamId = StreamId(1);
    /// Stream holding the write-ahead log used for RW→RO synchronization.
    pub const WAL: StreamId = StreamId(2);
    /// Stream holding LSM SSTable blocks (used by the ByteGraph baseline).
    pub const SST: StreamId = StreamId(3);
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StreamId::BASE => write!(f, "base"),
            StreamId::DELTA => write!(f, "delta"),
            StreamId::WAL => write!(f, "wal"),
            StreamId::SST => write!(f, "sst"),
            StreamId(other) => write!(f, "stream#{other}"),
        }
    }
}

/// Identifies an extent. Extent ids are unique across streams and never
/// reused, which keeps space-reclamation bookkeeping simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExtentId(pub u64);

impl fmt::Display for ExtentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ext#{}", self.0)
    }
}

/// Monotonically increasing id assigned to every record appended to the
/// store. Used to correlate invalidation with the original append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

/// The durable address of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageAddr {
    /// Stream the record lives in.
    pub stream: StreamId,
    /// Extent within the stream.
    pub extent: ExtentId,
    /// Byte offset inside the extent.
    pub offset: u32,
    /// Length of the record in bytes.
    pub len: u32,
    /// Unique record id (survives nothing: relocation mints a new one).
    pub record: RecordId,
}

impl PageAddr {
    /// Number of payload bytes the record occupies.
    pub fn byte_len(&self) -> usize {
        self.len as usize
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}@{}+{}",
            self.stream, self.extent, self.offset, self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_display_names() {
        assert_eq!(StreamId::BASE.to_string(), "base");
        assert_eq!(StreamId::DELTA.to_string(), "delta");
        assert_eq!(StreamId::WAL.to_string(), "wal");
        assert_eq!(StreamId::SST.to_string(), "sst");
        assert_eq!(StreamId(9).to_string(), "stream#9");
    }

    #[test]
    fn addr_byte_len_matches_len_field() {
        let addr = PageAddr {
            stream: StreamId::BASE,
            extent: ExtentId(3),
            offset: 128,
            len: 512,
            record: RecordId(7),
        };
        assert_eq!(addr.byte_len(), 512);
        assert_eq!(addr.to_string(), "base/ext#3@128+512");
    }

    #[test]
    fn addr_equality_is_structural() {
        let a = PageAddr {
            stream: StreamId::DELTA,
            extent: ExtentId(1),
            offset: 0,
            len: 10,
            record: RecordId(1),
        };
        let mut b = a;
        assert_eq!(a, b);
        b.offset = 1;
        assert_ne!(a, b);
    }
}
