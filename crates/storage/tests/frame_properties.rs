//! Property-based tests for the record frame codec: framing must be
//! lossless for arbitrary payloads, and verification must catch *any*
//! single flipped bit — the exact silent-corruption model the scrubber
//! and the `scrub` chaos experiment rely on.

use bg3_storage::{encode_frame, verify_frame, FrameKind, RecordId, FRAME_HEADER_LEN};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::BasePage),
        Just(FrameKind::Delta),
        Just(FrameKind::WalRecord),
        Just(FrameKind::SsTable),
        (0u8..=200).prop_map(FrameKind::Other),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding then verifying is the identity: the frame verifies against
    /// its own (len, record) address and the payload comes back untouched.
    #[test]
    fn frames_round_trip_arbitrary_payloads(
        params in (
            kind_strategy(),
            1u64..u64::MAX,
            proptest::collection::vec(any::<u8>(), 0..512),
            any::<u64>(),
        ),
    ) {
        let (kind, record, payload, tag) = params;
        let frame = encode_frame(kind, RecordId(record), tag, &payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
        prop_assert!(verify_frame(&frame, payload.len() as u32, RecordId(record)).is_ok());
        // Address-blind verification (record 0 skips the binding check).
        prop_assert!(verify_frame(&frame, payload.len() as u32, RecordId(0)).is_ok());
        prop_assert_eq!(&frame[FRAME_HEADER_LEN..], payload.as_slice());
        // A frame never verifies against a different record identity.
        prop_assert!(verify_frame(&frame, payload.len() as u32, RecordId(record ^ 1)).is_err());
    }

    /// Flipping any single bit anywhere in the frame — magic, kind,
    /// reserved byte, length, record id, CRC, or payload — is detected.
    #[test]
    fn any_single_bit_flip_is_detected(
        params in (
            (kind_strategy(), 1u64..u64::MAX, any::<u64>()),
            (proptest::collection::vec(any::<u8>(), 0..256), any::<u32>()),
        ),
    ) {
        let ((kind, record, tag), (payload, flip)) = params;
        let mut frame = encode_frame(kind, RecordId(record), tag, &payload);
        let bit = flip as usize % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            verify_frame(&frame, payload.len() as u32, RecordId(record)).is_err(),
            "flipped bit {bit} went undetected"
        );
    }

    /// Truncation to any proper prefix is detected (torn-write model).
    #[test]
    fn any_truncation_is_detected(
        params in (
            1u64..u64::MAX,
            proptest::collection::vec(any::<u8>(), 1..256),
            any::<u32>(),
        ),
    ) {
        let (record, payload, cut) = params;
        let frame = encode_frame(FrameKind::Delta, RecordId(record), 7, &payload);
        let keep = cut as usize % frame.len();
        prop_assert!(
            verify_frame(&frame[..keep], payload.len() as u32, RecordId(record)).is_err(),
            "truncation to {keep} bytes went undetected"
        );
    }
}
