//! Property-based tests for the storage crate's measurement and fault
//! surfaces: I/O snapshots must behave like monotone saturating counters,
//! and fault plans must be pure functions of (seed, rules, op index).

use bg3_storage::{
    CacheConfig, FaultKind, FaultOp, FaultPlan, FaultRule, IoStatsSnapshot, PageAddr, ReadOpts,
    StoreBuilder, StoreConfig, StreamId,
};
use proptest::prelude::*;

/// An arbitrary snapshot built field-by-field (all fields are public).
fn snapshot_strategy() -> impl Strategy<Value = IoStatsSnapshot> {
    (proptest::collection::vec(any::<u32>(), 22), Just(())).prop_map(|(v, ())| IoStatsSnapshot {
        appends: v[0] as u64,
        bytes_appended: v[1] as u64,
        random_reads: v[2] as u64,
        bytes_read: v[3] as u64,
        invalidations: v[4] as u64,
        relocation_moves: v[5] as u64,
        relocation_bytes: v[6] as u64,
        wasted_relocation_bytes: v[7] as u64,
        extents_reclaimed: v[8] as u64,
        extents_expired: v[9] as u64,
        mapping_publishes: v[10] as u64,
        cache_hits: v[11] as u64,
        cache_misses: v[12] as u64,
        cache_evictions: v[13] as u64,
        epoch_seals: v[14] as u64,
        fenced_publishes: v[15] as u64,
        fenced_appends: v[16] as u64,
        checksum_mismatches: v[17] as u64,
        extents_quarantined: v[18] as u64,
        extents_repaired: v[19] as u64,
        scrub_records_verified: v[20] as u64,
        scrub_records_resupplied: v[21] as u64,
    })
}

/// Fieldwise `a <= b`.
fn le(a: &IoStatsSnapshot, b: &IoStatsSnapshot) -> bool {
    a.appends <= b.appends
        && a.bytes_appended <= b.bytes_appended
        && a.random_reads <= b.random_reads
        && a.bytes_read <= b.bytes_read
        && a.invalidations <= b.invalidations
        && a.relocation_moves <= b.relocation_moves
        && a.relocation_bytes <= b.relocation_bytes
        && a.wasted_relocation_bytes <= b.wasted_relocation_bytes
        && a.extents_reclaimed <= b.extents_reclaimed
        && a.extents_expired <= b.extents_expired
        && a.mapping_publishes <= b.mapping_publishes
        && a.cache_hits <= b.cache_hits
        && a.cache_misses <= b.cache_misses
        && a.cache_evictions <= b.cache_evictions
        && a.epoch_seals <= b.epoch_seals
        && a.fenced_publishes <= b.fenced_publishes
        && a.fenced_appends <= b.fenced_appends
        && a.checksum_mismatches <= b.checksum_mismatches
        && a.extents_quarantined <= b.extents_quarantined
        && a.extents_repaired <= b.extents_repaired
        && a.scrub_records_verified <= b.scrub_records_verified
        && a.scrub_records_resupplied <= b.scrub_records_resupplied
}

/// Fieldwise addition.
fn add(a: &IoStatsSnapshot, b: &IoStatsSnapshot) -> IoStatsSnapshot {
    IoStatsSnapshot {
        appends: a.appends + b.appends,
        bytes_appended: a.bytes_appended + b.bytes_appended,
        random_reads: a.random_reads + b.random_reads,
        bytes_read: a.bytes_read + b.bytes_read,
        invalidations: a.invalidations + b.invalidations,
        relocation_moves: a.relocation_moves + b.relocation_moves,
        relocation_bytes: a.relocation_bytes + b.relocation_bytes,
        wasted_relocation_bytes: a.wasted_relocation_bytes + b.wasted_relocation_bytes,
        extents_reclaimed: a.extents_reclaimed + b.extents_reclaimed,
        extents_expired: a.extents_expired + b.extents_expired,
        mapping_publishes: a.mapping_publishes + b.mapping_publishes,
        cache_hits: a.cache_hits + b.cache_hits,
        cache_misses: a.cache_misses + b.cache_misses,
        cache_evictions: a.cache_evictions + b.cache_evictions,
        epoch_seals: a.epoch_seals + b.epoch_seals,
        fenced_publishes: a.fenced_publishes + b.fenced_publishes,
        fenced_appends: a.fenced_appends + b.fenced_appends,
        checksum_mismatches: a.checksum_mismatches + b.checksum_mismatches,
        extents_quarantined: a.extents_quarantined + b.extents_quarantined,
        extents_repaired: a.extents_repaired + b.extents_repaired,
        scrub_records_verified: a.scrub_records_verified + b.scrub_records_verified,
        scrub_records_resupplied: a.scrub_records_resupplied + b.scrub_records_resupplied,
    }
}

/// A storage op for the monotonicity drive.
#[derive(Debug, Clone)]
enum StoreCmd {
    Append(Vec<u8>),
    ReadLast,
    InvalidateLast,
}

fn store_cmd_strategy() -> impl Strategy<Value = StoreCmd> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 1..64).prop_map(StoreCmd::Append),
        2 => Just(StoreCmd::ReadLast),
        1 => Just(StoreCmd::InvalidateLast),
    ]
}

/// A command for the cache-coherence drive. Indices select among live
/// records (modulo the live count at execution time).
#[derive(Debug, Clone)]
enum CacheCmd {
    Append(Vec<u8>),
    Read(u8),
    Invalidate(u8),
    Relocate(u8),
    Expire(u8),
}

fn cache_cmd_strategy() -> impl Strategy<Value = CacheCmd> {
    prop_oneof![
        4 => proptest::collection::vec(any::<u8>(), 1..48).prop_map(CacheCmd::Append),
        4 => any::<u8>().prop_map(CacheCmd::Read),
        1 => any::<u8>().prop_map(CacheCmd::Invalidate),
        1 => any::<u8>().prop_map(CacheCmd::Relocate),
        1 => any::<u8>().prop_map(CacheCmd::Expire),
    ]
}

fn fault_op_strategy() -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        Just(FaultOp::Append),
        Just(FaultOp::Read),
        Just(FaultOp::MappingPublish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `delta_since` saturates per field: never a panic or wrap, and the
    /// delta is exactly `saturating_sub` regardless of which snapshot is
    /// "newer".
    #[test]
    fn delta_since_is_saturating(pair in (snapshot_strategy(), snapshot_strategy())) {
        let (a, b) = pair;
        let d = a.delta_since(&b);
        prop_assert_eq!(d.appends, a.appends.saturating_sub(b.appends));
        prop_assert_eq!(d.bytes_appended, a.bytes_appended.saturating_sub(b.bytes_appended));
        prop_assert_eq!(d.random_reads, a.random_reads.saturating_sub(b.random_reads));
        prop_assert_eq!(d.bytes_read, a.bytes_read.saturating_sub(b.bytes_read));
        prop_assert_eq!(d.relocation_bytes, a.relocation_bytes.saturating_sub(b.relocation_bytes));
        prop_assert_eq!(d.mapping_publishes, a.mapping_publishes.saturating_sub(b.mapping_publishes));
        // A snapshot's delta against itself is zero everywhere.
        prop_assert_eq!(a.delta_since(&a), IoStatsSnapshot::default());
        // When `b <= a` fieldwise, the delta recomposes exactly.
        if le(&b, &a) {
            prop_assert_eq!(add(&b, &d), a);
        }
    }

    /// Write amplification is total/useful: never NaN, never below 1.0, and
    /// exactly 1.0 when no relocation traffic exists.
    #[test]
    fn write_amplification_is_well_formed(pair in (any::<u32>(), any::<u32>())) {
        let (total, reloc) = pair;
        let snap = IoStatsSnapshot {
            bytes_appended: total as u64,
            relocation_bytes: reloc as u64,
            ..IoStatsSnapshot::default()
        };
        let wa = snap.write_amplification();
        prop_assert!(!wa.is_nan());
        prop_assert!(wa >= 1.0, "write amplification {wa} below 1.0");
        if reloc == 0 && total > 0 {
            prop_assert_eq!(wa, 1.0);
        }
        if reloc as u64 >= total as u64 && total > 0 {
            prop_assert!(wa.is_infinite(), "all-relocation traffic has no useful bytes");
        }
    }

    /// Live counters only ever grow, and interval deltas recompose to the
    /// later snapshot: the contract every experiment's before/after
    /// measurement relies on.
    #[test]
    fn store_snapshots_are_monotone(cmds in proptest::collection::vec(store_cmd_strategy(), 1..40)) {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let mut prev = store.stats().snapshot();
        let mut last_addr = None;
        for cmd in &cmds {
            match cmd {
                StoreCmd::Append(bytes) => {
                    last_addr = Some(store.append(StreamId::BASE, bytes, 0, None).unwrap());
                }
                StoreCmd::ReadLast => {
                    if let Some(addr) = last_addr {
                        store.read(addr).unwrap();
                    }
                }
                StoreCmd::InvalidateLast => {
                    if let Some(addr) = last_addr.take() {
                        store.invalidate(addr).unwrap();
                    }
                }
            }
            let now = store.stats().snapshot();
            prop_assert!(le(&prev, &now), "counters moved backwards");
            prop_assert_eq!(add(&prev, &now.delta_since(&prev)), now);
            prev = now;
        }
    }

    /// The page cache is invisible to correctness: after any interleaving
    /// of appends, invalidations, relocations, TTL expiries, and injected
    /// torn writes, a cached `read` returns exactly what `read_uncached`
    /// returns — live records match their written bytes through both
    /// paths, and dead addresses error through both paths (never a stale
    /// cached copy).
    #[test]
    fn cached_reads_never_diverge_from_storage(
        params in (any::<u64>(), proptest::collection::vec(cache_cmd_strategy(), 1..48)),
    ) {
        let (seed, cmds) = params;
        // Tiny extents force many extents; a tiny 2-shard cache forces
        // CLOCK evictions and doorkeeper churn; torn appends consume
        // space without producing a readable record.
        let store = StoreBuilder::from_config(
            StoreConfig::counting()
                .with_extent_capacity(256)
                .with_cache(CacheConfig::default().with_capacity_bytes(2048).with_shards(2))
                .with_faults(FaultPlan::seeded(seed).with_rule(FaultRule::new(
                    FaultOp::Append,
                    FaultKind::AppendTorn,
                    0.1,
                ))),
        ).build();
        // Shadow model: (tag, addr, bytes) per live record; tags are unique
        // per append so relocation's `on_move(tag, ..)` pins down the entry.
        // Invalidated records stay physically readable (the bytes sit in
        // the extent until reclamation) but are skipped by relocation;
        // only extent reclaim/expiry makes an address dead.
        let mut live: Vec<(u64, PageAddr, Vec<u8>)> = Vec::new();
        let mut invalidated: Vec<(PageAddr, Vec<u8>)> = Vec::new();
        let mut dead: Vec<PageAddr> = Vec::new();
        let mut next_tag = 0u64;
        for cmd in &cmds {
            match cmd {
                CacheCmd::Append(bytes) => {
                    next_tag += 1;
                    // Every record carries an already-expired TTL so any
                    // extent is eligible for the Expire command below.
                    if let Ok(addr) = store.append(StreamId::BASE, bytes, next_tag, Some(0)) {
                        live.push((next_tag, addr, bytes.clone()));
                    }
                }
                CacheCmd::Read(i) => {
                    if !live.is_empty() {
                        let (_, addr, _) = live[*i as usize % live.len()];
                        // Populate the cache so later GC must evict it.
                        prop_assert!(store.read(addr).is_ok());
                    }
                }
                CacheCmd::Invalidate(i) => {
                    if !live.is_empty() {
                        let (_, addr, bytes) = live.remove(*i as usize % live.len());
                        store.invalidate(addr).unwrap();
                        invalidated.push((addr, bytes));
                    }
                }
                CacheCmd::Relocate(i) => {
                    if !live.is_empty() {
                        let extent = live[*i as usize % live.len()].1.extent;
                        let mut moves: Vec<(u64, PageAddr)> = Vec::new();
                        // A torn re-append aborts the relocation partway;
                        // moves already reported still hold (both copies
                        // stay readable until the final reclaim).
                        let outcome =
                            store.relocate_extent(StreamId::BASE, extent, |tag, _, new| {
                                moves.push((tag, new));
                            });
                        for (tag, new) in moves {
                            if let Some(entry) = live.iter_mut().find(|(t, _, _)| *t == tag) {
                                entry.1 = new;
                            }
                        }
                        if outcome.is_ok() {
                            // Full reclaim: every address still inside the
                            // freed extent (invalidated slots the move
                            // skipped, and any live stragglers) is dead.
                            let (gone, kept): (Vec<_>, Vec<_>) = live
                                .drain(..)
                                .partition(|(_, a, _)| a.extent == extent);
                            live = kept;
                            dead.extend(gone.into_iter().map(|(_, a, _)| a));
                            let (gone, kept): (Vec<_>, Vec<_>) = invalidated
                                .drain(..)
                                .partition(|(a, _)| a.extent == extent);
                            invalidated = kept;
                            dead.extend(gone.into_iter().map(|(a, _)| a));
                        }
                    }
                }
                CacheCmd::Expire(i) => {
                    if !live.is_empty() {
                        let extent = live[*i as usize % live.len()].1.extent;
                        if store.expire_extent(StreamId::BASE, extent).is_ok() {
                            let (gone, kept): (Vec<_>, Vec<_>) = live
                                .drain(..)
                                .partition(|(_, a, _)| a.extent == extent);
                            live = kept;
                            dead.extend(gone.into_iter().map(|(_, a, _)| a));
                            let (gone, kept): (Vec<_>, Vec<_>) = invalidated
                                .drain(..)
                                .partition(|(a, _)| a.extent == extent);
                            invalidated = kept;
                            dead.extend(gone.into_iter().map(|(a, _)| a));
                        }
                    }
                }
            }
            // The invariant, after every step, over every address we know.
            for (addr, expected) in live
                .iter()
                .map(|(_, a, b)| (a, b))
                .chain(invalidated.iter().map(|(a, b)| (a, b)))
            {
                let cached = store.read(*addr);
                let raw = store.read_with(*addr, ReadOpts { bypass_cache: true });
                prop_assert!(cached.is_ok() && raw.is_ok(), "record readable both ways");
                prop_assert_eq!(cached.unwrap().as_ref(), expected.as_slice());
                prop_assert_eq!(raw.unwrap().as_ref(), expected.as_slice());
            }
            for addr in &dead {
                prop_assert!(store.read(*addr).is_err(), "dead addr served from cache");
                prop_assert!(store
                    .read_with(*addr, ReadOpts { bypass_cache: true })
                    .is_err());
            }
        }
    }

    /// A fault plan is a pure function of its seed and rules: the same plan
    /// built twice yields the same schedule, for any op/stream/window.
    #[test]
    fn fixed_seed_schedules_are_deterministic(
        params in (any::<u64>(), fault_op_strategy(), 0..=1000u32, 1..200u64),
    ) {
        let (seed, op, prob_milli, n) = params;
        let build = || {
            FaultPlan::seeded(seed).with_rule(FaultRule::new(
                op,
                FaultKind::AppendFail,
                prob_milli as f64 / 1000.0,
            ))
        };
        let a = build().schedule(op, Some(StreamId::BASE), n);
        let b = build().schedule(op, Some(StreamId::BASE), n);
        prop_assert_eq!(&a, &b, "same plan, same schedule");
        // Re-asking the same plan instance is also stable (no hidden state).
        let plan = build();
        prop_assert_eq!(plan.schedule(op, Some(StreamId::BASE), n), a.clone());
        prop_assert_eq!(plan.schedule(op, Some(StreamId::BASE), n), a.clone());
        // A different seed exists that changes *some* schedule when the
        // probability is interior (sanity that the seed participates).
        if prob_milli > 0 {
            let fired = a.iter().filter(|d| d.is_some()).count();
            if prob_milli == 1000 {
                prop_assert_eq!(fired as u64, n, "p=1.0 fires on every op");
            }
        }
        // The empty plan never schedules anything.
        prop_assert!(FaultPlan::none()
            .schedule(op, Some(StreamId::BASE), n)
            .iter()
            .all(|d| d.is_none()));
    }
}
