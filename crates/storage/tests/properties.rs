//! Property-based tests for the storage crate's measurement and fault
//! surfaces: I/O snapshots must behave like monotone saturating counters,
//! and fault plans must be pure functions of (seed, rules, op index).

use bg3_storage::{
    AppendOnlyStore, FaultKind, FaultOp, FaultPlan, FaultRule, IoStatsSnapshot, StoreConfig,
    StreamId,
};
use proptest::prelude::*;

/// An arbitrary snapshot built field-by-field (all fields are public).
fn snapshot_strategy() -> impl Strategy<Value = IoStatsSnapshot> {
    (proptest::collection::vec(any::<u32>(), 11), Just(())).prop_map(|(v, ())| IoStatsSnapshot {
        appends: v[0] as u64,
        bytes_appended: v[1] as u64,
        random_reads: v[2] as u64,
        bytes_read: v[3] as u64,
        invalidations: v[4] as u64,
        relocation_moves: v[5] as u64,
        relocation_bytes: v[6] as u64,
        wasted_relocation_bytes: v[7] as u64,
        extents_reclaimed: v[8] as u64,
        extents_expired: v[9] as u64,
        mapping_publishes: v[10] as u64,
    })
}

/// Fieldwise `a <= b`.
fn le(a: &IoStatsSnapshot, b: &IoStatsSnapshot) -> bool {
    a.appends <= b.appends
        && a.bytes_appended <= b.bytes_appended
        && a.random_reads <= b.random_reads
        && a.bytes_read <= b.bytes_read
        && a.invalidations <= b.invalidations
        && a.relocation_moves <= b.relocation_moves
        && a.relocation_bytes <= b.relocation_bytes
        && a.wasted_relocation_bytes <= b.wasted_relocation_bytes
        && a.extents_reclaimed <= b.extents_reclaimed
        && a.extents_expired <= b.extents_expired
        && a.mapping_publishes <= b.mapping_publishes
}

/// Fieldwise addition.
fn add(a: &IoStatsSnapshot, b: &IoStatsSnapshot) -> IoStatsSnapshot {
    IoStatsSnapshot {
        appends: a.appends + b.appends,
        bytes_appended: a.bytes_appended + b.bytes_appended,
        random_reads: a.random_reads + b.random_reads,
        bytes_read: a.bytes_read + b.bytes_read,
        invalidations: a.invalidations + b.invalidations,
        relocation_moves: a.relocation_moves + b.relocation_moves,
        relocation_bytes: a.relocation_bytes + b.relocation_bytes,
        wasted_relocation_bytes: a.wasted_relocation_bytes + b.wasted_relocation_bytes,
        extents_reclaimed: a.extents_reclaimed + b.extents_reclaimed,
        extents_expired: a.extents_expired + b.extents_expired,
        mapping_publishes: a.mapping_publishes + b.mapping_publishes,
    }
}

/// A storage op for the monotonicity drive.
#[derive(Debug, Clone)]
enum StoreCmd {
    Append(Vec<u8>),
    ReadLast,
    InvalidateLast,
}

fn store_cmd_strategy() -> impl Strategy<Value = StoreCmd> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 1..64).prop_map(StoreCmd::Append),
        2 => Just(StoreCmd::ReadLast),
        1 => Just(StoreCmd::InvalidateLast),
    ]
}

fn fault_op_strategy() -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        Just(FaultOp::Append),
        Just(FaultOp::Read),
        Just(FaultOp::MappingPublish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `delta_since` saturates per field: never a panic or wrap, and the
    /// delta is exactly `saturating_sub` regardless of which snapshot is
    /// "newer".
    #[test]
    fn delta_since_is_saturating(pair in (snapshot_strategy(), snapshot_strategy())) {
        let (a, b) = pair;
        let d = a.delta_since(&b);
        prop_assert_eq!(d.appends, a.appends.saturating_sub(b.appends));
        prop_assert_eq!(d.bytes_appended, a.bytes_appended.saturating_sub(b.bytes_appended));
        prop_assert_eq!(d.random_reads, a.random_reads.saturating_sub(b.random_reads));
        prop_assert_eq!(d.bytes_read, a.bytes_read.saturating_sub(b.bytes_read));
        prop_assert_eq!(d.relocation_bytes, a.relocation_bytes.saturating_sub(b.relocation_bytes));
        prop_assert_eq!(d.mapping_publishes, a.mapping_publishes.saturating_sub(b.mapping_publishes));
        // A snapshot's delta against itself is zero everywhere.
        prop_assert_eq!(a.delta_since(&a), IoStatsSnapshot::default());
        // When `b <= a` fieldwise, the delta recomposes exactly.
        if le(&b, &a) {
            prop_assert_eq!(add(&b, &d), a);
        }
    }

    /// Write amplification is total/useful: never NaN, never below 1.0, and
    /// exactly 1.0 when no relocation traffic exists.
    #[test]
    fn write_amplification_is_well_formed(pair in (any::<u32>(), any::<u32>())) {
        let (total, reloc) = pair;
        let snap = IoStatsSnapshot {
            bytes_appended: total as u64,
            relocation_bytes: reloc as u64,
            ..IoStatsSnapshot::default()
        };
        let wa = snap.write_amplification();
        prop_assert!(!wa.is_nan());
        prop_assert!(wa >= 1.0, "write amplification {wa} below 1.0");
        if reloc == 0 && total > 0 {
            prop_assert_eq!(wa, 1.0);
        }
        if reloc as u64 >= total as u64 && total > 0 {
            prop_assert!(wa.is_infinite(), "all-relocation traffic has no useful bytes");
        }
    }

    /// Live counters only ever grow, and interval deltas recompose to the
    /// later snapshot: the contract every experiment's before/after
    /// measurement relies on.
    #[test]
    fn store_snapshots_are_monotone(cmds in proptest::collection::vec(store_cmd_strategy(), 1..40)) {
        let store = AppendOnlyStore::new(StoreConfig::counting());
        let mut prev = store.stats().snapshot();
        let mut last_addr = None;
        for cmd in &cmds {
            match cmd {
                StoreCmd::Append(bytes) => {
                    last_addr = Some(store.append(StreamId::BASE, bytes, 0, None).unwrap());
                }
                StoreCmd::ReadLast => {
                    if let Some(addr) = last_addr {
                        store.read(addr).unwrap();
                    }
                }
                StoreCmd::InvalidateLast => {
                    if let Some(addr) = last_addr.take() {
                        store.invalidate(addr).unwrap();
                    }
                }
            }
            let now = store.stats().snapshot();
            prop_assert!(le(&prev, &now), "counters moved backwards");
            prop_assert_eq!(add(&prev, &now.delta_since(&prev)), now);
            prev = now;
        }
    }

    /// A fault plan is a pure function of its seed and rules: the same plan
    /// built twice yields the same schedule, for any op/stream/window.
    #[test]
    fn fixed_seed_schedules_are_deterministic(
        params in (any::<u64>(), fault_op_strategy(), 0..=1000u32, 1..200u64),
    ) {
        let (seed, op, prob_milli, n) = params;
        let build = || {
            FaultPlan::seeded(seed).with_rule(FaultRule::new(
                op,
                FaultKind::AppendFail,
                prob_milli as f64 / 1000.0,
            ))
        };
        let a = build().schedule(op, Some(StreamId::BASE), n);
        let b = build().schedule(op, Some(StreamId::BASE), n);
        prop_assert_eq!(&a, &b, "same plan, same schedule");
        // Re-asking the same plan instance is also stable (no hidden state).
        let plan = build();
        prop_assert_eq!(plan.schedule(op, Some(StreamId::BASE), n), a.clone());
        prop_assert_eq!(plan.schedule(op, Some(StreamId::BASE), n), a.clone());
        // A different seed exists that changes *some* schedule when the
        // probability is interior (sanity that the seed participates).
        if prob_milli > 0 {
            let fired = a.iter().filter(|d| d.is_some()).count();
            if prob_milli == 1000 {
                prop_assert_eq!(fired as u64, n, "p=1.0 fires on every op");
            }
        }
        // The empty plan never schedules anything.
        prop_assert!(FaultPlan::none()
            .schedule(op, Some(StreamId::BASE), n)
            .iter()
            .all(|d| d.is_none()));
    }
}
